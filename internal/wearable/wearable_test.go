package wearable

import (
	"math"
	"testing"

	"mindful/internal/comm"
	"mindful/internal/implant"
)

func cleanImplant(t *testing.T, channels int) *implant.Implant {
	t.Helper()
	cfg := implant.DefaultConfig()
	cfg.Neural.Channels = channels
	im, err := implant.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestCleanLinkEndToEnd(t *testing.T) {
	im := cleanImplant(t, 32)
	rx, err := NewReceiver(64)
	if err != nil {
		t.Fatal(err)
	}
	im.OnFrame(func(buf []byte) {
		if _, err := rx.Receive(buf); err != nil {
			t.Fatalf("clean link rejected a frame: %v", err)
		}
	})
	const ticks = 200
	if err := im.Run(ticks); err != nil {
		t.Fatal(err)
	}
	st := rx.Stats()
	if st.Accepted != ticks || st.Corrupted != 0 || st.LostSeq != 0 {
		t.Errorf("clean link stats: %+v", st)
	}
	if st.FrameErrorRate() != 0 {
		t.Errorf("clean FER = %v", st.FrameErrorRate())
	}
	// History bounded and populated.
	h := rx.History(0)
	if len(h) != 64 {
		t.Errorf("history length = %d, want 64 (bounded)", len(h))
	}
	if rx.History(99) != nil {
		t.Errorf("out-of-range history should be nil")
	}
}

func TestLossyLinkFrameErrorRate(t *testing.T) {
	// At BER 1e-4 over ~500-bit frames, FER ≈ 5%: measured must match the
	// analytic expectation, and every accepted frame must be intact (CRC
	// guarantees it at these error rates).
	im := cleanImplant(t, 32)
	link, err := NewLossyLink(1e-4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	var frameBytes int
	im.OnFrame(func(buf []byte) {
		frameBytes = len(buf)
		rx.Receive(link.Transport(buf)) //nolint:errcheck — rejects are the point
	})
	const ticks = 4000
	if err := im.Run(ticks); err != nil {
		t.Fatal(err)
	}
	st := rx.Stats()
	if st.Accepted+st.Corrupted != ticks {
		t.Fatalf("frames unaccounted: %+v", st)
	}
	want := link.ExpectedFrameErrorRate(frameBytes)
	got := st.FrameErrorRate()
	if math.Abs(got-want) > 0.35*want {
		t.Errorf("FER = %v, analytic %v", got, want)
	}
	// Lost sequence numbers equal the corrupted count (each rejected
	// frame shows up as a gap).
	if st.LostSeq != st.Corrupted {
		t.Errorf("lost %d != corrupted %d", st.LostSeq, st.Corrupted)
	}
}

func TestSequenceGapDetection(t *testing.T) {
	p, err := comm.NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	samples := []uint16{1, 2, 3}
	for i := 0; i < 5; i++ {
		buf, err := p.Encode(samples)
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 || i == 3 {
			continue // drop two frames silently
		}
		if _, err := rx.Receive(buf); err != nil {
			t.Fatal(err)
		}
	}
	st := rx.Stats()
	if st.Accepted != 3 || st.LostSeq != 2 {
		t.Errorf("gap stats: %+v", st)
	}
}

func TestReceiverRejectsGarbage(t *testing.T) {
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Receive([]byte{1, 2, 3}); err == nil {
		t.Errorf("garbage should be rejected")
	}
	if rx.Stats().Corrupted != 1 {
		t.Errorf("corrupt count = %d", rx.Stats().Corrupted)
	}
}

func TestLossyLinkValidation(t *testing.T) {
	if _, err := NewLossyLink(-0.1, 1); err == nil {
		t.Errorf("negative BER should fail")
	}
	if _, err := NewLossyLink(1, 1); err == nil {
		t.Errorf("BER=1 should fail")
	}
	if _, err := NewReceiver(-1); err == nil {
		t.Errorf("negative history should fail")
	}
	// Zero-BER transport is the identity.
	link, err := NewLossyLink(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte{0xAB, 0xCD}
	out := link.Transport(in)
	if out[0] != 0xAB || out[1] != 0xCD {
		t.Errorf("zero-BER transport mutated data")
	}
	// And must not alias the input.
	out[0] = 0
	if in[0] != 0xAB {
		t.Errorf("transport aliases its input")
	}
}

func TestAcceptedFramesAreIntact(t *testing.T) {
	// Under heavy noise, whatever survives the CRC must decode to exactly
	// the samples sent.
	p, err := comm.NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLossyLink(2e-3, 11)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	sent := [][]uint16{}
	for i := 0; i < 500; i++ {
		samples := []uint16{uint16(i % 1024), uint16((i * 7) % 1024)}
		sent = append(sent, samples)
		buf, err := p.Encode(samples)
		if err != nil {
			t.Fatal(err)
		}
		f, err := rx.Receive(link.Transport(buf))
		if err != nil {
			continue
		}
		want := sent[f.Seq]
		for c := range want {
			if f.Samples[c] != want[c] {
				t.Fatalf("accepted frame %d corrupted silently", f.Seq)
			}
		}
	}
	if rx.Stats().Corrupted == 0 {
		t.Fatalf("test needs some corruption to be meaningful")
	}
	if rx.Stats().Accepted == 0 {
		t.Fatalf("test needs some accepted frames")
	}
}

// encodeSeq builds one valid frame per call from a shared packetizer.
func encodeSeq(t *testing.T, p *comm.Packetizer, samples []uint16) []byte {
	t.Helper()
	buf, err := p.Encode(samples)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestConcealmentHold: a gap under hold-last concealment records copies
// of the last accepted vector, flagged via OnConcealed.
func TestConcealmentHold(t *testing.T) {
	p, err := comm.NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(16)
	if err != nil {
		t.Fatal(err)
	}
	rx.Concealment = ConcealHold
	var flagged []comm.Frame
	rx.OnConcealed = func(f comm.Frame) {
		cp := f
		cp.Samples = append([]uint16(nil), f.Samples...)
		flagged = append(flagged, cp)
	}
	frames := [][]uint16{{100, 200}, {110, 210}, {120, 220}, {130, 230}, {140, 240}}
	for i, s := range frames {
		buf := encodeSeq(t, p, s)
		if i == 2 || i == 3 {
			continue // two lost frames
		}
		if _, err := rx.Receive(buf); err != nil {
			t.Fatal(err)
		}
	}
	st := rx.Stats()
	if st.LostSeq != 2 || st.Concealed != 2 || st.ConcealedSamples != 4 {
		t.Fatalf("stats %+v", st)
	}
	if len(flagged) != 2 {
		t.Fatalf("%d concealed callbacks, want 2", len(flagged))
	}
	for i, f := range flagged {
		if f.Flags&comm.FlagConcealed == 0 {
			t.Errorf("concealed frame %d not flagged", i)
		}
		if f.Seq != uint32(2+i) {
			t.Errorf("concealed frame %d has seq %d, want %d", i, f.Seq, 2+i)
		}
		if f.Samples[0] != 110 || f.Samples[1] != 210 {
			t.Errorf("hold-last frame %d = %v, want the last accepted vector", i, f.Samples)
		}
	}
	// History carries accepted + concealed in order: 100,110,110,110,140.
	want := []uint16{100, 110, 110, 110, 140}
	h := rx.History(0)
	if len(h) != len(want) {
		t.Fatalf("history %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("history %v, want %v", h, want)
		}
	}
}

// TestConcealmentInterp: linear interpolation bridges the gap between the
// last accepted and the revealing frame.
func TestConcealmentInterp(t *testing.T) {
	p, err := comm.NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(8)
	if err != nil {
		t.Fatal(err)
	}
	rx.Concealment = ConcealInterp
	for i, s := range [][]uint16{{100}, {0}, {0}, {400}} {
		buf := encodeSeq(t, p, s)
		if i == 1 || i == 2 {
			continue
		}
		if _, err := rx.Receive(buf); err != nil {
			t.Fatal(err)
		}
	}
	// Gap of 2 between 100 and 400 → concealed values 200, 300.
	want := []uint16{100, 200, 300, 400}
	h := rx.History(0)
	if len(h) != len(want) {
		t.Fatalf("history %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("history %v, want %v", h, want)
		}
	}
	if frac := rx.Stats().ConcealedFraction(); math.Abs(frac-0.5) > 1e-12 {
		t.Errorf("concealed fraction %g, want 0.5", frac)
	}
}

// TestConcealmentBounded: a wild sequence jump must not synthesize an
// unbounded fill.
func TestConcealmentBounded(t *testing.T) {
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	rx.Concealment = ConcealHold
	rx.MaxConcealGap = 8
	first, err := comm.EncodeFrame(comm.Frame{Seq: 0, SampleBits: 10, Samples: []uint16{5}})
	if err != nil {
		t.Fatal(err)
	}
	far, err := comm.EncodeFrame(comm.Frame{Seq: 1 << 20, SampleBits: 10, Samples: []uint16{6}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Receive(first); err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Receive(far); err != nil {
		t.Fatal(err)
	}
	st := rx.Stats()
	if st.Concealed != 8 {
		t.Errorf("concealed %d frames, cap is 8", st.Concealed)
	}
	if st.LostSeq != 1<<20-1 {
		t.Errorf("lost %d, want %d", st.LostSeq, 1<<20-1)
	}
}

// TestStaleFrameDiscarded: a duplicate or late retransmission must be
// counted as stale, not as a ~2^32 forward gap (the pre-ARQ bug this
// guards against).
func TestStaleFrameDiscarded(t *testing.T) {
	rx, err := NewReceiver(4)
	if err != nil {
		t.Fatal(err)
	}
	rx.Concealment = ConcealHold
	mk := func(seq uint32, v uint16) []byte {
		buf, err := comm.EncodeFrame(comm.Frame{Seq: seq, SampleBits: 10, Samples: []uint16{v}})
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	for seq := uint32(0); seq < 3; seq++ {
		if _, err := rx.Receive(mk(seq, uint16(seq))); err != nil {
			t.Fatal(err)
		}
	}
	f, err := rx.Receive(mk(1, 1)) // duplicate of an old frame
	if err != ErrStaleFrame {
		t.Fatalf("duplicate returned %v, want ErrStaleFrame", err)
	}
	if f.Seq != 1 {
		t.Errorf("stale frame not returned for inspection")
	}
	st := rx.Stats()
	if st.Stale != 1 || st.LostSeq != 0 || st.Concealed != 0 {
		t.Fatalf("stats %+v after duplicate", st)
	}
	if len(rx.History(0)) != 3 {
		t.Errorf("stale frame was recorded")
	}
	// The stream continues normally afterwards.
	if _, err := rx.Receive(mk(3, 3)); err != nil {
		t.Fatal(err)
	}
	if rx.Stats().Accepted != 4 {
		t.Errorf("accepted %d, want 4", rx.Stats().Accepted)
	}
}

// TestStatsZeroGuards is the satellite task: every ratio must return 0 on
// a zero-frame receiver instead of NaN.
func TestStatsZeroGuards(t *testing.T) {
	var s Stats
	if v := s.FrameErrorRate(); v != 0 {
		t.Errorf("FrameErrorRate() = %v on zero stats", v)
	}
	if v := s.DeliveryRate(); v != 0 {
		t.Errorf("DeliveryRate() = %v on zero stats", v)
	}
	if v := s.ConcealedFraction(); v != 0 {
		t.Errorf("ConcealedFraction() = %v on zero stats", v)
	}
	s = Stats{Accepted: 3, Corrupted: 1, LostSeq: 4, Concealed: 1}
	if v := s.FrameErrorRate(); v != 0.25 {
		t.Errorf("FrameErrorRate() = %v, want 0.25", v)
	}
	if v := s.DeliveryRate(); v != 0.375 {
		t.Errorf("DeliveryRate() = %v, want 0.375", v)
	}
	if v := s.ConcealedFraction(); v != 0.25 {
		t.Errorf("ConcealedFraction() = %v, want 0.25", v)
	}
}

// TestLossyLinkNeverMutatesInput is the aliasing audit regression: the
// link corrupts only its own copy, never the caller's (pooled) frame
// buffer, for both the allocating and the appending API.
func TestLossyLinkNeverMutatesInput(t *testing.T) {
	link, err := NewLossyLink(0.2, 3) // heavy corruption: ~every frame flips bits
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0xFF, 0x55, 0xAA}
	orig := append([]byte(nil), frame...)
	scratch := make([]byte, 0, 64)
	mutated := false
	for i := 0; i < 200; i++ {
		var out []byte
		if i%2 == 0 {
			out = link.Transport(frame)
		} else {
			out = link.AppendTransport(scratch[:0], frame)
		}
		for j := range frame {
			if frame[j] != orig[j] {
				t.Fatalf("iteration %d: Transport mutated the caller's buffer", i)
			}
		}
		for j := range out {
			if out[j] != orig[j] {
				mutated = true
			}
		}
	}
	if !mutated {
		t.Fatal("link never corrupted anything; the aliasing check proved nothing")
	}
}

func TestExpectedFERMonotone(t *testing.T) {
	l1, _ := NewLossyLink(1e-5, 1)
	l2, _ := NewLossyLink(1e-3, 1)
	if l1.ExpectedFrameErrorRate(100) >= l2.ExpectedFrameErrorRate(100) {
		t.Errorf("FER should grow with BER")
	}
	if l1.ExpectedFrameErrorRate(10) >= l1.ExpectedFrameErrorRate(1000) {
		t.Errorf("FER should grow with frame size")
	}
}
