package wearable

import (
	"testing"

	"mindful/internal/comm"
)

// Edge cases of the gap-concealment state machine: gaps exactly at the
// concealment bound, stale deliveries arriving after a concealed gap,
// and interpolation values across a whole concealed run.

// receiverAt builds a concealment-enabled receiver with one accepted
// frame already in it, so lastSamples is primed.
func receiverAt(t *testing.T, c Concealment, maxGap int, first []uint16) (*Receiver, *comm.Packetizer) {
	t.Helper()
	p, err := comm.NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(128)
	if err != nil {
		t.Fatal(err)
	}
	rx.Concealment = c
	rx.MaxConcealGap = maxGap
	if _, err := rx.Receive(encodeSeq(t, p, first)); err != nil {
		t.Fatal(err)
	}
	return rx, p
}

// TestConcealGapExactlyAtBound: a gap of exactly MaxConcealGap frames is
// concealed in full; one more frame of loss and the bound truncates it.
func TestConcealGapExactlyAtBound(t *testing.T) {
	const bound = 4
	for _, gap := range []uint32{bound, bound + 1} {
		rx, _ := receiverAt(t, ConcealHold, bound, []uint16{50})
		late, err := comm.EncodeFrame(comm.Frame{Seq: 1 + gap, SampleBits: 10, Samples: []uint16{60}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rx.Receive(late); err != nil {
			t.Fatal(err)
		}
		st := rx.Stats()
		if st.LostSeq != int64(gap) {
			t.Errorf("gap %d: lost %d, want %d", gap, st.LostSeq, gap)
		}
		want := int64(bound)
		if st.Concealed != want {
			t.Errorf("gap %d: concealed %d, want the bound %d", gap, st.Concealed, want)
		}
		// The accepted history is first + concealed + late, never more.
		if h := rx.History(0); len(h) != 2+bound {
			t.Errorf("gap %d: history %v, want %d entries", gap, h, 2+bound)
		}
	}
}

// TestDuplicateAfterConcealedGap: a stale copy of a frame the receiver
// already concealed over must be rejected as stale — not accepted, not
// concealed again, and invisible in the history.
func TestDuplicateAfterConcealedGap(t *testing.T) {
	rx, p := receiverAt(t, ConcealHold, 8, []uint16{50})
	// Frames 1 and 2 are lost; frame 3 arrives and both are concealed.
	lost1 := encodeSeq(t, p, []uint16{51})
	_ = encodeSeq(t, p, []uint16{52})
	if _, err := rx.Receive(encodeSeq(t, p, []uint16{53})); err != nil {
		t.Fatal(err)
	}
	st := rx.Stats()
	if st.Concealed != 2 || st.LostSeq != 2 {
		t.Fatalf("setup stats %+v, want 2 lost and 2 concealed", st)
	}
	histBefore := append([]uint16(nil), rx.History(0)...)
	// The first lost frame now shows up late (a duplicate relative to the
	// concealment cursor).
	if _, err := rx.Receive(lost1); err != ErrStaleFrame {
		t.Fatalf("late duplicate returned %v, want ErrStaleFrame", err)
	}
	st = rx.Stats()
	if st.Stale != 1 {
		t.Errorf("stale %d, want 1", st.Stale)
	}
	if st.Concealed != 2 || st.Accepted != 2 {
		t.Errorf("duplicate changed accounting: %+v", st)
	}
	if got := rx.History(0); len(got) != len(histBefore) {
		t.Errorf("duplicate grew history from %v to %v", histBefore, got)
	}
}

// TestInterpAcrossConcealedRun: interpolation across a 3-frame gap must
// produce the evenly spaced values, each callback frame flagged
// FlagConcealed and numbered with the missing sequence numbers.
func TestInterpAcrossConcealedRun(t *testing.T) {
	rx, _ := receiverAt(t, ConcealInterp, 8, []uint16{100, 1000})
	var run []comm.Frame
	rx.OnConcealed = func(f comm.Frame) {
		cp := f
		cp.Samples = append([]uint16(nil), f.Samples...)
		run = append(run, cp)
	}
	// Frames 1..3 lost; frame 4 closes the gap at {500, 200}.
	late, err := comm.EncodeFrame(comm.Frame{Seq: 4, SampleBits: 10, Samples: []uint16{500, 200}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Receive(late); err != nil {
		t.Fatal(err)
	}
	if len(run) != 3 {
		t.Fatalf("concealed run of %d frames, want 3", len(run))
	}
	// Channel 0 climbs 100→500, channel 1 falls 1000→200, in quarters.
	wantCh0 := []uint16{200, 300, 400}
	wantCh1 := []uint16{800, 600, 400}
	for i, f := range run {
		if f.Flags&comm.FlagConcealed == 0 {
			t.Errorf("run frame %d not flagged concealed", i)
		}
		if f.Seq != uint32(1+i) {
			t.Errorf("run frame %d has seq %d, want %d", i, f.Seq, 1+i)
		}
		if f.Samples[0] != wantCh0[i] || f.Samples[1] != wantCh1[i] {
			t.Errorf("run frame %d samples %v, want [%d %d]",
				i, f.Samples, wantCh0[i], wantCh1[i])
		}
	}
	if frac := rx.Stats().ConcealedFraction(); frac <= 0 {
		t.Errorf("concealed fraction %g, want positive", frac)
	}
}
