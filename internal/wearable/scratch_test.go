package wearable

import (
	"errors"
	"reflect"
	"testing"

	"mindful/internal/comm"
)

// TestReceiveScratchMatchesReceive feeds two receivers the same delivery
// stream — clean frames, corrupt frames, gaps and a stale duplicate —
// one through Receive and one through ReceiveScratch, and requires
// identical frames, errors (by kind), stats, state and history.
func TestReceiveScratchMatchesReceive(t *testing.T) {
	mk := func() (*Receiver, *comm.Packetizer) {
		rx, err := NewReceiver(32)
		if err != nil {
			t.Fatal(err)
		}
		rx.Concealment = ConcealInterp
		pkt, err := comm.NewPacketizer(10)
		if err != nil {
			t.Fatal(err)
		}
		return rx, pkt
	}
	ref, refPkt := mk()
	fast, fastPkt := mk()
	var scratch []uint16

	samples := func(pkt *comm.Packetizer, tick int) []byte {
		xs := make([]uint16, 8)
		for c := range xs {
			xs[c] = uint16((tick*31 + c*7) % 1024)
		}
		buf, err := pkt.AppendEncode(nil, xs)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}

	var stale []byte // a buffered frame redelivered later
	for tick := 0; tick < 120; tick++ {
		refBuf := samples(refPkt, tick)
		fastBuf := samples(fastPkt, tick)
		switch {
		case tick%17 == 5: // dropped frame: receiver never sees it
			continue
		case tick%13 == 4: // corrupt delivery
			refBuf[len(refBuf)/2] ^= 0x40
			fastBuf[len(fastBuf)/2] ^= 0x40
		case tick == 60: // remember for a stale redelivery
			stale = append([]byte(nil), refBuf...)
		}
		refFr, refErr := ref.Receive(refBuf)
		var fastFr comm.Frame
		var fastErr error
		fastFr, scratch, fastErr = fast.ReceiveScratch(fastBuf, scratch)
		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("tick %d: err mismatch %v vs %v", tick, refErr, fastErr)
		}
		if refErr == nil && !reflect.DeepEqual(refFr, comm.Frame{
			Seq: fastFr.Seq, SampleBits: fastFr.SampleBits,
			Samples: fastFr.Samples, Flags: fastFr.Flags,
		}) {
			t.Fatalf("tick %d: frame mismatch %+v vs %+v", tick, refFr, fastFr)
		}
		if tick == 80 && stale != nil { // redeliver the old frame
			_, refErr := ref.Receive(stale)
			_, scratch2, fastErr := fast.ReceiveScratch(stale, scratch)
			scratch = scratch2
			if !errors.Is(refErr, ErrStaleFrame) || !errors.Is(fastErr, ErrStaleFrame) {
				t.Fatalf("stale redelivery: %v vs %v", refErr, fastErr)
			}
		}
	}
	if !reflect.DeepEqual(ref.Stats(), fast.Stats()) {
		t.Errorf("stats diverge:\n ref %+v\nfast %+v", ref.Stats(), fast.Stats())
	}
	if !reflect.DeepEqual(ref.Snapshot(), fast.Snapshot()) {
		t.Errorf("snapshots diverge")
	}
	for c := 0; c < 8; c++ {
		if !reflect.DeepEqual(ref.History(c), fast.History(c)) {
			t.Errorf("history channel %d diverges", c)
		}
	}
}

// TestReceiveScratchRejectionIsStatic pins the allocation contract: a
// corrupt frame surfaces ErrFrameRejected itself, not a wrapped
// allocation, and the scratch slice survives for reuse.
func TestReceiveScratchRejectionIsStatic(t *testing.T) {
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]uint16, 0, 64)
	_, scratch2, rerr := rx.ReceiveScratch([]byte{1, 2, 3}, scratch)
	if rerr != ErrFrameRejected {
		t.Fatalf("err = %v, want ErrFrameRejected identity", rerr)
	}
	if cap(scratch2) != cap(scratch) {
		t.Errorf("scratch capacity changed on rejection")
	}
	if rx.Stats().Corrupted != 1 {
		t.Errorf("corrupted = %d, want 1", rx.Stats().Corrupted)
	}
	garbage := []byte{1, 2, 3}
	allocs := testing.AllocsPerRun(200, func() {
		_, scratch, _ = rx.ReceiveScratch(garbage, scratch)
	})
	if allocs != 0 {
		t.Errorf("rejection path allocates %.1f/op, want 0", allocs)
	}

}
