// Package wearable is the receiving half of Fig. 1: the external SoC that
// collects the implant's uplink frames. It validates framing, tracks
// sequence continuity and frame error rates, and reassembles per-channel
// sample streams. Instead of silently skipping bad frames it degrades
// gracefully: sequence gaps can be concealed (hold-last or linear
// interpolation, with the synthesized frames flagged so decoders can
// discount them), losses are accounted per cause, and stale or duplicate
// deliveries — a fact of life once the link layer retransmits — are
// recognized rather than miscounted as huge gaps. A lossy-link injector
// lets the whole implant → wearable path be exercised under realistic bit
// error rates.
package wearable

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mindful/internal/comm"
	"mindful/internal/obs"
)

// Concealment selects the receiver's gap-concealment strategy.
type Concealment int

// The strategies. Concealed frames are flagged comm.FlagConcealed and
// counted separately so downstream consumers can discount them.
const (
	// ConcealNone records nothing for lost frames (the pre-recovery
	// behavior: downstream streams simply skip).
	ConcealNone Concealment = iota
	// ConcealHold repeats the last accepted sample vector.
	ConcealHold
	// ConcealInterp interpolates linearly between the last accepted
	// vector and the frame that revealed the gap.
	ConcealInterp
)

// String names the strategy.
func (c Concealment) String() string {
	switch c {
	case ConcealNone:
		return "none"
	case ConcealHold:
		return "hold"
	case ConcealInterp:
		return "interp"
	default:
		return "unknown"
	}
}

// DefaultMaxConcealGap bounds how many missing frames one gap may
// synthesize: past this the signal is stale enough that concealment does
// the decoder more harm than good (and a corrupted sequence number must
// not trigger an unbounded fill).
const DefaultMaxConcealGap = 64

// ErrStaleFrame reports a frame whose sequence number lies behind the
// receiver's cursor — a duplicate or late retransmission. The frame is
// counted but not recorded.
var ErrStaleFrame = errors.New("wearable: stale or duplicate frame")

// Receiver consumes uplink frames and accounts for link quality.
type Receiver struct {
	// KeepSamples bounds the per-channel history retained (0 = none).
	KeepSamples int
	// Concealment selects how sequence gaps are filled.
	Concealment Concealment
	// MaxConcealGap caps the synthesized frames per gap (0 = the
	// DefaultMaxConcealGap).
	MaxConcealGap int
	// OnConcealed, when set, receives every synthesized frame (flags
	// include comm.FlagConcealed). The frame's sample slice is reused by
	// the next concealment, so sinks must copy what they keep.
	OnConcealed func(comm.Frame)

	started     bool
	nextSeq     uint32
	accepted    int64
	corrupt     int64
	lost        int64
	stale       int64
	concealed   int64
	concealedSm int64
	lastSamples []uint16
	concealBuf  []uint16
	history     [][]uint16
	o           receiverObs
}

// receiverObs holds the receiver's pre-resolved metric handles; the zero
// value short-circuits all hooks.
type receiverObs struct {
	attached  bool
	accepted  *obs.Counter
	corrupt   *obs.Counter
	lostSeq   *obs.Counter
	stale     *obs.Counter
	concealed *obs.Counter
	latency   *obs.Histogram
}

// SetObserver wires the receiver to an observability sink: frame
// accepted/corrupt counters, lost-sequence, stale and concealed-frame
// counters and a per-frame processing-latency histogram. Pass nil to
// detach.
func (r *Receiver) SetObserver(o *obs.Observer) {
	if o == nil {
		r.o = receiverObs{}
		return
	}
	m := o.Metrics
	r.o = receiverObs{
		attached:  true,
		accepted:  m.Counter("wearable_frames_accepted_total"),
		corrupt:   m.Counter("wearable_frames_corrupt_total"),
		lostSeq:   m.Counter("wearable_frames_lost_total"),
		stale:     m.Counter("wearable_frames_stale_total"),
		concealed: m.Counter("wearable_frames_concealed_total"),
		latency:   m.Histogram("wearable_frame_latency_seconds", obs.ExpBuckets(1e-7, 4, 12)),
	}
	m.Help("wearable_frames_accepted_total", "Frames accepted by the receiver.")
	m.Help("wearable_frames_corrupt_total", "Frames rejected as corrupt.")
	m.Help("wearable_frames_lost_total", "Frames inferred lost from sequence gaps.")
	m.Help("wearable_frames_stale_total", "Stale or duplicate frames discarded.")
	m.Help("wearable_frames_concealed_total", "Gap frames synthesized by concealment.")
	m.Help("wearable_frame_latency_seconds", "Per-frame decode+record latency.")
}

// NewReceiver returns a receiver retaining up to keepSamples per channel.
func NewReceiver(keepSamples int) (*Receiver, error) {
	if keepSamples < 0 {
		return nil, errors.New("wearable: negative history length")
	}
	return &Receiver{KeepSamples: keepSamples}, nil
}

// Receive consumes one (possibly corrupted) frame. It returns the decoded
// frame when accepted; rejected frames are counted per cause and return
// an error (ErrStaleFrame for duplicates/late retransmissions).
func (r *Receiver) Receive(buf []byte) (comm.Frame, error) {
	var start time.Time
	if r.o.attached {
		start = time.Now()
	}
	f, err := comm.Decode(buf)
	if err != nil {
		r.corrupt++
		r.o.corrupt.Inc()
		return comm.Frame{}, fmt.Errorf("wearable: frame rejected: %w", err)
	}
	if r.started && f.Seq != r.nextSeq {
		// Signed distance from the cursor: forward is a gap, backward a
		// stale delivery (duplicate or late retransmission).
		delta := int32(f.Seq - r.nextSeq)
		if delta < 0 {
			r.stale++
			r.o.stale.Inc()
			return f, ErrStaleFrame
		}
		gap := int64(delta)
		r.lost += gap
		r.o.lostSeq.Add(gap)
		r.conceal(gap, f)
	}
	r.started = true
	r.nextSeq = f.Seq + 1
	r.accepted++
	r.record(f.Samples)
	r.remember(f.Samples)
	if r.o.attached {
		r.o.accepted.Inc()
		r.o.latency.Observe(time.Since(start).Seconds())
	}
	return f, nil
}

// ErrFrameRejected reports a frame that failed decode validation
// (framing or CRC) — the allocation-free counterpart of the wrapped
// error Receive returns. Use errors.Is against this, or against the
// comm.Err* causes via DecodeInto directly, when the cause matters.
var ErrFrameRejected = errors.New("wearable: frame rejected")

// ReceiveScratch is Receive for the batched hot path: frame samples are
// decoded into the caller-owned scratch slice (grown as needed and
// returned), and decode rejections surface as the static
// ErrFrameRejected, so a steady-state call allocates nothing. Counters,
// sequence tracking, concealment and history behave exactly as Receive:
// the returned frame's Samples alias scratch, which is safe because
// record/remember/conceal copy synchronously.
func (r *Receiver) ReceiveScratch(buf []byte, scratch []uint16) (comm.Frame, []uint16, error) {
	var start time.Time
	if r.o.attached {
		start = time.Now()
	}
	f, scratch, err := comm.DecodeInto(scratch, buf)
	if err != nil {
		r.corrupt++
		r.o.corrupt.Inc()
		return comm.Frame{}, scratch, ErrFrameRejected
	}
	if r.started && f.Seq != r.nextSeq {
		delta := int32(f.Seq - r.nextSeq)
		if delta < 0 {
			r.stale++
			r.o.stale.Inc()
			return f, scratch, ErrStaleFrame
		}
		gap := int64(delta)
		r.lost += gap
		r.o.lostSeq.Add(gap)
		r.conceal(gap, f)
	}
	r.started = true
	r.nextSeq = f.Seq + 1
	r.accepted++
	r.record(f.Samples)
	r.remember(f.Samples)
	if r.o.attached {
		r.o.accepted.Inc()
		r.o.latency.Observe(time.Since(start).Seconds())
	}
	return f, scratch, nil
}

// remember keeps a private copy of the latest accepted sample vector for
// concealment (the caller's frame buffer is recycled between ticks).
func (r *Receiver) remember(samples []uint16) {
	if r.Concealment == ConcealNone {
		return
	}
	r.lastSamples = append(r.lastSamples[:0], samples...)
}

// conceal synthesizes up to MaxConcealGap frames for a gap revealed by
// the arrival of frame f, records them, and hands each to OnConcealed.
func (r *Receiver) conceal(gap int64, f comm.Frame) {
	if r.Concealment == ConcealNone || len(r.lastSamples) == 0 || len(r.lastSamples) != len(f.Samples) {
		return
	}
	limit := int64(r.MaxConcealGap)
	if limit <= 0 {
		limit = DefaultMaxConcealGap
	}
	n := gap
	if n > limit {
		n = limit
	}
	if cap(r.concealBuf) < len(f.Samples) {
		r.concealBuf = make([]uint16, len(f.Samples))
	}
	synth := r.concealBuf[:len(f.Samples)]
	for k := int64(1); k <= n; k++ {
		for c := range synth {
			last := int64(r.lastSamples[c])
			switch r.Concealment {
			case ConcealHold:
				synth[c] = uint16(last)
			case ConcealInterp:
				cur := int64(f.Samples[c])
				synth[c] = uint16(last + (cur-last)*k/(gap+1))
			}
		}
		r.record(synth)
		r.concealed++
		r.concealedSm += int64(len(synth))
		r.o.concealed.Inc()
		if r.OnConcealed != nil {
			r.OnConcealed(comm.Frame{
				Seq:        f.Seq - uint32(gap) + uint32(k) - 1,
				SampleBits: f.SampleBits,
				Samples:    synth,
				Flags:      f.Flags | comm.FlagConcealed,
			})
		}
	}
}

func (r *Receiver) record(samples []uint16) {
	if r.KeepSamples == 0 {
		return
	}
	if len(r.history) < len(samples) {
		grown := make([][]uint16, len(samples))
		copy(grown, r.history)
		r.history = grown
	}
	for c, s := range samples {
		h := append(r.history[c], s)
		if len(h) > r.KeepSamples {
			h = h[len(h)-r.KeepSamples:]
		}
		r.history[c] = h
	}
}

// History returns the retained samples of one channel (nil if none).
func (r *Receiver) History(channel int) []uint16 {
	if channel < 0 || channel >= len(r.history) {
		return nil
	}
	return r.history[channel]
}

// Stats summarizes link quality at the receiver, per loss cause.
type Stats struct {
	// Accepted counts clean frames; Corrupted CRC/framing rejections;
	// LostSeq frames inferred missing from sequence gaps; Stale
	// duplicate or late deliveries discarded.
	Accepted  int64
	Corrupted int64
	LostSeq   int64
	Stale     int64
	// Concealed counts gap frames synthesized by concealment, and
	// ConcealedSamples the samples inside them.
	Concealed        int64
	ConcealedSamples int64
}

// FrameErrorRate returns corrupted / (accepted + corrupted), 0 when no
// frame has arrived.
func (s Stats) FrameErrorRate() float64 {
	total := s.Accepted + s.Corrupted
	if total == 0 {
		return 0
	}
	return float64(s.Corrupted) / float64(total)
}

// DeliveryRate returns the fraction of expected frames that arrived
// clean: accepted / (accepted + corrupted + lost), 0 before any traffic.
func (s Stats) DeliveryRate() float64 {
	total := s.Accepted + s.Corrupted + s.LostSeq
	if total == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(total)
}

// ConcealedFraction returns the share of recorded frames that were
// synthesized rather than received: concealed / (accepted + concealed),
// 0 when nothing was recorded.
func (s Stats) ConcealedFraction() float64 {
	total := s.Accepted + s.Concealed
	if total == 0 {
		return 0
	}
	return float64(s.Concealed) / float64(total)
}

// ReceiverState is a receiver's serializable mid-stream state: the
// sequence cursor, per-cause accounting and the last accepted sample
// vector (which concealment interpolates from). Retained history is
// deliberately excluded — checkpointable pipelines run with
// KeepSamples = 0, and history is a display convenience, not part of
// the deterministic dataflow.
type ReceiverState struct {
	Started     bool
	NextSeq     uint32
	Stats       Stats
	LastSamples []uint16
}

// Snapshot captures the receiver's mid-stream state.
func (r *Receiver) Snapshot() ReceiverState {
	return ReceiverState{
		Started:     r.started,
		NextSeq:     r.nextSeq,
		Stats:       r.Stats(),
		LastSamples: append([]uint16(nil), r.lastSamples...),
	}
}

// RestoreState overwrites the receiver's mutable state so it continues
// exactly where the snapshotted one stopped. Configuration fields
// (KeepSamples, Concealment, MaxConcealGap, OnConcealed) are left as the
// caller set them.
func (r *Receiver) RestoreState(st ReceiverState) error {
	if !st.Started && (st.NextSeq != 0 || len(st.LastSamples) != 0) {
		return errors.New("wearable: unstarted receiver state carries a cursor")
	}
	r.started = st.Started
	r.nextSeq = st.NextSeq
	r.accepted = st.Stats.Accepted
	r.corrupt = st.Stats.Corrupted
	r.lost = st.Stats.LostSeq
	r.stale = st.Stats.Stale
	r.concealed = st.Stats.Concealed
	r.concealedSm = st.Stats.ConcealedSamples
	r.lastSamples = append(r.lastSamples[:0], st.LastSamples...)
	return nil
}

// Stats returns the current accounting.
func (r *Receiver) Stats() Stats {
	return Stats{
		Accepted:         r.accepted,
		Corrupted:        r.corrupt,
		LostSeq:          r.lost,
		Stale:            r.stale,
		Concealed:        r.concealed,
		ConcealedSamples: r.concealedSm,
	}
}

// LossyLink flips each transported bit independently with probability BER
// — the i.i.d. failure-injection model for the implant → wearable path
// (see fault.BurstLink for the two-state burst generalization).
type LossyLink struct {
	BER float64
	rng *rand.Rand

	frames   *obs.Counter
	bitFlips *obs.Counter
}

// SetObserver wires the link to an observability sink: transported-frame
// and injected-bit-flip counters. Pass nil to detach.
func (l *LossyLink) SetObserver(o *obs.Observer) {
	if o == nil {
		l.frames, l.bitFlips = nil, nil
		return
	}
	l.frames = o.Metrics.Counter("link_frames_transported_total")
	l.bitFlips = o.Metrics.Counter("link_bit_flips_total")
	o.Metrics.Help("link_frames_transported_total", "Frames passed through the lossy link.")
	o.Metrics.Help("link_bit_flips_total", "Bit errors injected by the lossy link.")
}

// NewLossyLink returns a seeded link at the given bit error rate.
func NewLossyLink(ber float64, seed int64) (*LossyLink, error) {
	if ber < 0 || ber >= 1 {
		return nil, fmt.Errorf("wearable: BER %g outside [0, 1)", ber)
	}
	return &LossyLink{BER: ber, rng: rand.New(rand.NewSource(seed))}, nil
}

// Transport returns a possibly-corrupted copy of the frame. The caller's
// buffer is never aliased or modified — corruption is applied only to the
// copy — so pooled sender frames stay pristine for retransmission
// (TestLossyLinkNeverMutatesInput pins this contract).
func (l *LossyLink) Transport(buf []byte) []byte {
	return l.AppendTransport(nil, buf)
}

// AppendTransport appends the transported (possibly corrupted) frame to
// dst and returns the extended slice, preserving Transport's contract
// that the input is never touched. Passing a recycled dst[:0] makes the
// path allocation-free.
func (l *LossyLink) AppendTransport(dst, buf []byte) []byte {
	l.frames.Inc()
	base := len(dst)
	dst = append(dst, buf...)
	if l.BER == 0 {
		return dst
	}
	// Geometric skipping between flips: efficient at low BER.
	pos := 0
	nBits := len(buf) * 8
	for {
		skip := int(math.Floor(math.Log(1-l.rng.Float64()) / math.Log(1-l.BER)))
		pos += skip
		if pos >= nBits {
			return dst
		}
		dst[base+pos/8] ^= 1 << (7 - pos%8)
		l.bitFlips.Inc()
		pos++
	}
}

// ExpectedFrameErrorRate returns the analytic FER for a frame of the given
// byte length at this BER: 1 − (1−BER)^bits.
func (l *LossyLink) ExpectedFrameErrorRate(frameBytes int) float64 {
	return 1 - math.Pow(1-l.BER, float64(frameBytes*8))
}
