// Package wearable is the receiving half of Fig. 1: the external SoC that
// collects the implant's uplink frames. It validates framing, tracks
// sequence continuity and frame error rates, and reassembles per-channel
// sample streams — plus a lossy-link injector so the whole implant →
// wearable path can be exercised under realistic bit error rates.
package wearable

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mindful/internal/comm"
	"mindful/internal/obs"
)

// Receiver consumes uplink frames and accounts for link quality.
type Receiver struct {
	// KeepSamples bounds the per-channel history retained (0 = none).
	KeepSamples int

	started  bool
	nextSeq  uint32
	accepted int64
	corrupt  int64
	lost     int64
	history  [][]uint16
	o        receiverObs
}

// receiverObs holds the receiver's pre-resolved metric handles; the zero
// value short-circuits all hooks.
type receiverObs struct {
	attached bool
	accepted *obs.Counter
	corrupt  *obs.Counter
	lostSeq  *obs.Counter
	latency  *obs.Histogram
}

// SetObserver wires the receiver to an observability sink: frame
// accepted/corrupt counters, a lost-sequence counter and a per-frame
// processing-latency histogram. Pass nil to detach.
func (r *Receiver) SetObserver(o *obs.Observer) {
	if o == nil {
		r.o = receiverObs{}
		return
	}
	m := o.Metrics
	r.o = receiverObs{
		attached: true,
		accepted: m.Counter("wearable_frames_accepted_total"),
		corrupt:  m.Counter("wearable_frames_corrupt_total"),
		lostSeq:  m.Counter("wearable_frames_lost_total"),
		latency:  m.Histogram("wearable_frame_latency_seconds", obs.ExpBuckets(1e-7, 4, 12)),
	}
	m.Help("wearable_frames_accepted_total", "Frames accepted by the receiver.")
	m.Help("wearable_frames_corrupt_total", "Frames rejected as corrupt.")
	m.Help("wearable_frames_lost_total", "Frames inferred lost from sequence gaps.")
	m.Help("wearable_frame_latency_seconds", "Per-frame decode+record latency.")
}

// NewReceiver returns a receiver retaining up to keepSamples per channel.
func NewReceiver(keepSamples int) (*Receiver, error) {
	if keepSamples < 0 {
		return nil, errors.New("wearable: negative history length")
	}
	return &Receiver{KeepSamples: keepSamples}, nil
}

// Receive consumes one (possibly corrupted) frame. It returns the decoded
// frame when accepted; rejected frames are counted and return an error.
func (r *Receiver) Receive(buf []byte) (comm.Frame, error) {
	var start time.Time
	if r.o.attached {
		start = time.Now()
	}
	f, err := comm.Decode(buf)
	if err != nil {
		r.corrupt++
		r.o.corrupt.Inc()
		return comm.Frame{}, fmt.Errorf("wearable: frame rejected: %w", err)
	}
	if r.started {
		if f.Seq != r.nextSeq {
			// Count the gap; a wrapped or reordered sequence counts as
			// the absolute distance forward.
			gap := int64(f.Seq - r.nextSeq)
			if gap > 0 {
				r.lost += gap
				r.o.lostSeq.Add(gap)
			}
		}
	}
	r.started = true
	r.nextSeq = f.Seq + 1
	r.accepted++
	r.record(f.Samples)
	if r.o.attached {
		r.o.accepted.Inc()
		r.o.latency.Observe(time.Since(start).Seconds())
	}
	return f, nil
}

func (r *Receiver) record(samples []uint16) {
	if r.KeepSamples == 0 {
		return
	}
	if len(r.history) < len(samples) {
		grown := make([][]uint16, len(samples))
		copy(grown, r.history)
		r.history = grown
	}
	for c, s := range samples {
		h := append(r.history[c], s)
		if len(h) > r.KeepSamples {
			h = h[len(h)-r.KeepSamples:]
		}
		r.history[c] = h
	}
}

// History returns the retained samples of one channel (nil if none).
func (r *Receiver) History(channel int) []uint16 {
	if channel < 0 || channel >= len(r.history) {
		return nil
	}
	return r.history[channel]
}

// Stats summarizes link quality at the receiver.
type Stats struct {
	Accepted  int64
	Corrupted int64
	LostSeq   int64
}

// FrameErrorRate returns corrupted / (accepted + corrupted).
func (s Stats) FrameErrorRate() float64 {
	total := s.Accepted + s.Corrupted
	if total == 0 {
		return 0
	}
	return float64(s.Corrupted) / float64(total)
}

// Stats returns the current accounting.
func (r *Receiver) Stats() Stats {
	return Stats{Accepted: r.accepted, Corrupted: r.corrupt, LostSeq: r.lost}
}

// LossyLink flips each transported bit independently with probability BER
// — the failure-injection model for the implant → wearable path.
type LossyLink struct {
	BER float64
	rng *rand.Rand

	frames   *obs.Counter
	bitFlips *obs.Counter
}

// SetObserver wires the link to an observability sink: transported-frame
// and injected-bit-flip counters. Pass nil to detach.
func (l *LossyLink) SetObserver(o *obs.Observer) {
	if o == nil {
		l.frames, l.bitFlips = nil, nil
		return
	}
	l.frames = o.Metrics.Counter("link_frames_transported_total")
	l.bitFlips = o.Metrics.Counter("link_bit_flips_total")
	o.Metrics.Help("link_frames_transported_total", "Frames passed through the lossy link.")
	o.Metrics.Help("link_bit_flips_total", "Bit errors injected by the lossy link.")
}

// NewLossyLink returns a seeded link at the given bit error rate.
func NewLossyLink(ber float64, seed int64) (*LossyLink, error) {
	if ber < 0 || ber >= 1 {
		return nil, fmt.Errorf("wearable: BER %g outside [0, 1)", ber)
	}
	return &LossyLink{BER: ber, rng: rand.New(rand.NewSource(seed))}, nil
}

// Transport returns a possibly-corrupted copy of the frame.
func (l *LossyLink) Transport(buf []byte) []byte {
	l.frames.Inc()
	out := make([]byte, len(buf))
	copy(out, buf)
	if l.BER == 0 {
		return out
	}
	// Geometric skipping between flips: efficient at low BER.
	pos := 0
	nBits := len(out) * 8
	for {
		skip := int(math.Floor(math.Log(1-l.rng.Float64()) / math.Log(1-l.BER)))
		pos += skip
		if pos >= nBits {
			return out
		}
		out[pos/8] ^= 1 << (7 - pos%8)
		l.bitFlips.Inc()
		pos++
	}
}

// ExpectedFrameErrorRate returns the analytic FER for a frame of the given
// byte length at this BER: 1 − (1−BER)^bits.
func (l *LossyLink) ExpectedFrameErrorRate(frameBytes int) float64 {
	return 1 - math.Pow(1-l.BER, float64(frameBytes*8))
}
