// Package dsp provides the digital signal processing front end of the
// implant datapath: IIR/FIR filtering, threshold spike detection with
// robust noise estimation, template-matching spike sorting, and the
// per-channel activity ranking that backs the paper's channel-dropout
// optimization (Section 6.2).
package dsp

import (
	"fmt"
	"math"
	"sort"
)

// Filter is a streaming single-channel filter.
type Filter interface {
	// Process consumes one sample and returns one output sample.
	Process(x float64) float64
	// Reset clears internal state.
	Reset()
}

// Biquad is a second-order IIR section in direct form II transposed:
//
//	y[n] = b0·x[n] + z1;  z1 = b1·x[n] − a1·y[n] + z2;  z2 = b2·x[n] − a2·y[n]
//
// Coefficients are normalized to a0 = 1.
type Biquad struct {
	B0, B1, B2 float64
	A1, A2     float64
	z1, z2     float64
}

// Process implements Filter.
func (f *Biquad) Process(x float64) float64 {
	y := f.B0*x + f.z1
	f.z1 = f.B1*x - f.A1*y + f.z2
	f.z2 = f.B2*x - f.A2*y
	return y
}

// Reset implements Filter.
func (f *Biquad) Reset() { f.z1, f.z2 = 0, 0 }

// Stable reports whether the filter's poles are inside the unit circle.
func (f *Biquad) Stable() bool {
	// Jury criterion for z² + a1·z + a2.
	return math.Abs(f.A2) < 1 && math.Abs(f.A1) < 1+f.A2
}

// NewLowpass designs a second-order Butterworth low-pass biquad with the
// given cutoff (Hz) at sample rate fs via the bilinear transform.
func NewLowpass(cutoffHz, fsHz float64) (*Biquad, error) {
	if err := checkFreq(cutoffHz, fsHz); err != nil {
		return nil, err
	}
	k := math.Tan(math.Pi * cutoffHz / fsHz)
	q := math.Sqrt2 / 2
	norm := 1 / (1 + k/q + k*k)
	return &Biquad{
		B0: k * k * norm,
		B1: 2 * k * k * norm,
		B2: k * k * norm,
		A1: 2 * (k*k - 1) * norm,
		A2: (1 - k/q + k*k) * norm,
	}, nil
}

// NewHighpass designs a second-order Butterworth high-pass biquad.
func NewHighpass(cutoffHz, fsHz float64) (*Biquad, error) {
	if err := checkFreq(cutoffHz, fsHz); err != nil {
		return nil, err
	}
	k := math.Tan(math.Pi * cutoffHz / fsHz)
	q := math.Sqrt2 / 2
	norm := 1 / (1 + k/q + k*k)
	return &Biquad{
		B0: norm,
		B1: -2 * norm,
		B2: norm,
		A1: 2 * (k*k - 1) * norm,
		A2: (1 - k/q + k*k) * norm,
	}, nil
}

func checkFreq(cutoffHz, fsHz float64) error {
	if fsHz <= 0 {
		return fmt.Errorf("dsp: non-positive sample rate %g", fsHz)
	}
	if cutoffHz <= 0 || cutoffHz >= fsHz/2 {
		return fmt.Errorf("dsp: cutoff %g Hz outside (0, %g)", cutoffHz, fsHz/2)
	}
	return nil
}

// Chain runs filters in sequence.
type Chain []Filter

// Process implements Filter.
func (c Chain) Process(x float64) float64 {
	for _, f := range c {
		x = f.Process(x)
	}
	return x
}

// Reset implements Filter.
func (c Chain) Reset() {
	for _, f := range c {
		f.Reset()
	}
}

// NewBandpass builds the spike band-pass used before detection: a
// high-pass at lowHz cascaded with a low-pass at highHz.
func NewBandpass(lowHz, highHz, fsHz float64) (Chain, error) {
	if lowHz >= highHz {
		return nil, fmt.Errorf("dsp: band edges inverted (%g ≥ %g)", lowHz, highHz)
	}
	hp, err := NewHighpass(lowHz, fsHz)
	if err != nil {
		return nil, err
	}
	lp, err := NewLowpass(highHz, fsHz)
	if err != nil {
		return nil, err
	}
	return Chain{hp, lp}, nil
}

// FIR is a finite-impulse-response filter with the given taps.
type FIR struct {
	Taps []float64
	hist []float64
	pos  int
}

// NewFIR returns a FIR filter; taps must be non-empty.
func NewFIR(taps []float64) (*FIR, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("dsp: FIR requires at least one tap")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{Taps: t, hist: make([]float64, len(taps))}, nil
}

// NewMovingAverage returns an n-tap moving-average FIR.
func NewMovingAverage(n int) (*FIR, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: moving average length must be positive")
	}
	taps := make([]float64, n)
	for i := range taps {
		taps[i] = 1 / float64(n)
	}
	return NewFIR(taps)
}

// Process implements Filter.
func (f *FIR) Process(x float64) float64 {
	f.hist[f.pos] = x
	y := 0.0
	idx := f.pos
	for _, t := range f.Taps {
		y += t * f.hist[idx]
		idx--
		if idx < 0 {
			idx = len(f.hist) - 1
		}
	}
	f.pos++
	if f.pos == len(f.hist) {
		f.pos = 0
	}
	return y
}

// Reset implements Filter.
func (f *FIR) Reset() {
	for i := range f.hist {
		f.hist[i] = 0
	}
	f.pos = 0
}

// ProcessBlock applies a streaming filter to a block, returning a new
// slice.
func ProcessBlock(f Filter, xs []float64) []float64 {
	return AppendProcessBlock(make([]float64, 0, len(xs)), f, xs)
}

// AppendProcessBlock applies a streaming filter to a block, appending the
// outputs to dst — the allocation-free variant for buffer-reusing
// pipelines. xs may alias dst's backing array as long as the read region
// precedes the append region.
func AppendProcessBlock(dst []float64, f Filter, xs []float64) []float64 {
	for _, x := range xs {
		dst = append(dst, f.Process(x))
	}
	return dst
}

// FrequencyResponse returns the magnitude response |H(e^{jω})| of a biquad
// at the given frequency.
func (f *Biquad) FrequencyResponse(freqHz, fsHz float64) float64 {
	w := 2 * math.Pi * freqHz / fsHz
	z := complex(math.Cos(w), math.Sin(w))
	num := complex(f.B0, 0) + complex(f.B1, 0)/z + complex(f.B2, 0)/(z*z)
	den := complex(1, 0) + complex(f.A1, 0)/z + complex(f.A2, 0)/(z*z)
	return cmplxAbs(num) / cmplxAbs(den)
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

// MedianAbsDeviation returns the robust noise σ estimate used by spike
// detectors: median(|x|)/0.6745 (Quiroga's estimator).
func MedianAbsDeviation(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	abs := make([]float64, len(xs))
	for i, x := range xs {
		abs[i] = math.Abs(x)
	}
	sort.Float64s(abs)
	var med float64
	n := len(abs)
	if n%2 == 1 {
		med = abs[n/2]
	} else {
		med = (abs[n/2-1] + abs[n/2]) / 2
	}
	return med / 0.6745
}
