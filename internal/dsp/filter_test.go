package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLowpassDesign(t *testing.T) {
	f, err := NewLowpass(300, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Stable() {
		t.Fatal("lowpass unstable")
	}
	if got := f.FrequencyResponse(0.001, 8000); math.Abs(got-1) > 1e-3 {
		t.Errorf("DC gain = %v, want 1", got)
	}
	// −3 dB at the cutoff for a Butterworth design.
	if got := f.FrequencyResponse(300, 8000); math.Abs(got-math.Sqrt2/2) > 0.01 {
		t.Errorf("gain at cutoff = %v, want 0.707", got)
	}
	// Strong attenuation one decade above cutoff (−40 dB/decade for 2nd order).
	if got := f.FrequencyResponse(3000, 8000); got > 0.02 {
		t.Errorf("gain a decade above cutoff = %v, want < 0.02", got)
	}
}

func TestHighpassDesign(t *testing.T) {
	f, err := NewHighpass(300, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Stable() {
		t.Fatal("highpass unstable")
	}
	if got := f.FrequencyResponse(0.001, 8000); got > 1e-3 {
		t.Errorf("DC gain = %v, want ≈0", got)
	}
	if got := f.FrequencyResponse(300, 8000); math.Abs(got-math.Sqrt2/2) > 0.01 {
		t.Errorf("gain at cutoff = %v, want 0.707", got)
	}
	if got := f.FrequencyResponse(3500, 8000); math.Abs(got-1) > 0.01 {
		t.Errorf("passband gain = %v, want 1", got)
	}
}

func TestDesignValidation(t *testing.T) {
	if _, err := NewLowpass(0, 8000); err == nil {
		t.Errorf("zero cutoff should fail")
	}
	if _, err := NewLowpass(4000, 8000); err == nil {
		t.Errorf("cutoff at Nyquist should fail")
	}
	if _, err := NewHighpass(100, 0); err == nil {
		t.Errorf("zero sample rate should fail")
	}
	if _, err := NewBandpass(500, 300, 8000); err == nil {
		t.Errorf("inverted band edges should fail")
	}
	if _, err := NewBandpass(0, 300, 8000); err == nil {
		t.Errorf("bad low edge should fail")
	}
	if _, err := NewBandpass(300, 4000, 8000); err == nil {
		t.Errorf("bad high edge should fail")
	}
}

func TestStabilityProperty(t *testing.T) {
	// Every valid Butterworth design must be stable.
	f := func(a, b float64) bool {
		fs := 1000 + math.Abs(math.Mod(a, 50000))
		cut := math.Abs(math.Mod(b, fs/2-2)) + 1
		lp, err := NewLowpass(cut, fs)
		if err != nil {
			return false
		}
		hp, err := NewHighpass(cut, fs)
		if err != nil {
			return false
		}
		return lp.Stable() && hp.Stable()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterImpulseDecays(t *testing.T) {
	lp, err := NewLowpass(300, 8000)
	if err != nil {
		t.Fatal(err)
	}
	lp.Process(1)
	last := math.Inf(1)
	for i := 0; i < 2000; i++ {
		last = lp.Process(0)
	}
	if math.Abs(last) > 1e-9 {
		t.Errorf("impulse response did not decay: %v", last)
	}
}

func TestBandpassPassesSpikeBand(t *testing.T) {
	bp, err := NewBandpass(300, 3000, 16000)
	if err != nil {
		t.Fatal(err)
	}
	// Measure sinusoid gain through the chain (steady state).
	gain := func(freq float64) float64 {
		bp.Reset()
		peak := 0.0
		for i := 0; i < 16000; i++ {
			y := bp.Process(math.Sin(2 * math.Pi * freq * float64(i) / 16000))
			if i > 8000 && math.Abs(y) > peak {
				peak = math.Abs(y)
			}
		}
		return peak
	}
	if g := gain(1000); g < 0.8 {
		t.Errorf("in-band gain = %v", g)
	}
	if g := gain(10); g > 0.05 {
		t.Errorf("LFP leak-through = %v", g)
	}
	if g := gain(7500); g > 0.2 {
		t.Errorf("high-frequency leak-through = %v", g)
	}
}

func TestChainReset(t *testing.T) {
	bp, err := NewBandpass(300, 3000, 16000)
	if err != nil {
		t.Fatal(err)
	}
	y1 := bp.Process(1)
	bp.Reset()
	y2 := bp.Process(1)
	if y1 != y2 {
		t.Errorf("Reset did not restore initial state: %v vs %v", y1, y2)
	}
}

func TestFIRMovingAverage(t *testing.T) {
	ma, err := NewMovingAverage(4)
	if err != nil {
		t.Fatal(err)
	}
	// Step response reaches 1 after 4 samples.
	var last float64
	for i := 0; i < 4; i++ {
		last = ma.Process(1)
	}
	if math.Abs(last-1) > 1e-12 {
		t.Errorf("step response = %v, want 1", last)
	}
	// Partial fill: first output is 1/4.
	ma.Reset()
	if got := ma.Process(1); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("first output = %v, want 0.25", got)
	}
	if _, err := NewMovingAverage(0); err == nil {
		t.Errorf("zero-length moving average should fail")
	}
	if _, err := NewFIR(nil); err == nil {
		t.Errorf("empty FIR should fail")
	}
}

func TestFIRMatchesConvolution(t *testing.T) {
	taps := []float64{0.5, -0.25, 0.125}
	f, err := NewFIR(taps)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{1, 2, 3, 4, 5}
	got := ProcessBlock(f, xs)
	for n := range xs {
		want := 0.0
		for k, tp := range taps {
			if n-k >= 0 {
				want += tp * xs[n-k]
			}
		}
		if math.Abs(got[n]-want) > 1e-12 {
			t.Errorf("y[%d] = %v, want %v", n, got[n], want)
		}
	}
}

func TestMedianAbsDeviation(t *testing.T) {
	// On Gaussian noise, the estimator recovers σ.
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 2.5
	}
	if got := MedianAbsDeviation(xs); math.Abs(got-2.5) > 0.1 {
		t.Errorf("MAD σ = %v, want ≈2.5", got)
	}
	if MedianAbsDeviation(nil) != 0 {
		t.Errorf("empty MAD should be 0")
	}
	// Even-length exact case.
	if got := MedianAbsDeviation([]float64{-1, 1, -3, 3}); math.Abs(got-2/0.6745) > 1e-12 {
		t.Errorf("even MAD = %v", got)
	}
}

func TestMADRobustToSpikesProperty(t *testing.T) {
	// Adding a few large outliers must barely move the estimate — the
	// reason detectors use MAD instead of RMS.
	rng := rand.New(rand.NewSource(9))
	base := make([]float64, 5000)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	clean := MedianAbsDeviation(base)
	withSpikes := append([]float64(nil), base...)
	for i := 0; i < 50; i++ {
		withSpikes[i*100] = -40
	}
	dirty := MedianAbsDeviation(withSpikes)
	if math.Abs(dirty-clean) > 0.05*clean {
		t.Errorf("MAD moved from %v to %v under 1%% outliers", clean, dirty)
	}
}
