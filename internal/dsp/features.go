package dsp

import (
	"fmt"
)

// BandPowerExtractor computes the canonical ECoG feature the paper's
// speech decoders consume: band-limited signal power. The chain is
// band-pass → square-law rectification → low-pass envelope smoothing →
// decimation, exactly what an on-implant feature front end implements
// before the DNN (high-gamma power at a reduced rate).
type BandPowerExtractor struct {
	band     Chain
	envelope *Biquad
	// Decimate is the output rate divider (one feature per Decimate
	// input samples).
	Decimate int

	count int
	last  float64
}

// NewBandPowerExtractor builds an extractor: the analysis band
// [lowHz, highHz], an envelope cutoff, and a decimation factor, all at
// sample rate fsHz.
func NewBandPowerExtractor(lowHz, highHz, envelopeHz, fsHz float64, decimate int) (*BandPowerExtractor, error) {
	if decimate < 1 {
		return nil, fmt.Errorf("dsp: decimation %d must be ≥ 1", decimate)
	}
	band, err := NewBandpass(lowHz, highHz, fsHz)
	if err != nil {
		return nil, err
	}
	env, err := NewLowpass(envelopeHz, fsHz)
	if err != nil {
		return nil, err
	}
	return &BandPowerExtractor{band: band, envelope: env, Decimate: decimate}, nil
}

// NewHighGammaExtractor returns the standard speech-decoding feature:
// 70–170 Hz power smoothed at 10 Hz, decimated to ≈100 features/s.
func NewHighGammaExtractor(fsHz float64) (*BandPowerExtractor, error) {
	dec := int(fsHz / 100)
	if dec < 1 {
		dec = 1
	}
	return NewBandPowerExtractor(70, 170, 10, fsHz, dec)
}

// Process consumes one sample; the boolean reports whether a decimated
// feature was emitted this step.
func (e *BandPowerExtractor) Process(x float64) (float64, bool) {
	v := e.band.Process(x)
	p := e.envelope.Process(v * v)
	e.last = p
	e.count++
	if e.count%e.Decimate == 0 {
		return p, true
	}
	return 0, false
}

// Last returns the most recent envelope value regardless of decimation.
func (e *BandPowerExtractor) Last() float64 { return e.last }

// Reset clears all filter state.
func (e *BandPowerExtractor) Reset() {
	e.band.Reset()
	e.envelope.Reset()
	e.count = 0
	e.last = 0
}

// ExtractBandPower runs one extractor per channel over a block
// (block[i][c] = channel c at time i) and returns the decimated feature
// matrix (features[t][c]).
func ExtractBandPower(block [][]float64, lowHz, highHz, envelopeHz, fsHz float64, decimate int) ([][]float64, error) {
	if len(block) == 0 {
		return nil, nil
	}
	nCh := len(block[0])
	extractors := make([]*BandPowerExtractor, nCh)
	for c := range extractors {
		e, err := NewBandPowerExtractor(lowHz, highHz, envelopeHz, fsHz, decimate)
		if err != nil {
			return nil, err
		}
		extractors[c] = e
	}
	var out [][]float64
	row := make([]float64, nCh)
	for i := range block {
		emitted := false
		for c := 0; c < nCh; c++ {
			v, ok := extractors[c].Process(block[i][c])
			if ok {
				row[c] = v
				emitted = true
			}
		}
		if emitted {
			cp := make([]float64, nCh)
			copy(cp, row)
			out = append(out, cp)
		}
	}
	return out, nil
}
