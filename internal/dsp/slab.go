package dsp

import "fmt"

// Slab kernels: the batched execution model runs per-channel DSP over a
// dense row-major [rows × n] block (row r = one channel's contiguous
// sample window) instead of one sample at a time, amortizing dispatch
// and keeping the inner loops cache-resident. Every kernel is
// bit-identical to its scalar counterpart: an IIR stage is causal over
// its own state, so filtering a whole row through stage 1 then stage 2
// produces exactly the per-sample cascade's output, and the biquad
// arithmetic below is the same expressions as Biquad.Process with the
// coefficients and state held in registers (pinned by slab_test.go).

// ProcessBiquadSlab runs row r of the slab through filters[r] in place.
// len(slab) must be len(filters)*n. Filter state carries across calls,
// so consecutive slabs continue each row's stream.
func ProcessBiquadSlab(filters []*Biquad, slab []float64, n int) error {
	if n < 0 || len(slab) != len(filters)*n {
		return fmt.Errorf("dsp: slab holds %d samples, want %d rows × %d", len(slab), len(filters), n)
	}
	for r, f := range filters {
		row := slab[r*n : (r+1)*n]
		b0, b1, b2, a1, a2 := f.B0, f.B1, f.B2, f.A1, f.A2
		z1, z2 := f.z1, f.z2
		for i, x := range row {
			y := b0*x + z1
			z1 = b1*x - a1*y + z2
			z2 = b2*x - a2*y
			row[i] = y
		}
		f.z1, f.z2 = z1, z2
	}
	return nil
}

// ProcessChainSlab runs row r of the slab through chains[r] in place,
// stage by stage: biquad stages use the register kernel above, any
// other Filter falls back to per-sample Process. Output is
// bit-identical to calling chains[r].Process on each sample.
func ProcessChainSlab(chains []Chain, slab []float64, n int) error {
	if n < 0 || len(slab) != len(chains)*n {
		return fmt.Errorf("dsp: slab holds %d samples, want %d rows × %d", len(slab), len(chains), n)
	}
	var one [1]*Biquad
	for r, c := range chains {
		row := slab[r*n : (r+1)*n]
		for _, stage := range c {
			if bq, ok := stage.(*Biquad); ok {
				one[0] = bq
				if err := ProcessBiquadSlab(one[:], row, n); err != nil {
					return err
				}
				continue
			}
			for i, x := range row {
				row[i] = stage.Process(x)
			}
		}
	}
	return nil
}

// NEOSlab computes the nonlinear energy operator row by row: out and
// slab are [rows × n] blocks and out row r is exactly AppendNEO of slab
// row r (ψ[i] = x[i]² − x[i−1]·x[i+1], edges zero).
func NEOSlab(out, slab []float64, rows, n int) error {
	if len(slab) != rows*n || len(out) != rows*n {
		return fmt.Errorf("dsp: NEO slab shapes %d/%d, want %d rows × %d", len(out), len(slab), rows, n)
	}
	for r := 0; r < rows; r++ {
		x := slab[r*n : (r+1)*n]
		y := out[r*n : (r+1)*n]
		for i := range y {
			y[i] = 0
		}
		for i := 1; i+1 < n; i++ {
			y[i] = x[i]*x[i] - x[i-1]*x[i+1]
		}
	}
	return nil
}

// DetectSlab runs the NEO detector over every row of a slab, appending
// row r's spike indices to out[r] (out is grown to rows entries when
// shorter). Per-row results are identical to Detect; the ψ and
// smoothing scratch is shared across rows.
func (d NEODetector) DetectSlab(out [][]int, slab []float64, rows, n int) ([][]int, error) {
	if len(slab) != rows*n {
		return out, fmt.Errorf("dsp: slab holds %d samples, want %d rows × %d", len(slab), rows, n)
	}
	if d.ThresholdFactor <= 0 || d.SmoothSamples < 1 {
		return out, fmt.Errorf("dsp: invalid NEO detector parameters")
	}
	ma, err := NewMovingAverage(d.SmoothSamples)
	if err != nil {
		return out, err
	}
	for len(out) < rows {
		out = append(out, nil)
	}
	scratch := getF64Buf()
	defer putF64Buf(scratch)
	for r := 0; r < rows; r++ {
		xs := slab[r*n : (r+1)*n]
		psi := AppendNEO((*scratch)[:0], xs)
		ma.Reset()
		psi = AppendProcessBlock(psi, ma, psi[:n])
		*scratch = psi
		smooth := psi[n:]
		mean := 0.0
		for _, v := range smooth {
			mean += v
		}
		if len(smooth) > 0 {
			mean /= float64(len(smooth))
		}
		if mean <= 0 {
			continue
		}
		thr := d.ThresholdFactor * mean
		hold := 0
		for i, v := range smooth {
			if hold > 0 {
				hold--
				continue
			}
			if v > thr {
				out[r] = append(out[r], i)
				hold = d.RefractorySamples
			}
		}
	}
	return out, nil
}
