package dsp

import (
	"math"
	"testing"
)

func sine(freq, fsHz float64, n int, amp float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = amp * math.Sin(2*math.Pi*freq*float64(i)/fsHz)
	}
	return out
}

func meanFeature(t *testing.T, e *BandPowerExtractor, xs []float64) float64 {
	t.Helper()
	var sum float64
	var n int
	for i, x := range xs {
		v, ok := e.Process(x)
		if ok && i > len(xs)/2 { // skip the settling transient
			sum += v
			n++
		}
	}
	if n == 0 {
		t.Fatal("no features emitted")
	}
	return sum / float64(n)
}

func TestBandPowerSelectsBand(t *testing.T) {
	const fs = 2000
	e, err := NewHighGammaExtractor(fs)
	if err != nil {
		t.Fatal(err)
	}
	inBand := meanFeature(t, e, sine(120, fs, 4*fs, 1))
	e.Reset()
	below := meanFeature(t, e, sine(10, fs, 4*fs, 1))
	e.Reset()
	above := meanFeature(t, e, sine(600, fs, 4*fs, 1))
	if inBand < 20*below {
		t.Errorf("in-band power %v should dwarf low-frequency %v", inBand, below)
	}
	if inBand < 20*above {
		t.Errorf("in-band power %v should dwarf high-frequency %v", inBand, above)
	}
	// Power scales with amplitude squared.
	e.Reset()
	half := meanFeature(t, e, sine(120, fs, 4*fs, 0.5))
	if math.Abs(half/inBand-0.25) > 0.05 {
		t.Errorf("power ratio at half amplitude = %v, want ≈0.25", half/inBand)
	}
}

func TestBandPowerDecimation(t *testing.T) {
	const fs = 2000
	e, err := NewBandPowerExtractor(70, 170, 10, fs, 20)
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	for _, x := range sine(120, fs, 1000, 1) {
		if _, ok := e.Process(x); ok {
			emitted++
		}
	}
	if emitted != 50 {
		t.Errorf("emitted %d features for 1000 samples at ÷20, want 50", emitted)
	}
	if e.Last() <= 0 {
		t.Errorf("Last should track the envelope")
	}
}

func TestHighGammaExtractorDefaults(t *testing.T) {
	e, err := NewHighGammaExtractor(2000)
	if err != nil {
		t.Fatal(err)
	}
	if e.Decimate != 20 { // 2 kHz → 100 features/s
		t.Errorf("decimation = %d, want 20", e.Decimate)
	}
	// Very low sample rates clamp the divider.
	low, err := NewHighGammaExtractor(500)
	if err != nil {
		t.Fatal(err)
	}
	if low.Decimate != 5 {
		t.Errorf("500 Hz decimation = %d, want 5", low.Decimate)
	}
}

func TestBandPowerValidation(t *testing.T) {
	if _, err := NewBandPowerExtractor(70, 170, 10, 2000, 0); err == nil {
		t.Errorf("zero decimation should fail")
	}
	if _, err := NewBandPowerExtractor(170, 70, 10, 2000, 1); err == nil {
		t.Errorf("inverted band should fail")
	}
	if _, err := NewBandPowerExtractor(70, 170, 0, 2000, 1); err == nil {
		t.Errorf("zero envelope cutoff should fail")
	}
}

func TestExtractBandPowerBlock(t *testing.T) {
	const fs = 2000
	n := 2 * fs
	block := make([][]float64, n)
	carrier := sine(120, fs, n, 1)
	for i := range block {
		// Channel 0 carries in-band power, channel 1 is silent.
		block[i] = []float64{carrier[i], 0}
	}
	features, err := ExtractBandPower(block, 70, 170, 10, fs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(features) != n/20 {
		t.Fatalf("feature rows = %d, want %d", len(features), n/20)
	}
	lastRow := features[len(features)-1]
	if len(lastRow) != 2 {
		t.Fatalf("feature width = %d", len(lastRow))
	}
	if lastRow[0] < 100*math.Max(lastRow[1], 1e-12) {
		t.Errorf("active channel %v should dominate silent %v", lastRow[0], lastRow[1])
	}
	if got, err := ExtractBandPower(nil, 70, 170, 10, fs, 20); err != nil || got != nil {
		t.Errorf("empty block: %v, %v", got, err)
	}
	if _, err := ExtractBandPower(block, 170, 70, 10, fs, 20); err == nil {
		t.Errorf("bad band should fail")
	}
}
