package dsp

import (
	"math"
	"testing"
)

// Zero-allocation pins for the DSP hot paths the fleet simulator and the
// implant compression flow reuse buffers through.

func assertZeroAlloc(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm-up: grow buffers to steady state
	if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op at steady state, want 0", name, allocs)
	}
}

func TestAppendDeltaRiceEncodeZeroAlloc(t *testing.T) {
	samples := make([]uint16, 512)
	for i := range samples {
		samples[i] = uint16(512 + 80*math.Sin(float64(i)/9))
	}
	var enc []byte
	assertZeroAlloc(t, "AppendDeltaRiceEncode", func() {
		var err error
		enc, err = AppendDeltaRiceEncode(enc[:0], samples, 10)
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAppendNEOZeroAlloc(t *testing.T) {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = math.Sin(float64(i) / 5)
	}
	var psi []float64
	assertZeroAlloc(t, "AppendNEO", func() {
		psi = AppendNEO(psi[:0], xs)
	})
}

func TestAppendProcessBlockZeroAlloc(t *testing.T) {
	ma, err := NewMovingAverage(8)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = math.Cos(float64(i) / 3)
	}
	var out []float64
	assertZeroAlloc(t, "AppendProcessBlock", func() {
		out = AppendProcessBlock(out[:0], ma, xs)
	})
}
