package dsp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func randSlab(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

// TestProcessBiquadSlabBitIdentical pins the register-kernel biquad
// against per-sample Process, including state carry across slab calls.
func TestProcessBiquadSlabBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rows, n = 6, 128
	mk := func() []*Biquad {
		fs := make([]*Biquad, rows)
		for r := range fs {
			f, err := NewLowpass(300+50*float64(r), 30000)
			if err != nil {
				t.Fatal(err)
			}
			fs[r] = f
		}
		return fs
	}
	slabF, refF := mk(), mk()
	for block := 0; block < 4; block++ {
		src := randSlab(rng, rows*n)
		want := append([]float64(nil), src...)
		for r := 0; r < rows; r++ {
			for i := 0; i < n; i++ {
				want[r*n+i] = refF[r].Process(want[r*n+i])
			}
		}
		got := append([]float64(nil), src...)
		if err := ProcessBiquadSlab(slabF, got, n); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("block %d sample %d: %v != %v", block, i, got[i], want[i])
			}
		}
	}
	if err := ProcessBiquadSlab(mk(), make([]float64, 3), n); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// TestProcessChainSlabBitIdentical pins the cascaded slab path
// (bandpass = highpass→lowpass, plus an FIR fallback stage) against
// per-sample Chain.Process.
func TestProcessChainSlabBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const rows, n = 4, 96
	mk := func() []Chain {
		cs := make([]Chain, rows)
		for r := range cs {
			bp, err := NewBandpass(300, 5000, 30000)
			if err != nil {
				t.Fatal(err)
			}
			ma, err := NewMovingAverage(3)
			if err != nil {
				t.Fatal(err)
			}
			cs[r] = append(bp, ma)
		}
		return cs
	}
	slabC, refC := mk(), mk()
	for block := 0; block < 3; block++ {
		src := randSlab(rng, rows*n)
		want := append([]float64(nil), src...)
		for r := 0; r < rows; r++ {
			for i := 0; i < n; i++ {
				want[r*n+i] = refC[r].Process(want[r*n+i])
			}
		}
		got := append([]float64(nil), src...)
		if err := ProcessChainSlab(slabC, got, n); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("block %d sample %d: %v != %v", block, i, got[i], want[i])
			}
		}
	}
}

// TestNEOSlabMatchesAppendNEO pins the slab ψ kernel against the scalar
// reference, and the slab detection path against per-row Detect.
func TestNEOSlabMatchesAppendNEO(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const rows, n = 5, 400
	slab := randSlab(rng, rows*n)
	// Plant an obvious transient per row.
	for r := 0; r < rows; r++ {
		slab[r*n+50+3*r] = 40
	}
	out := make([]float64, rows*n)
	if err := NEOSlab(out, slab, rows, n); err != nil {
		t.Fatal(err)
	}
	d := NewNEODetector(30000)
	hits, err := d.DetectSlab(nil, slab, rows, n)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		want := AppendNEO(nil, slab[r*n:(r+1)*n])
		got := out[r*n : (r+1)*n]
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("row %d sample %d: ψ %v != %v", r, i, got[i], want[i])
			}
		}
		refHits, err := d.Detect(slab[r*n : (r+1)*n])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hits[r], refHits) {
			t.Fatalf("row %d: slab detections %v != scalar %v", r, hits[r], refHits)
		}
		found := false
		for _, h := range refHits {
			if h >= 50+3*r-2 && h <= 50+3*r+2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("row %d: planted transient not detected (hits %v)", r, refHits)
		}
	}
	if err := NEOSlab(out[:1], slab, rows, n); err == nil {
		t.Error("shape mismatch accepted")
	}
	if _, err := d.DetectSlab(nil, slab[:1], rows, n); err == nil {
		t.Error("detect shape mismatch accepted")
	}
}

func BenchmarkBiquadPerSample(b *testing.B) {
	f, _ := NewLowpass(300, 30000)
	xs := randSlab(rand.New(rand.NewSource(1)), 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, x := range xs {
			sink = f.Process(x)
		}
	}
}

func BenchmarkBiquadSlab(b *testing.B) {
	const rows = 16
	fs := make([]*Biquad, rows)
	for r := range fs {
		fs[r], _ = NewLowpass(300, 30000)
	}
	slab := randSlab(rand.New(rand.NewSource(1)), rows*1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ProcessBiquadSlab(fs, slab, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNEOSlab(b *testing.B) {
	const rows, n = 16, 1024
	slab := randSlab(rand.New(rand.NewSource(1)), rows*n)
	out := make([]float64, rows*n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := NEOSlab(out, slab, rows, n); err != nil {
			b.Fatal(err)
		}
	}
}

var sink float64
