package dsp

import (
	"fmt"
	"math"
	"sort"
)

// Detector finds action potentials by negative-threshold crossing with a
// refractory hold-off, the hardware-efficient method implanted SoCs use
// for on-chip spike detection.
type Detector struct {
	// ThresholdSigmas is the detection threshold as a multiple of the
	// robust noise estimate (typically 3.5–5).
	ThresholdSigmas float64
	// RefractorySamples suppresses re-triggering for this many samples.
	RefractorySamples int
}

// NewDetector returns a detector with standard settings for the given
// sample rate: 4σ threshold, 1 ms refractory period.
func NewDetector(fsHz float64) Detector {
	return Detector{
		ThresholdSigmas:   4,
		RefractorySamples: int(fsHz * 1e-3),
	}
}

// Detect returns the sample indices of detected spikes (the index of the
// threshold crossing). The noise level is estimated from the trace itself.
func (d Detector) Detect(xs []float64) []int {
	sigma := MedianAbsDeviation(xs)
	return d.DetectWithSigma(xs, sigma)
}

// DetectWithSigma detects spikes against an externally supplied noise σ.
func (d Detector) DetectWithSigma(xs []float64, sigma float64) []int {
	if sigma <= 0 {
		return nil
	}
	thr := -d.ThresholdSigmas * sigma
	var out []int
	hold := 0
	for i, x := range xs {
		if hold > 0 {
			hold--
			continue
		}
		if x < thr {
			out = append(out, i)
			hold = d.RefractorySamples
		}
	}
	return out
}

// StreamingDetector is the sample-at-a-time form of Detector for on-chip
// use: it estimates the noise level from an initial calibration window,
// then flags threshold crossings with a refractory hold-off. This is the
// spike-detection block implanted SoCs (e.g. Neuralink) run per channel to
// compress the uplink to spike events.
type StreamingDetector struct {
	// ThresholdSigmas and RefractorySamples as in Detector.
	ThresholdSigmas   float64
	RefractorySamples int

	calBuf    []float64
	calNeeded int
	thr       float64
	hold      int
}

// NewStreamingDetector returns a detector that calibrates its threshold on
// the first calibrationSamples samples (4σ, 1 ms refractory at fsHz).
func NewStreamingDetector(fsHz float64, calibrationSamples int) (*StreamingDetector, error) {
	if calibrationSamples < 8 {
		return nil, fmt.Errorf("dsp: calibration window %d too short", calibrationSamples)
	}
	return &StreamingDetector{
		ThresholdSigmas:   4,
		RefractorySamples: int(fsHz * 1e-3),
		calNeeded:         calibrationSamples,
	}, nil
}

// Ready reports whether calibration has completed.
func (d *StreamingDetector) Ready() bool { return d.calNeeded == 0 }

// Process consumes one sample and reports a detected spike. During
// calibration it always returns false.
func (d *StreamingDetector) Process(x float64) bool {
	if d.calNeeded > 0 {
		d.calBuf = append(d.calBuf, x)
		d.calNeeded--
		if d.calNeeded == 0 {
			sigma := MedianAbsDeviation(d.calBuf)
			d.thr = -d.ThresholdSigmas * sigma
			d.calBuf = nil
		}
		return false
	}
	if d.hold > 0 {
		d.hold--
		return false
	}
	if d.thr < 0 && x < d.thr {
		d.hold = d.RefractorySamples
		return true
	}
	return false
}

// ExtractSnippets cuts fixed-length windows around detected spikes for
// sorting: pre samples before and post samples after each index. Spikes too
// close to the edges are skipped.
func ExtractSnippets(xs []float64, idx []int, pre, post int) [][]float64 {
	var out [][]float64
	for _, i := range idx {
		if i-pre < 0 || i+post > len(xs) {
			continue
		}
		snip := make([]float64, pre+post)
		copy(snip, xs[i-pre:i+post])
		out = append(out, snip)
	}
	return out
}

// Sorter assigns spike snippets to units by nearest-template matching —
// the spike-sorting step the paper lists as a data-reduction method
// (Section 6.2, "methods such as spike sorting are often used to reduce
// the amount of neural data").
type Sorter struct {
	Templates [][]float64
}

// NewSorter builds a sorter from unit templates, all of equal length.
func NewSorter(templates [][]float64) (*Sorter, error) {
	if len(templates) == 0 {
		return nil, fmt.Errorf("dsp: sorter needs at least one template")
	}
	n := len(templates[0])
	for i, tp := range templates {
		if len(tp) != n {
			return nil, fmt.Errorf("dsp: template %d length %d != %d", i, len(tp), n)
		}
	}
	return &Sorter{Templates: templates}, nil
}

// Classify returns the index of the closest template (squared Euclidean
// distance) and that distance.
func (s *Sorter) Classify(snippet []float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, tp := range s.Templates {
		d := sqDist(snippet, tp)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func sqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0.0
	for i := 0; i < n; i++ {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

// LearnTemplates clusters snippets into k templates with Lloyd's k-means
// (deterministic farthest-point initialization). It returns the templates
// sorted by descending cluster size.
func LearnTemplates(snippets [][]float64, k, iters int) ([][]float64, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dsp: k must be positive")
	}
	if len(snippets) < k {
		return nil, fmt.Errorf("dsp: %d snippets cannot form %d clusters", len(snippets), k)
	}
	dim := len(snippets[0])
	for _, s := range snippets {
		if len(s) != dim {
			return nil, fmt.Errorf("dsp: ragged snippets")
		}
	}
	// Farthest-point initialization from snippet 0.
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), snippets[0]...))
	for len(centers) < k {
		bestIdx, bestD := 0, -1.0
		for i, s := range snippets {
			d := math.Inf(1)
			for _, c := range centers {
				if dd := sqDist(s, c); dd < d {
					d = dd
				}
			}
			if d > bestD {
				bestIdx, bestD = i, d
			}
		}
		centers = append(centers, append([]float64(nil), snippets[bestIdx]...))
	}
	assign := make([]int, len(snippets))
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		changed := false
		for i, s := range snippets {
			best, bestD := 0, math.Inf(1)
			for j, c := range centers {
				if d := sqDist(s, c); d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		for j := range centers {
			for d := range centers[j] {
				centers[j][d] = 0
			}
			counts[j] = 0
		}
		for i, s := range snippets {
			j := assign[i]
			counts[j]++
			for d, v := range s {
				centers[j][d] += v
			}
		}
		for j := range centers {
			if counts[j] == 0 {
				continue // keep previous center (now zeroed; re-seed below)
			}
			for d := range centers[j] {
				centers[j][d] /= float64(counts[j])
			}
		}
		if !changed && it > 0 {
			break
		}
	}
	// Sort templates by descending cluster size.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	out := make([][]float64, k)
	for i, j := range order {
		out[i] = centers[j]
	}
	return out, nil
}

// ChannelActivity summarizes one channel's spiking for dropout ranking.
type ChannelActivity struct {
	Channel int
	Spikes  int
	RateHz  float64
}

// RankChannels detects spikes on every channel of a block (block[i][c] is
// channel c at time i) and returns channels ordered by descending spike
// count. fsHz is the sample rate used for the rate estimate.
func RankChannels(block [][]float64, fsHz float64) []ChannelActivity {
	if len(block) == 0 {
		return nil
	}
	nCh := len(block[0])
	det := NewDetector(fsHz)
	out := make([]ChannelActivity, nCh)
	trace := make([]float64, len(block))
	dur := float64(len(block)) / fsHz
	for c := 0; c < nCh; c++ {
		for i := range block {
			trace[i] = block[i][c]
		}
		n := len(det.Detect(trace))
		out[c] = ChannelActivity{Channel: c, Spikes: n, RateHz: float64(n) / dur}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Spikes > out[b].Spikes })
	return out
}

// SelectActive returns the channel indices of the top n entries of a
// ranking (the channel-dropout selection n′ ≤ n).
func SelectActive(ranked []ChannelActivity, n int) []int {
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]int, 0, n)
	for _, r := range ranked[:n] {
		out = append(out, r.Channel)
	}
	sort.Ints(out)
	return out
}
