package dsp

import "testing"

// FuzzDeltaRiceDecode throws arbitrary bitstreams at the Rice decoder.
// Invariants: never panics, and every trace it accepts re-encodes and
// decodes back to itself (the codec is self-consistent on its accepted
// language).
func FuzzDeltaRiceDecode(f *testing.F) {
	enc, err := DeltaRiceEncode([]uint16{100, 101, 99, 120, 100}, 10)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc, 5, 10)
	f.Add([]byte{}, 1, 1)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, 8, 8)

	f.Fuzz(func(t *testing.T, data []byte, count, sampleBits int) {
		if count < 0 || count > 1<<12 {
			return // bound work, not validity: the decoder must reject on its own
		}
		samples, err := DeltaRiceDecode(data, count, sampleBits)
		if err != nil {
			return
		}
		if len(samples) != count {
			t.Fatalf("decoded %d samples, want %d", len(samples), count)
		}
		re, err := DeltaRiceEncode(samples, sampleBits)
		if err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		back, err := DeltaRiceDecode(re, count, sampleBits)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		for i := range samples {
			if back[i] != samples[i] {
				t.Fatalf("sample %d: %d after round trip, want %d", i, back[i], samples[i])
			}
		}
	})
}

// FuzzDeltaRiceRoundTrip drives the encoder with arbitrary in-range
// traces: encode → decode must be the identity, and the Append variant
// must agree with the allocating API.
func FuzzDeltaRiceRoundTrip(f *testing.F) {
	f.Add([]byte{10, 20, 30, 25, 15}, uint8(10))
	f.Add([]byte{0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, bitsRaw uint8) {
		sampleBits := int(bitsRaw)%16 + 1
		if len(raw) == 0 || len(raw) > 1<<12 {
			return
		}
		samples := make([]uint16, len(raw))
		for i, b := range raw {
			samples[i] = uint16(b) & (1<<sampleBits - 1)
			if sampleBits >= 8 {
				samples[i] = uint16(b) << (sampleBits - 8)
			}
		}
		enc, err := DeltaRiceEncode(samples, sampleBits)
		if err != nil {
			t.Fatalf("encode rejected in-range trace: %v", err)
		}
		if got, err := AppendDeltaRiceEncode(nil, samples, sampleBits); err != nil || string(got) != string(enc) {
			t.Fatalf("AppendDeltaRiceEncode disagrees with DeltaRiceEncode (err %v)", err)
		}
		dec, err := DeltaRiceDecode(enc, len(samples), sampleBits)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		for i := range samples {
			if dec[i] != samples[i] {
				t.Fatalf("sample %d: %d, want %d", i, dec[i], samples[i])
			}
		}
	})
}
