package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mindful/internal/neural"
)

func TestNEOEmphasizesSpikes(t *testing.T) {
	at := []int{200, 600}
	xs := synthTrace(1000, testTemplate, at, 0.03, 41)
	psi := NEO(xs)
	if psi[0] != 0 || psi[len(psi)-1] != 0 {
		t.Errorf("NEO edges should be zero")
	}
	// ψ around spikes must dwarf ψ in quiet regions.
	peak := 0.0
	for _, idx := range at {
		for k := 0; k < len(testTemplate); k++ {
			if v := psi[idx+k]; v > peak {
				peak = v
			}
		}
	}
	quiet := 0.0
	for i := 50; i < 150; i++ {
		if v := math.Abs(psi[i]); v > quiet {
			quiet = v
		}
	}
	if peak < 20*quiet {
		t.Errorf("NEO contrast too low: peak %v vs quiet %v", peak, quiet)
	}
}

func TestNEODetectorFindsSpikes(t *testing.T) {
	at := []int{300, 900, 1500, 2100}
	xs := synthTrace(2600, testTemplate, at, 0.05, 43)
	det := NewNEODetector(8000)
	got, err := det.Detect(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(at) {
		t.Fatalf("detected %d spikes, want %d (%v)", len(got), len(at), got)
	}
	for i, idx := range got {
		if idx < at[i] || idx > at[i]+len(testTemplate)+4 {
			t.Errorf("spike %d at %d, want ≈%d", i, idx, at[i])
		}
	}
}

func TestNEODetectorEdgeCases(t *testing.T) {
	det := NewNEODetector(8000)
	got, err := det.Detect(make([]float64, 100))
	if err != nil || got != nil {
		t.Errorf("flat trace: %v, %v", got, err)
	}
	bad := det
	bad.ThresholdFactor = 0
	if _, err := bad.Detect(make([]float64, 10)); err == nil {
		t.Errorf("invalid factor should fail")
	}
	bad = det
	bad.SmoothSamples = 0
	if _, err := bad.Detect(make([]float64, 10)); err == nil {
		t.Errorf("invalid smoothing should fail")
	}
}

func TestZigzagRoundTripProperty(t *testing.T) {
	f := func(v int32) bool {
		return unzigzag(zigzag(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaRiceRoundTrip(t *testing.T) {
	samples := []uint16{512, 514, 513, 520, 519, 500, 505, 1023, 0, 3}
	enc, err := DeltaRiceEncode(samples, 10)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DeltaRiceDecode(enc, len(samples), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if dec[i] != samples[i] {
			t.Fatalf("sample %d: %d != %d", i, dec[i], samples[i])
		}
	}
}

func TestDeltaRiceRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, bitsRaw uint8) bool {
		bits := int(bitsRaw%12) + 4
		n := int(nRaw%800) + 2
		rng := rand.New(rand.NewSource(seed))
		samples := make([]uint16, n)
		// Random-walk signal (realistic smooth trace).
		cur := 1 << (bits - 1)
		max := 1<<bits - 1
		for i := range samples {
			cur += rng.Intn(9) - 4
			if cur < 0 {
				cur = 0
			}
			if cur > max {
				cur = max
			}
			samples[i] = uint16(cur)
		}
		enc, err := DeltaRiceEncode(samples, bits)
		if err != nil {
			return false
		}
		dec, err := DeltaRiceDecode(enc, n, bits)
		if err != nil {
			return false
		}
		for i := range samples {
			if dec[i] != samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeltaRiceCompressesNeuralData(t *testing.T) {
	// On realistic neural traces the codec must beat raw 10-bit coding —
	// the premise of the data-compressive recording IC (SoC 10).
	cfg := neural.DefaultConfig()
	cfg.Channels = 1
	cfg.ActiveFraction = 1
	cfg.NoiseRMS = 0.05 // low-noise front end, the regime compression targets
	g, err := neural.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adc := neural.DefaultADC()
	block := g.NextBlock(4000)
	samples := make([]uint16, len(block))
	for i := range block {
		samples[i] = adc.Quantize(block[i][0])
	}
	ratio, err := CompressionRatio(samples, adc.Bits)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.3 {
		t.Errorf("compression ratio on neural data = %.2f, want > 1.3", ratio)
	}
	// And a worst case: white full-range noise should not explode badly.
	rng := rand.New(rand.NewSource(3))
	noise := make([]uint16, 2000)
	for i := range noise {
		noise[i] = uint16(rng.Intn(1024))
	}
	nr, err := CompressionRatio(noise, 10)
	if err != nil {
		t.Fatal(err)
	}
	if nr < 0.5 {
		t.Errorf("noise expansion too large: ratio %.2f", nr)
	}
}

func TestDeltaRiceValidation(t *testing.T) {
	if _, err := DeltaRiceEncode(nil, 10); err == nil {
		t.Errorf("empty trace should fail")
	}
	if _, err := DeltaRiceEncode([]uint16{1}, 0); err == nil {
		t.Errorf("zero bits should fail")
	}
	if _, err := DeltaRiceDecode(nil, 0, 10); err == nil {
		t.Errorf("zero count should fail")
	}
	if _, err := DeltaRiceDecode([]byte{0}, 10, 10); err == nil {
		t.Errorf("truncated stream should fail")
	}
	// An all-ones stream has an endless unary run: the decoder must
	// detect exhaustion rather than loop or return garbage.
	junk := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := DeltaRiceDecode(junk, 100, 10); err == nil {
		t.Errorf("corrupt stream should fail")
	}
}

func TestRiceK(t *testing.T) {
	if k := RiceK(nil); k != 0 {
		t.Errorf("empty deltas k = %d", k)
	}
	if k := RiceK([]int32{0, 0, 0}); k != 0 {
		t.Errorf("zero deltas k = %d", k)
	}
	small := RiceK([]int32{1, -1, 2, -2})
	large := RiceK([]int32{100, -120, 90, -80})
	if large <= small {
		t.Errorf("k should grow with delta magnitude: %d vs %d", small, large)
	}
	if k := RiceK([]int32{1 << 30}); k != 15 {
		t.Errorf("k should cap at 15, got %d", k)
	}
}
