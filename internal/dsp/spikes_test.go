package dsp

import (
	"math"
	"math/rand"
	"testing"

	"mindful/internal/neural"
	"mindful/internal/units"
)

// synthTrace builds a noise trace with spikes of the given template at the
// given indices.
func synthTrace(n int, template []float64, at []int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * noise
	}
	for _, idx := range at {
		for k, v := range template {
			if idx+k < n {
				xs[idx+k] += v
			}
		}
	}
	return xs
}

var testTemplate = []float64{-0.2, -1.0, -0.6, 0.2, 0.4, 0.2}

func TestDetectorFindsPlantedSpikes(t *testing.T) {
	at := []int{100, 300, 500, 700, 900}
	xs := synthTrace(1200, testTemplate, at, 0.05, 3)
	det := NewDetector(8000)
	got := det.Detect(xs)
	if len(got) != len(at) {
		t.Fatalf("detected %d spikes, want %d (%v)", len(got), len(at), got)
	}
	for i, idx := range got {
		if idx < at[i] || idx > at[i]+2 {
			t.Errorf("spike %d at %d, want ≈%d", i, idx, at[i])
		}
	}
}

func TestDetectorRefractorySuppression(t *testing.T) {
	// Two threshold crossings within the refractory window count once.
	xs := make([]float64, 100)
	xs[10], xs[12] = -5, -5
	det := Detector{ThresholdSigmas: 3, RefractorySamples: 8}
	got := det.DetectWithSigma(xs, 1)
	if len(got) != 1 {
		t.Errorf("refractory failed: %v", got)
	}
	// Outside the window they count twice.
	det.RefractorySamples = 1
	if got := det.DetectWithSigma(xs, 1); len(got) != 2 {
		t.Errorf("distinct spikes merged: %v", got)
	}
}

func TestDetectorZeroSigma(t *testing.T) {
	det := NewDetector(8000)
	if got := det.DetectWithSigma(make([]float64, 10), 0); got != nil {
		t.Errorf("zero sigma should detect nothing")
	}
	if got := det.Detect(make([]float64, 10)); got != nil {
		t.Errorf("flat trace should detect nothing")
	}
}

func TestDetectorOnSyntheticNeuralData(t *testing.T) {
	// End-to-end against the neural substrate's ground truth.
	cfg := neural.DefaultConfig()
	cfg.Channels = 1
	cfg.ActiveFraction = 1
	cfg.MeanRateHz = 8
	cfg.NoiseRMS = 0.08
	cfg.LFPAmplitude = 0.1
	cfg.SampleRate = units.Kilohertz(16)
	g, err := neural.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.RecordSpikes(true)
	block := g.NextBlock(int(cfg.SampleRate.Hz() * 4))
	trace := make([]float64, len(block))
	for i := range block {
		trace[i] = block[i][0]
	}
	// Band-pass before detection, as the real pipeline does.
	bp, err := NewBandpass(300, 5000, cfg.SampleRate.Hz())
	if err != nil {
		t.Fatal(err)
	}
	filtered := ProcessBlock(bp, trace)
	det := NewDetector(cfg.SampleRate.Hz())
	got := det.Detect(filtered)
	truth := g.SpikeLog()[0]
	if len(truth) < 10 {
		t.Fatalf("degenerate ground truth: %d spikes", len(truth))
	}
	// Match within ±2 ms.
	tol := int(cfg.SampleRate.Hz() * 2e-3)
	matched := 0
	for _, tr := range truth {
		for _, d := range got {
			if d >= tr-tol && d <= tr+tol {
				matched++
				break
			}
		}
	}
	recall := float64(matched) / float64(len(truth))
	if recall < 0.8 {
		t.Errorf("recall = %.2f (%d/%d), want ≥0.8", recall, matched, len(truth))
	}
	if len(got) > 2*len(truth) {
		t.Errorf("too many false positives: %d detections for %d spikes", len(got), len(truth))
	}
}

func TestExtractSnippets(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	snips := ExtractSnippets(xs, []int{1, 50, 99}, 5, 10)
	// Index 1 (too close to start) and 99 (too close to end) are skipped.
	if len(snips) != 1 {
		t.Fatalf("got %d snippets, want 1", len(snips))
	}
	if len(snips[0]) != 15 || snips[0][0] != 45 {
		t.Errorf("snippet content wrong: %v", snips[0])
	}
}

func TestSorterClassify(t *testing.T) {
	t1 := []float64{-1, -0.5, 0, 0.3}
	t2 := []float64{-0.3, -1.2, -0.8, 0}
	s, err := NewSorter([][]float64{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	noisy := []float64{-0.95, -0.45, 0.05, 0.28}
	id, d := s.Classify(noisy)
	if id != 0 {
		t.Errorf("classified as %d, want 0", id)
	}
	if d > 0.02 {
		t.Errorf("distance %v too large", d)
	}
	if id, _ := s.Classify([]float64{-0.3, -1.1, -0.75, 0.02}); id != 1 {
		t.Errorf("second unit misclassified as %d", id)
	}
}

func TestNewSorterValidation(t *testing.T) {
	if _, err := NewSorter(nil); err == nil {
		t.Errorf("empty sorter should fail")
	}
	if _, err := NewSorter([][]float64{{1, 2}, {1}}); err == nil {
		t.Errorf("ragged templates should fail")
	}
}

func TestLearnTemplatesRecoversUnits(t *testing.T) {
	// Two distinct waveforms plus noise; k-means must separate them.
	a := []float64{-1, -0.2, 0.4, 0.1}
	b := []float64{-0.2, -1, -0.6, 0.3}
	rng := rand.New(rand.NewSource(17))
	var snips [][]float64
	for i := 0; i < 60; i++ {
		src := a
		if i%2 == 1 {
			src = b
		}
		s := make([]float64, len(src))
		for j := range s {
			s[j] = src[j] + rng.NormFloat64()*0.05
		}
		snips = append(snips, s)
	}
	tmpl, err := LearnTemplates(snips, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl) != 2 {
		t.Fatalf("got %d templates", len(tmpl))
	}
	// Each learned template must be close to one true waveform.
	match := func(tp []float64) float64 {
		return math.Min(sqDist(tp, a), sqDist(tp, b))
	}
	if match(tmpl[0]) > 0.05 || match(tmpl[1]) > 0.05 {
		t.Errorf("templates not recovered: %v / %v", tmpl[0], tmpl[1])
	}
	// And they must differ from each other.
	if sqDist(tmpl[0], tmpl[1]) < 0.1 {
		t.Errorf("templates collapsed")
	}
}

func TestLearnTemplatesValidation(t *testing.T) {
	if _, err := LearnTemplates(nil, 2, 5); err == nil {
		t.Errorf("too few snippets should fail")
	}
	if _, err := LearnTemplates([][]float64{{1}}, 0, 5); err == nil {
		t.Errorf("k=0 should fail")
	}
	if _, err := LearnTemplates([][]float64{{1, 2}, {1}}, 2, 5); err == nil {
		t.Errorf("ragged snippets should fail")
	}
}

func TestRankChannelsAndSelectActive(t *testing.T) {
	// Channels 0 and 2 spike, channel 1 is silent.
	n := 4000
	block := make([][]float64, n)
	rng := rand.New(rand.NewSource(23))
	spikes0 := []int{200, 900, 1600, 2300, 3000}
	spikes2 := []int{500, 1800}
	for i := range block {
		block[i] = []float64{rng.NormFloat64() * 0.05, rng.NormFloat64() * 0.05, rng.NormFloat64() * 0.05}
	}
	for _, s := range spikes0 {
		for k, v := range testTemplate {
			block[s+k][0] += v
		}
	}
	for _, s := range spikes2 {
		for k, v := range testTemplate {
			block[s+k][2] += v
		}
	}
	ranked := RankChannels(block, 8000)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d channels", len(ranked))
	}
	if ranked[0].Channel != 0 || ranked[1].Channel != 2 || ranked[2].Channel != 1 {
		t.Errorf("ranking wrong: %+v", ranked)
	}
	if ranked[0].Spikes != 5 || ranked[1].Spikes != 2 {
		t.Errorf("spike counts wrong: %+v", ranked[:2])
	}
	// Rate estimate: 5 spikes over 0.5 s = 10 Hz.
	if math.Abs(ranked[0].RateHz-10) > 1e-9 {
		t.Errorf("rate = %v, want 10", ranked[0].RateHz)
	}
	sel := SelectActive(ranked, 2)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 2 {
		t.Errorf("selection wrong: %v", sel)
	}
	if got := SelectActive(ranked, 10); len(got) != 3 {
		t.Errorf("over-selection should clamp: %v", got)
	}
	if got := RankChannels(nil, 8000); got != nil {
		t.Errorf("empty block should rank nothing")
	}
}

func TestStreamingDetectorMatchesBatch(t *testing.T) {
	// After calibration on the same noise, the streaming detector must
	// find the same spikes as the batch detector.
	at := []int{3000, 3400, 3800, 4200}
	xs := synthTrace(5000, testTemplate, at, 0.05, 51)
	sd, err := NewStreamingDetector(8000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for i, x := range xs {
		if sd.Process(x) {
			got = append(got, i)
		}
	}
	if !sd.Ready() {
		t.Fatalf("detector never finished calibration")
	}
	if len(got) != len(at) {
		t.Fatalf("streaming detected %d spikes, want %d (%v)", len(got), len(at), got)
	}
	for i, idx := range got {
		if idx < at[i] || idx > at[i]+3 {
			t.Errorf("spike %d at %d, want ≈%d", i, idx, at[i])
		}
	}
}

func TestStreamingDetectorCalibrationWindow(t *testing.T) {
	if _, err := NewStreamingDetector(8000, 4); err == nil {
		t.Errorf("tiny calibration should fail")
	}
	sd, err := NewStreamingDetector(8000, 16)
	if err != nil {
		t.Fatal(err)
	}
	// During calibration nothing fires, even on a huge excursion.
	for i := 0; i < 16; i++ {
		if sd.Process(-100) {
			t.Fatalf("fired during calibration at %d", i)
		}
	}
	if !sd.Ready() {
		t.Fatalf("should be calibrated after 16 samples")
	}
	// A flat calibration trace yields σ = 0 wait — all -100: MAD of
	// constant -100 is |−100|/0.6745 ≫ 0, so the threshold is deep and a
	// mild dip stays silent.
	if sd.Process(-5) {
		t.Errorf("sub-threshold dip fired")
	}
}
