package dsp

import "sync"

// Scratch-buffer pool for the block-processing hot paths. Spike
// detection over a fleet of simulated channels runs NEO + smoothing per
// block; recycling the intermediate float64 buffers keeps those passes
// allocation-free at steady state.

var f64Pool = sync.Pool{New: func() any {
	buf := make([]float64, 0, 4096)
	return &buf
}}

// getF64Buf returns a recycled length-0 float64 scratch buffer.
func getF64Buf() *[]float64 { return f64Pool.Get().(*[]float64) }

// putF64Buf recycles a buffer obtained from getF64Buf.
func putF64Buf(buf *[]float64) {
	*buf = (*buf)[:0]
	f64Pool.Put(buf)
}
