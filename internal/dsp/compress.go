package dsp

import (
	"errors"
	"fmt"
	"math"
)

// NEO computes the nonlinear energy operator ψ[n] = x[n]² − x[n−1]·x[n+1],
// a hardware-cheap spike emphasizer (two multiplies per sample) used by
// on-chip detectors as an alternative to plain thresholding. Edge samples
// are zero.
func NEO(xs []float64) []float64 {
	return AppendNEO(make([]float64, 0, len(xs)), xs)
}

// AppendNEO appends ψ of xs to dst — the allocation-free variant for
// buffer-reusing pipelines.
func AppendNEO(dst []float64, xs []float64) []float64 {
	n := len(dst)
	for range xs {
		dst = append(dst, 0)
	}
	out := dst[n:]
	for i := 1; i+1 < len(xs); i++ {
		out[i] = xs[i]*xs[i] - xs[i-1]*xs[i+1]
	}
	return dst
}

// NEODetector finds spikes by thresholding the smoothed NEO at a multiple
// of its mean — the classic k·mean(ψ) rule.
type NEODetector struct {
	// ThresholdFactor is the multiple of mean ψ (typically 8–15).
	ThresholdFactor float64
	// SmoothSamples is the moving-average window over ψ (≈ one spike
	// width).
	SmoothSamples int
	// RefractorySamples suppresses re-triggering.
	RefractorySamples int
}

// NewNEODetector returns standard settings for a sample rate: factor 10,
// 0.5 ms smoothing, 1 ms refractory.
func NewNEODetector(fsHz float64) NEODetector {
	smooth := int(fsHz * 0.5e-3)
	if smooth < 1 {
		smooth = 1
	}
	return NEODetector{
		ThresholdFactor:   10,
		SmoothSamples:     smooth,
		RefractorySamples: int(fsHz * 1e-3),
	}
}

// Detect returns spike sample indices.
func (d NEODetector) Detect(xs []float64) ([]int, error) {
	if d.ThresholdFactor <= 0 || d.SmoothSamples < 1 {
		return nil, errors.New("dsp: invalid NEO detector parameters")
	}
	scratch := getF64Buf()
	defer putF64Buf(scratch)
	psi := AppendNEO((*scratch)[:0], xs)
	ma, err := NewMovingAverage(d.SmoothSamples)
	if err != nil {
		return nil, err
	}
	psi = AppendProcessBlock(psi, ma, psi[:len(xs)])
	*scratch = psi
	smooth := psi[len(xs):]
	mean := 0.0
	for _, v := range smooth {
		mean += v
	}
	if len(smooth) > 0 {
		mean /= float64(len(smooth))
	}
	if mean <= 0 {
		return nil, nil
	}
	thr := d.ThresholdFactor * mean
	var out []int
	hold := 0
	for i, v := range smooth {
		if hold > 0 {
			hold--
			continue
		}
		if v > thr {
			out = append(out, i)
			hold = d.RefractorySamples
		}
	}
	return out, nil
}

// Delta–Rice compression: neural signals are smooth, so first-order sample
// differences concentrate near zero; Rice coding then spends few bits per
// sample. This is the hardware-friendly lossless scheme behind
// data-compressive recording ICs like Table 1's SoC 10.

// bitWriter packs bits MSB-first.
type bitWriter struct {
	buf []byte
	n   int // bits written
}

func (w *bitWriter) writeBit(b int) {
	if w.n%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b != 0 {
		w.buf[w.n/8] |= 1 << (7 - w.n%8)
	}
	w.n++
}

func (w *bitWriter) writeBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.writeBit(int(v>>i) & 1)
	}
}

// bitReader reads bits MSB-first.
type bitReader struct {
	buf []byte
	pos int
}

func (r *bitReader) readBit() (int, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, errors.New("dsp: bitstream exhausted")
	}
	b := int(r.buf[r.pos/8]>>(7-r.pos%8)) & 1
	r.pos++
	return b, nil
}

func (r *bitReader) readBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// zigzag maps signed deltas to unsigned: 0,-1,1,-2,2 → 0,1,2,3,4.
func zigzag(v int32) uint32 {
	return uint32((v << 1) ^ (v >> 31))
}

func unzigzag(u uint32) int32 {
	return int32(u>>1) ^ -int32(u&1)
}

// RiceK picks the Rice parameter from the mean absolute delta of a block.
func RiceK(deltas []int32) int {
	if len(deltas) == 0 {
		return 0
	}
	mean := 0.0
	for _, d := range deltas {
		mean += math.Abs(float64(d))
	}
	return riceKFromMean(mean / float64(len(deltas)))
}

// riceKFromMean maps a mean absolute delta to a Rice parameter.
func riceKFromMean(mean float64) int {
	k := 0
	for threshold := 1.0; mean > threshold && k < 15; threshold *= 2 {
		k++
	}
	return k
}

// DeltaRiceEncode losslessly compresses one channel's sample trace:
// the first sample verbatim at the given bit width, then zigzagged
// first-order deltas Rice-coded with a per-block parameter.
func DeltaRiceEncode(samples []uint16, sampleBits int) ([]byte, error) {
	return AppendDeltaRiceEncode(nil, samples, sampleBits)
}

// AppendDeltaRiceEncode appends the Delta–Rice encoding of samples to dst
// — the allocation-free variant for buffer-reusing pipelines. dst must end
// on a byte boundary (any []byte does); the encoded block starts at
// dst[len(dst)]. The deltas are computed in two passes instead of being
// materialized, so no scratch buffer is needed.
func AppendDeltaRiceEncode(dst []byte, samples []uint16, sampleBits int) ([]byte, error) {
	if len(samples) == 0 {
		return dst, errors.New("dsp: empty trace")
	}
	if sampleBits < 1 || sampleBits > 16 {
		return dst, fmt.Errorf("dsp: sample bits %d outside 1..16", sampleBits)
	}
	// Pass 1: mean absolute delta → Rice parameter.
	k := 0
	if len(samples) > 1 {
		mean := 0.0
		for i := 1; i < len(samples); i++ {
			mean += math.Abs(float64(int32(samples[i]) - int32(samples[i-1])))
		}
		k = riceKFromMean(mean / float64(len(samples)-1))
	}
	// Pass 2: encode.
	w := &bitWriter{buf: dst, n: len(dst) * 8}
	w.writeBits(uint32(k), 4)
	w.writeBits(uint32(samples[0]), sampleBits)
	for i := 1; i < len(samples); i++ {
		u := zigzag(int32(samples[i]) - int32(samples[i-1]))
		q := u >> k
		// Guard against pathological blocks: a quotient longer than the
		// raw width would balloon; escape-code it as unary 2^sampleBits
		// won't occur for k chosen from the block, but cap defensively.
		for j := uint32(0); j < q; j++ {
			w.writeBit(1)
		}
		w.writeBit(0)
		w.writeBits(u&(1<<k-1), k)
	}
	return w.buf, nil
}

// DeltaRiceDecode reverses DeltaRiceEncode for a known sample count.
func DeltaRiceDecode(data []byte, count, sampleBits int) ([]uint16, error) {
	if count <= 0 {
		return nil, errors.New("dsp: non-positive sample count")
	}
	if sampleBits < 1 || sampleBits > 16 {
		return nil, fmt.Errorf("dsp: sample bits %d outside 1..16", sampleBits)
	}
	r := &bitReader{buf: data}
	kv, err := r.readBits(4)
	if err != nil {
		return nil, err
	}
	k := int(kv)
	first, err := r.readBits(sampleBits)
	if err != nil {
		return nil, err
	}
	out := make([]uint16, count)
	out[0] = uint16(first)
	prev := int32(first)
	for i := 1; i < count; i++ {
		q := uint32(0)
		for {
			b, err := r.readBit()
			if err != nil {
				return nil, err
			}
			if b == 0 {
				break
			}
			q++
			if q > 1<<20 {
				return nil, errors.New("dsp: corrupt Rice stream")
			}
		}
		rem, err := r.readBits(k)
		if err != nil {
			return nil, err
		}
		u := q<<k | rem
		prev += unzigzag(u)
		if prev < 0 || prev >= 1<<sampleBits {
			return nil, fmt.Errorf("dsp: decoded sample %d out of range", prev)
		}
		out[i] = uint16(prev)
	}
	return out, nil
}

// CompressionRatio returns raw bits over compressed bits for one encode.
func CompressionRatio(samples []uint16, sampleBits int) (float64, error) {
	enc, err := DeltaRiceEncode(samples, sampleBits)
	if err != nil {
		return 0, err
	}
	raw := float64(len(samples) * sampleBits)
	return raw / float64(len(enc)*8), nil
}
