// Package units provides the physical quantities used throughout the
// MINDFUL framework: power, area, power density, energy, data rate and
// frequency, together with decibel conversions.
//
// All quantities are represented in SI base units (watts, square metres,
// joules, bits per second, hertz) as named float64 types. Constructors and
// accessors convert to the units the BCI literature uses (mW, mm², cm²,
// mW/cm², pJ/bit, Mbps, kHz) so that call sites read like the paper.
package units

import (
	"fmt"
	"math"
)

// Power is an electrical power in watts.
type Power float64

// Power constructors.
func Watts(w float64) Power       { return Power(w) }
func Milliwatts(mw float64) Power { return Power(mw * 1e-3) }
func Microwatts(uw float64) Power { return Power(uw * 1e-6) }

// Watts returns the power in watts.
func (p Power) Watts() float64 { return float64(p) }

// Milliwatts returns the power in milliwatts.
func (p Power) Milliwatts() float64 { return float64(p) * 1e3 }

// Microwatts returns the power in microwatts.
func (p Power) Microwatts() float64 { return float64(p) * 1e6 }

// String formats the power with an auto-selected scale.
func (p Power) String() string {
	w := float64(p)
	switch abs := math.Abs(w); {
	case abs >= 1:
		return fmt.Sprintf("%.3g W", w)
	case abs >= 1e-3:
		return fmt.Sprintf("%.3g mW", w*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3g µW", w*1e6)
	case abs == 0:
		return "0 W"
	default:
		return fmt.Sprintf("%.3g nW", w*1e9)
	}
}

// Area is a surface area in square metres.
type Area float64

// Area constructors.
func SquareMillimetres(mm2 float64) Area { return Area(mm2 * 1e-6) }
func SquareCentimetres(cm2 float64) Area { return Area(cm2 * 1e-4) }
func SquareMicrometres(um2 float64) Area { return Area(um2 * 1e-12) }

// MM2 returns the area in square millimetres.
func (a Area) MM2() float64 { return float64(a) * 1e6 }

// CM2 returns the area in square centimetres.
func (a Area) CM2() float64 { return float64(a) * 1e4 }

// M2 returns the area in square metres.
func (a Area) M2() float64 { return float64(a) }

// String formats the area in mm², the unit used by Table 1.
func (a Area) String() string { return fmt.Sprintf("%.3g mm²", a.MM2()) }

// PowerDensity is a power per unit area in watts per square metre.
type PowerDensity float64

// MilliwattsPerCM2 constructs a power density from the mW/cm² figure used by
// the implant-safety literature.
func MilliwattsPerCM2(v float64) PowerDensity { return PowerDensity(v * 1e-3 / 1e-4) }

// MWPerCM2 returns the density in mW/cm².
func (d PowerDensity) MWPerCM2() float64 { return float64(d) * 1e3 / 1e4 }

// WattsPerM2 returns the density in W/m².
func (d PowerDensity) WattsPerM2() float64 { return float64(d) }

// String formats the density in mW/cm².
func (d PowerDensity) String() string { return fmt.Sprintf("%.3g mW/cm²", d.MWPerCM2()) }

// Over returns the total power dissipated by an area at this density.
func (d PowerDensity) Over(a Area) Power { return Power(float64(d) * float64(a)) }

// DensityOf returns the power density of p spread uniformly over a.
// It returns +Inf for a zero area.
func DensityOf(p Power, a Area) PowerDensity {
	if a == 0 {
		return PowerDensity(math.Inf(1))
	}
	return PowerDensity(float64(p) / float64(a))
}

// Energy is an amount of energy in joules.
type Energy float64

// Energy constructors.
func Joules(j float64) Energy            { return Energy(j) }
func PicojoulesPerBit(pj float64) Energy { return Energy(pj * 1e-12) }
func Nanojoules(nj float64) Energy       { return Energy(nj * 1e-9) }

// Joules returns the energy in joules.
func (e Energy) Joules() float64 { return float64(e) }

// Picojoules returns the energy in picojoules.
func (e Energy) Picojoules() float64 { return float64(e) * 1e12 }

// String formats the energy with an auto-selected scale.
func (e Energy) String() string {
	j := float64(e)
	switch abs := math.Abs(j); {
	case abs >= 1e-3:
		return fmt.Sprintf("%.3g mJ", j*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3g µJ", j*1e6)
	case abs >= 1e-9:
		return fmt.Sprintf("%.3g nJ", j*1e9)
	case abs == 0:
		return "0 J"
	default:
		return fmt.Sprintf("%.3g pJ", j*1e12)
	}
}

// DataRate is a data throughput in bits per second.
type DataRate float64

// DataRate constructors.
func BitsPerSecond(bps float64) DataRate   { return DataRate(bps) }
func KilobitsPerSecond(k float64) DataRate { return DataRate(k * 1e3) }
func MegabitsPerSecond(m float64) DataRate { return DataRate(m * 1e6) }

// BPS returns the rate in bits per second.
func (r DataRate) BPS() float64 { return float64(r) }

// Mbps returns the rate in megabits per second.
func (r DataRate) Mbps() float64 { return float64(r) * 1e-6 }

// String formats the rate with an auto-selected scale.
func (r DataRate) String() string {
	b := float64(r)
	switch abs := math.Abs(b); {
	case abs >= 1e9:
		return fmt.Sprintf("%.3g Gbps", b*1e-9)
	case abs >= 1e6:
		return fmt.Sprintf("%.3g Mbps", b*1e-6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3g kbps", b*1e-3)
	default:
		return fmt.Sprintf("%.3g bps", b)
	}
}

// TimesEnergyPerBit returns the power required to sustain this rate at a
// given per-bit energy: P = T · E_b (Equation 9 of the paper).
func (r DataRate) TimesEnergyPerBit(eb Energy) Power {
	return Power(float64(r) * float64(eb))
}

// Frequency is a rate of events in hertz.
type Frequency float64

// Frequency constructors.
func Hertz(hz float64) Frequency      { return Frequency(hz) }
func Kilohertz(khz float64) Frequency { return Frequency(khz * 1e3) }
func Megahertz(mhz float64) Frequency { return Frequency(mhz * 1e6) }

// Hz returns the frequency in hertz.
func (f Frequency) Hz() float64 { return float64(f) }

// KHz returns the frequency in kilohertz.
func (f Frequency) KHz() float64 { return float64(f) * 1e-3 }

// Period returns 1/f in seconds; it returns +Inf for a zero frequency.
func (f Frequency) Period() float64 {
	if f == 0 {
		return math.Inf(1)
	}
	return 1 / float64(f)
}

// String formats the frequency with an auto-selected scale.
func (f Frequency) String() string {
	hz := float64(f)
	switch abs := math.Abs(hz); {
	case abs >= 1e6:
		return fmt.Sprintf("%.3g MHz", hz*1e-6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3g kHz", hz*1e-3)
	default:
		return fmt.Sprintf("%.3g Hz", hz)
	}
}

// Decibel conversions.

// FromDB converts a decibel value to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// ToDB converts a linear power ratio to decibels.
// It returns -Inf for a non-positive ratio.
func ToDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// Boltzmann is the Boltzmann constant in J/K.
const Boltzmann = 1.380649e-23

// ThermalNoiseDensity returns the one-sided thermal noise power spectral
// density N0 = kT (W/Hz) at the given absolute temperature.
func ThermalNoiseDensity(kelvin float64) float64 { return Boltzmann * kelvin }

// BodyTemperature is normal human body temperature in kelvin, used as the
// noise reference for an implanted receiver chain.
const BodyTemperature = 310.15
