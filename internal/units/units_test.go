package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerConversions(t *testing.T) {
	tests := []struct {
		name string
		p    Power
		want float64 // watts
	}{
		{"watts", Watts(2.5), 2.5},
		{"milliwatts", Milliwatts(40), 0.04},
		{"microwatts", Microwatts(225), 225e-6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Watts(); math.Abs(got-tt.want) > 1e-15 {
				t.Errorf("Watts() = %v, want %v", got, tt.want)
			}
		})
	}
	if got := Milliwatts(1500).Milliwatts(); math.Abs(got-1500) > 1e-9 {
		t.Errorf("round trip mW = %v, want 1500", got)
	}
	if got := Microwatts(268).Microwatts(); math.Abs(got-268) > 1e-9 {
		t.Errorf("round trip µW = %v, want 268", got)
	}
}

func TestPowerString(t *testing.T) {
	tests := []struct {
		p    Power
		want string
	}{
		{Watts(1.5), "1.5 W"},
		{Milliwatts(40), "40 mW"},
		{Microwatts(225), "225 µW"},
		{Watts(0), "0 W"},
		{Watts(3e-10), "0.3 nW"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String(%v W) = %q, want %q", float64(tt.p), got, tt.want)
		}
	}
}

func TestAreaConversions(t *testing.T) {
	a := SquareMillimetres(144)
	if got := a.CM2(); math.Abs(got-1.44) > 1e-12 {
		t.Errorf("144 mm² = %v cm², want 1.44", got)
	}
	if got := SquareCentimetres(1.44).MM2(); math.Abs(got-144) > 1e-9 {
		t.Errorf("1.44 cm² = %v mm², want 144", got)
	}
	if got := SquareMicrometres(1e6).MM2(); math.Abs(got-1) > 1e-12 {
		t.Errorf("1e6 µm² = %v mm², want 1", got)
	}
	if got := a.String(); got != "144 mm²" {
		t.Errorf("String = %q", got)
	}
}

func TestPowerDensity(t *testing.T) {
	// The safety limit: 40 mW/cm² over 144 mm² (1.44 cm²) permits 57.6 mW.
	limit := MilliwattsPerCM2(40)
	if got := limit.MWPerCM2(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("round trip mW/cm² = %v, want 40", got)
	}
	budget := limit.Over(SquareMillimetres(144))
	if got := budget.Milliwatts(); math.Abs(got-57.6) > 1e-9 {
		t.Errorf("budget = %v mW, want 57.6", got)
	}
	d := DensityOf(Milliwatts(57.6), SquareMillimetres(144))
	if got := d.MWPerCM2(); math.Abs(got-40) > 1e-9 {
		t.Errorf("DensityOf = %v, want 40", got)
	}
	if !math.IsInf(float64(DensityOf(Milliwatts(1), 0)), 1) {
		t.Errorf("DensityOf zero area should be +Inf")
	}
}

func TestDensityRoundTripProperty(t *testing.T) {
	f := func(mw, mm2 float64) bool {
		mw = math.Abs(mw)
		mm2 = math.Abs(mm2) + 1e-6
		if mw > 1e6 || mm2 > 1e9 {
			return true // outside physical range
		}
		d := DensityOf(Milliwatts(mw), SquareMillimetres(mm2))
		back := d.Over(SquareMillimetres(mm2))
		return math.Abs(back.Milliwatts()-mw) <= 1e-9*(1+mw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyAndDataRate(t *testing.T) {
	eb := PicojoulesPerBit(50)
	if got := eb.Picojoules(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("Eb = %v pJ, want 50", got)
	}
	// The paper's worked example: 1024 ch × 10 b × 8 kHz = 81.92 Mbps.
	rate := BitsPerSecond(1024 * 10 * 8000)
	if got := rate.Mbps(); math.Abs(got-81.92) > 1e-9 {
		t.Errorf("rate = %v Mbps, want 81.92", got)
	}
	// P = T · Eb: 81.92 Mbps at 50 pJ/b is 4.096 mW.
	p := rate.TimesEnergyPerBit(eb)
	if got := p.Milliwatts(); math.Abs(got-4.096) > 1e-9 {
		t.Errorf("P = %v mW, want 4.096", got)
	}
}

func TestFrequency(t *testing.T) {
	f := Kilohertz(8)
	if got := f.Hz(); got != 8000 {
		t.Errorf("Hz = %v, want 8000", got)
	}
	if got := f.Period(); math.Abs(got-125e-6) > 1e-12 {
		t.Errorf("Period = %v, want 125 µs", got)
	}
	if !math.IsInf(Frequency(0).Period(), 1) {
		t.Errorf("zero frequency period should be +Inf")
	}
	if got := Megahertz(100).String(); got != "100 MHz" {
		t.Errorf("String = %q", got)
	}
}

func TestDecibels(t *testing.T) {
	tests := []struct {
		db  float64
		lin float64
	}{
		{0, 1}, {10, 10}, {20, 100}, {60, 1e6}, {-3, 0.5011872336272722},
	}
	for _, tt := range tests {
		if got := FromDB(tt.db); math.Abs(got-tt.lin) > 1e-9*tt.lin {
			t.Errorf("FromDB(%v) = %v, want %v", tt.db, got, tt.lin)
		}
		if got := ToDB(tt.lin); math.Abs(got-tt.db) > 1e-9 {
			t.Errorf("ToDB(%v) = %v, want %v", tt.lin, got, tt.db)
		}
	}
	if !math.IsInf(ToDB(0), -1) {
		t.Errorf("ToDB(0) should be -Inf")
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 200) // keep within float range
		return math.Abs(ToDB(FromDB(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThermalNoise(t *testing.T) {
	n0 := ThermalNoiseDensity(BodyTemperature)
	// kT at 310 K ≈ 4.28e-21 W/Hz.
	if n0 < 4.2e-21 || n0 > 4.4e-21 {
		t.Errorf("N0 at body temperature = %v, want ≈4.28e-21", n0)
	}
}

func TestStrings(t *testing.T) {
	if got := BitsPerSecond(81.92e6).String(); got != "81.9 Mbps" {
		t.Errorf("rate string = %q", got)
	}
	if got := MegabitsPerSecond(0.5).String(); got != "500 kbps" {
		t.Errorf("rate string = %q", got)
	}
	if got := PicojoulesPerBit(50).String(); got != "50 pJ" {
		t.Errorf("energy string = %q", got)
	}
	if got := Nanojoules(3).String(); got != "3 nJ" {
		t.Errorf("energy string = %q", got)
	}
	if got := MilliwattsPerCM2(40).String(); got != "40 mW/cm²" {
		t.Errorf("density string = %q", got)
	}
}
