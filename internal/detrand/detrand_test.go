package detrand

import (
	"math/rand"
	"testing"
)

// TestSequenceMatchesMathRand: the counting wrapper must be value-exact
// against the stock generator for every method the simulators use. This
// is the invariant that keeps every recorded digest pin valid after the
// rand → detrand swap.
func TestSequenceMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{1, -7, 123456789} {
		ref := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 2000; i++ {
			switch i % 5 {
			case 0:
				if a, b := ref.Float64(), got.Float64(); a != b {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, b, a)
				}
			case 1:
				if a, b := ref.NormFloat64(), got.NormFloat64(); a != b {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != %v", seed, i, b, a)
				}
			case 2:
				if a, b := ref.Int63(), got.Int63(); a != b {
					t.Fatalf("seed %d draw %d: Int63 %v != %v", seed, i, b, a)
				}
			case 3:
				if a, b := ref.Intn(97), got.Intn(97); a != b {
					t.Fatalf("seed %d draw %d: Intn %v != %v", seed, i, b, a)
				}
			case 4:
				if a, b := ref.Uint64(), got.Uint64(); a != b {
					t.Fatalf("seed %d draw %d: Uint64 %v != %v", seed, i, b, a)
				}
			}
		}
	}
}

// TestRestoreResumesExactly: restoring from a mid-stream State must
// continue the identical value sequence, including through the variable
// draw counts of the ziggurat (NormFloat64) rejection loop.
func TestRestoreResumesExactly(t *testing.T) {
	r := New(42)
	for i := 0; i < 1234; i++ {
		r.NormFloat64()
		r.Float64()
	}
	st := r.State()
	want := make([]float64, 64)
	for i := range want {
		want[i] = r.NormFloat64()
	}

	re := Restore(st)
	if re.State() != st {
		t.Fatalf("restored state %+v, want %+v", re.State(), st)
	}
	for i := range want {
		if got := re.NormFloat64(); got != want[i] {
			t.Fatalf("draw %d after restore: %v, want %v", i, got, want[i])
		}
	}
}

// TestRestoreInto validates seed and position checks.
func TestRestoreInto(t *testing.T) {
	fresh := New(5)
	fresh.Float64() // construction-style draw
	mid := New(5)
	for i := 0; i < 10; i++ {
		mid.Float64()
	}
	if _, err := RestoreInto(fresh, State{Seed: 6, Draws: 10}); err == nil {
		t.Fatal("seed mismatch not rejected")
	}
	if _, err := RestoreInto(fresh, State{Seed: 5, Draws: 0}); err == nil {
		t.Fatal("position behind construction not rejected")
	}
	re, err := RestoreInto(fresh, mid.State())
	if err != nil {
		t.Fatal(err)
	}
	if a, b := mid.Float64(), re.Float64(); a != b {
		t.Fatalf("restored stream diverged: %v != %v", b, a)
	}
}

// TestZeroStateIsFresh: State{Seed: s} restores to a fresh stream.
func TestZeroStateIsFresh(t *testing.T) {
	a := New(9)
	b := Restore(State{Seed: 9})
	for i := 0; i < 32; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d: %v != %v", i, x, y)
		}
	}
}
