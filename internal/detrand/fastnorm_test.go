package detrand

import (
	"math"
	"testing"
)

// TestFastSamplersBitIdentical replays long interleaved sequences and
// checks the fast samplers agree bit-for-bit with the stock methods on
// an identically seeded twin. The sequence length covers the ziggurat
// tail and wedge branches many times over.
func TestFastSamplersBitIdentical(t *testing.T) {
	if !zigOK {
		t.Fatal("ziggurat self-check failed at init; fast path is disabled")
	}
	for _, seed := range []int64{0, 1, 3, 99, -7, 1 << 40} {
		a := New(seed)
		b := New(seed)
		for i := 0; i < 200_000; i++ {
			switch i % 3 {
			case 0:
				ref, got := a.NormFloat64(), b.FastNormFloat64()
				if math.Float64bits(ref) != math.Float64bits(got) {
					t.Fatalf("seed %d draw %d: NormFloat64 %v != fast %v", seed, i, ref, got)
				}
			case 1:
				if ref, got := a.Float64(), b.FastFloat64(); ref != got {
					t.Fatalf("seed %d draw %d: Float64 %v != fast %v", seed, i, ref, got)
				}
			default:
				// Mixing stock calls on the same stream must stay aligned:
				// the fast methods share the underlying counting source.
				if ref, got := a.Int63(), b.Int63(); ref != got {
					t.Fatalf("seed %d draw %d: Int63 %v != %v", seed, i, ref, got)
				}
			}
		}
		if a.Draws() != b.Draws() {
			t.Fatalf("seed %d: draw counts diverged: %d vs %d", seed, a.Draws(), b.Draws())
		}
	}
}

// TestFastSamplersCountDraws pins that the fast path consumes exactly
// the same number of source steps as the stock path, so checkpoints
// taken around fast draws restore identically.
func TestFastSamplersCountDraws(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		r.FastNormFloat64()
		r.FastFloat64()
	}
	st := r.State()
	resumed, err := RestoreInto(New(17), st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		want, got := r.NormFloat64(), resumed.FastNormFloat64()
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("draw %d after restore: %v != %v", i, want, got)
		}
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}

func BenchmarkFastNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.FastNormFloat64()
	}
	_ = sink
}

func BenchmarkFastFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.FastFloat64()
	}
	_ = sink
}

// TestFillNormBitIdentical pins the bulk sampler against the stock
// per-call sequence, including draw-count equality across odd slab
// sizes (rejection paths consume extra steps; the batched counter must
// land exactly where per-call counting would).
func TestFillNormBitIdentical(t *testing.T) {
	if !zigOK {
		t.Fatal("ziggurat self-check failed at init; fast path is disabled")
	}
	for _, seed := range []int64{0, 1, 3, 99, -7, 1 << 40} {
		a, b := New(seed), New(seed)
		buf := make([]float64, 0, 257)
		for _, n := range []int{1, 2, 7, 64, 257, 1000} {
			if cap(buf) < n {
				buf = make([]float64, n)
			}
			buf = buf[:n]
			b.FillNorm(buf)
			for i := 0; i < n; i++ {
				want := a.NormFloat64()
				if math.Float64bits(want) != math.Float64bits(buf[i]) {
					t.Fatalf("seed %d block %d draw %d: %v != %v", seed, n, i, buf[i], want)
				}
			}
			if a.Draws() != b.Draws() {
				t.Fatalf("seed %d block %d: draws %d != %d", seed, n, b.Draws(), a.Draws())
			}
			// Interleave a uniform draw so the streams stay aligned through
			// mixed use.
			if a.Float64() != b.FastFloat64() {
				t.Fatalf("seed %d: interleaved uniform diverged", seed)
			}
		}
	}
}

func BenchmarkFillNorm(b *testing.B) {
	r := New(1)
	buf := make([]float64, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.FillNorm(buf)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*256), "ns/draw")
}
