package detrand

import (
	"math"
	"math/rand"
)

// This file provides FastNormFloat64 and FastFloat64: drop-in samplers
// that produce bit-identical value streams to math/rand's NormFloat64
// and Float64 while skipping the rand.Rand wrapper's interface dispatch
// on every draw. The batched fleet kernels call these in their inner
// loops; the scalar pipeline keeps using the stock methods, and the
// determinism walls prove the two paths agree.
//
// Bit identity is not assumed — it is checked. init() rebuilds the
// ziggurat tables with the same Marsaglia–Tsang recipe math/rand's
// generator used, then replays thousands of interleaved normal/uniform
// draws against the stock generator across several seeds. Any mismatch
// (a future Go release changing the algorithm, say) permanently routes
// the Fast methods through the stock path instead.

// zigRn is the start of the ziggurat's right tail.
const zigRn = 3.442619855899

var (
	zigKn [128]uint32
	zigWn [128]float32
	zigFn [128]float32

	// zigOK gates the fast path; false falls back to math/rand.
	zigOK bool
)

func init() {
	buildZigTables()
	zigOK = verifyZig()
}

// buildZigTables recomputes math/rand's cooked ziggurat tables
// (Marsaglia & Tsang, "The Ziggurat Method for Generating Random
// Variables") with the exact constants and float32 rounding the stock
// tables were generated from.
func buildZigTables() {
	const m1 = 1 << 31
	var (
		dn float64 = zigRn
		tn         = dn
		vn float64 = 9.91256303526217e-3
	)
	q := vn / math.Exp(-0.5*dn*dn)
	zigKn[0] = uint32((dn / q) * m1)
	zigKn[1] = 0
	zigWn[0] = float32(q / m1)
	zigWn[127] = float32(dn / m1)
	zigFn[0] = 1.0
	zigFn[127] = float32(math.Exp(-0.5 * dn * dn))
	for i := 126; i >= 1; i-- {
		dn = math.Sqrt(-2.0 * math.Log(vn/dn+math.Exp(-0.5*dn*dn)))
		zigKn[i+1] = uint32((dn / tn) * m1)
		tn = dn
		zigFn[i] = float32(math.Exp(-0.5 * dn * dn))
		zigWn[i] = float32(dn / m1)
	}
}

// verifyZig replays interleaved normal and uniform draws against the
// stock generator. 4096 normals per seed makes the low-probability
// branches (tail ~2.7e-3, wedge rejections) statistically certain to be
// exercised.
func verifyZig() bool {
	for _, seed := range []int64{1, 7, 42, -12345} {
		ref := rand.New(rand.NewSource(seed))
		got := &source{src: rand.NewSource(seed).(rand.Source64)}
		for i := 0; i < 4096; i++ {
			if math.Float64bits(ref.NormFloat64()) != math.Float64bits(got.norm()) {
				return false
			}
			if ref.Float64() != got.float64() {
				return false
			}
		}
	}
	return true
}

func zigAbsInt32(i int32) uint32 {
	if i < 0 {
		return uint32(-i)
	}
	return uint32(i)
}

// float64 is math/rand's Float64 over the counting source: Int63
// scaled by 2^-63, redrawn in the (astronomically rare) case the
// division rounds up to exactly 1.
func (s *source) float64() float64 {
again:
	f := float64(s.Int63()) / (1 << 63)
	if f == 1 {
		goto again
	}
	return f
}

// norm is math/rand's ziggurat NormFloat64 over the counting source.
func (s *source) norm() float64 {
	for {
		j := int32(uint32(s.Int63() >> 31)) // Uint32, possibly negative
		i := j & 0x7F
		x := float64(j) * float64(zigWn[i])
		if zigAbsInt32(j) < zigKn[i] {
			// This case should be hit better than 99% of the time.
			return x
		}
		if i == 0 {
			// This extra work is only required for the base strip.
			for {
				x = -math.Log(s.float64()) * (1.0 / zigRn)
				y := -math.Log(s.float64())
				if y+y >= x*x {
					break
				}
			}
			if j > 0 {
				return zigRn + x
			}
			return -zigRn - x
		}
		if zigFn[i]+float32(s.float64())*(zigFn[i-1]-zigFn[i]) < float32(math.Exp(-.5*x*x)) {
			return x
		}
	}
}

// FastNormFloat64 returns exactly the value NormFloat64 would have
// returned, bypassing the rand.Rand wrapper's per-draw interface calls.
// Draw counting (and therefore checkpoint/restore) is unaffected: each
// underlying source step counts once either way. If the init-time
// self-check against math/rand failed, this falls back to the stock
// method.
func (r *Rand) FastNormFloat64() float64 {
	if !zigOK {
		return r.NormFloat64()
	}
	return r.cnt.norm()
}

// FastFloat64 is Float64's equivalent fast path; see FastNormFloat64.
func (r *Rand) FastFloat64() float64 {
	if !zigOK {
		return r.Float64()
	}
	return r.cnt.float64()
}

// normSlow finishes a ziggurat draw whose fast strip rejected the
// candidate (j, x): the base-strip tail, the wedge test, and — on wedge
// rejection — the full retry loop. Split out so FillNorm's inner loop
// carries only the >99% accept path.
func (s *source) normSlow(j int32, x float64) float64 {
	i := j & 0x7F
	if i == 0 {
		for {
			x = -math.Log(s.float64()) * (1.0 / zigRn)
			y := -math.Log(s.float64())
			if y+y >= x*x {
				break
			}
		}
		if j > 0 {
			return zigRn + x
		}
		return -zigRn - x
	}
	if zigFn[i]+float32(s.float64())*(zigFn[i-1]-zigFn[i]) < float32(math.Exp(-.5*x*x)) {
		return x
	}
	return s.norm()
}

// FillNorm fills dst with exactly the values len(dst) successive
// NormFloat64 calls would produce — the bulk sampler the AWGN slab
// kernel draws its per-frame noise vector from. The ziggurat accept
// path runs inlined with the draw counter accumulated in a register and
// flushed in batches, so the per-draw cost approaches the raw source
// step; rejections flush the counter and take the exact slow path.
// Falls back to per-call NormFloat64 if the init self-check failed.
func (r *Rand) FillNorm(dst []float64) {
	if !zigOK {
		for i := range dst {
			dst[i] = r.NormFloat64()
		}
		return
	}
	src := r.cnt.src
	var n uint64
	for i := range dst {
		j := int32(uint32(src.Int63() >> 31))
		n++
		k := j & 0x7F
		x := float64(j) * float64(zigWn[k])
		if zigAbsInt32(j) < zigKn[k] {
			dst[i] = x
			continue
		}
		r.cnt.draws += n
		n = 0
		dst[i] = r.cnt.normSlow(j, x)
	}
	r.cnt.draws += n
}
