// Package detrand wraps math/rand with draw counting so a generator's
// state can be serialized and restored exactly. The checkpoint/restore
// machinery (internal/serve) needs to freeze a live pipeline mid-run and
// later resume it bit-identically, but math/rand's generator state is not
// exported. detrand sidesteps that: the wrapped source produces exactly
// the same value sequence as rand.New(rand.NewSource(seed)) while counting
// every source step, so a stream's full state is the pair (seed, draws).
// Restore re-seeds and fast-forwards the counted number of steps — O(n)
// in draws, which for simulation workloads (a few hundred draws per tick)
// is microseconds per restored stream.
//
// The equality invariant is load-bearing for every digest pin in the
// repository: swapping a component's *rand.Rand for *detrand.Rand must not
// move a single byte of simulator output. TestSequenceMatchesMathRand
// pins it.
package detrand

import (
	"fmt"
	"math/rand"
)

// State is a stream's serializable position: the seed it started from and
// the number of source steps consumed since.
type State struct {
	Seed  int64
	Draws uint64
}

// source wraps the stock math/rand source, counting steps. Both Int63 and
// Uint64 advance the underlying generator by exactly one step, so the
// count is the generator's absolute position regardless of which
// top-level rand.Rand method triggered the draw.
type source struct {
	src   rand.Source64
	draws uint64
}

func (s *source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *source) Seed(seed int64) {
	s.draws = 0
	s.src.Seed(seed)
}

// Rand is a *rand.Rand whose position is observable and restorable. All
// rand.Rand methods are available through embedding and produce exactly
// the values the stock generator would.
type Rand struct {
	*rand.Rand
	seed int64
	cnt  *source
}

// New returns a counting generator seeded like rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	cnt := &source{src: rand.NewSource(seed).(rand.Source64)}
	return &Rand{Rand: rand.New(cnt), seed: seed, cnt: cnt}
}

// State returns the stream's serializable position.
func (r *Rand) State() State {
	return State{Seed: r.seed, Draws: r.cnt.draws}
}

// Draws returns the number of source steps consumed so far.
func (r *Rand) Draws() uint64 { return r.cnt.draws }

// Restore rebuilds a generator at the recorded position by re-seeding and
// fast-forwarding st.Draws steps.
func Restore(st State) *Rand {
	r := New(st.Seed)
	// Skip on the raw source so the counter ends exactly at st.Draws and
	// rand.Rand's internal caches are untouched (they only matter for
	// Read, which nothing in this repository uses).
	for i := uint64(0); i < st.Draws; i++ {
		r.cnt.src.Uint64()
	}
	r.cnt.draws = st.Draws
	return r
}

// RestoreInto validates that st belongs to the stream r was created on
// (same seed, position not behind r's current one when r is freshly
// constructed) and returns the restored generator. It exists for
// components that rebuild themselves from config first — their
// construction draws must be a prefix of the recorded stream.
func RestoreInto(r *Rand, st State) (*Rand, error) {
	if st.Seed != r.seed {
		return nil, fmt.Errorf("detrand: state seed %d does not match stream seed %d", st.Seed, r.seed)
	}
	if st.Draws < r.cnt.draws {
		return nil, fmt.Errorf("detrand: state position %d behind construction position %d", st.Draws, r.cnt.draws)
	}
	return Restore(st), nil
}
