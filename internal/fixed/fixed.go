// Package fixed implements the Q-format fixed-point arithmetic used by the
// implant's datapath models. The paper's accelerator operates on an 8-bit
// datatype; this package provides signed Q-format values with saturating
// conversion, multiply, and the multiply-accumulate primitive the MAC unit
// executes, plus helpers to quantize float64 tensors for the int8 inference
// engine in internal/nn.
package fixed

import (
	"fmt"
	"math"
)

// Format describes a signed fixed-point representation with a total bit
// width (including the sign bit) and a number of fractional bits.
type Format struct {
	Bits int // total width, 2..32
	Frac int // fractional bits, 0..Bits-1
}

// Common formats.
var (
	// Q15 is the 16-bit format with 15 fractional bits (range [-1, 1)).
	Q15 = Format{Bits: 16, Frac: 15}
	// Q7 is the 8-bit format with 7 fractional bits (range [-1, 1)).
	// This is the accelerator's native datatype.
	Q7 = Format{Bits: 8, Frac: 7}
	// Q4_3 is an 8-bit format with 3 integer bits for activations that
	// exceed unit range.
	Q4_3 = Format{Bits: 8, Frac: 3}
)

// Valid reports whether the format is representable.
func (f Format) Valid() bool {
	return f.Bits >= 2 && f.Bits <= 32 && f.Frac >= 0 && f.Frac < f.Bits
}

// Max returns the largest representable raw value.
func (f Format) Max() int32 { return int32(1)<<(f.Bits-1) - 1 }

// Min returns the smallest representable raw value.
func (f Format) Min() int32 { return -(int32(1) << (f.Bits - 1)) }

// Scale returns the value of one least-significant bit.
func (f Format) Scale() float64 { return 1 / float64(int64(1)<<f.Frac) }

// MaxFloat returns the largest representable real value.
func (f Format) MaxFloat() float64 { return float64(f.Max()) * f.Scale() }

// MinFloat returns the smallest representable real value.
func (f Format) MinFloat() float64 { return float64(f.Min()) * f.Scale() }

// String renders the format in Qm.n notation.
func (f Format) String() string { return fmt.Sprintf("Q%d.%d", f.Bits-1-f.Frac, f.Frac) }

// Value is a fixed-point number: a raw integer interpreted under a Format.
type Value struct {
	Raw int32
	Fmt Format
}

// FromFloat quantizes x into format f, rounding to nearest and saturating
// at the format limits.
func FromFloat(x float64, f Format) Value {
	if !f.Valid() {
		panic("fixed: invalid format " + f.String())
	}
	scaled := math.Round(x / f.Scale())
	return Value{Raw: saturate32(scaled, f), Fmt: f}
}

// Float returns the real value represented.
func (v Value) Float() float64 { return float64(v.Raw) * v.Fmt.Scale() }

// String renders the value and its format.
func (v Value) String() string { return fmt.Sprintf("%g(%s)", v.Float(), v.Fmt) }

// Add returns v + w saturated in v's format. w must share the format.
func (v Value) Add(w Value) Value {
	mustMatch(v.Fmt, w.Fmt)
	return Value{Raw: saturate32(float64(v.Raw)+float64(w.Raw), v.Fmt), Fmt: v.Fmt}
}

// Mul returns v × w saturated in v's format. w must share the format.
func (v Value) Mul(w Value) Value {
	mustMatch(v.Fmt, w.Fmt)
	prod := int64(v.Raw) * int64(w.Raw) // up to 2·Bits-1 significant bits
	// Renormalize: the product carries 2·Frac fractional bits.
	shifted := roundShift(prod, v.Fmt.Frac)
	return Value{Raw: saturate32(float64(shifted), v.Fmt), Fmt: v.Fmt}
}

func mustMatch(a, b Format) {
	if a != b {
		panic(fmt.Sprintf("fixed: format mismatch %s vs %s", a, b))
	}
}

// roundShift arithmetic-shifts x right by n bits with round-half-away-from-
// zero semantics.
func roundShift(x int64, n int) int64 {
	if n == 0 {
		return x
	}
	half := int64(1) << (n - 1)
	if x >= 0 {
		return (x + half) >> n
	}
	return -((-x + half) >> n)
}

func saturate32(x float64, f Format) int32 {
	if x > float64(f.Max()) {
		return f.Max()
	}
	if x < float64(f.Min()) {
		return f.Min()
	}
	return int32(x)
}

// Acc is the wide accumulator of a MAC unit. The paper's MAC executes a
// sequence of multiply-and-add steps into one accumulator (MAC_seq steps per
// MAC_op); a 32-bit accumulator holds the full-precision running sum of
// 8-bit × 8-bit products without intermediate rounding, matching standard
// DNN-accelerator practice.
type Acc struct {
	sum int64
	fmt Format
}

// NewAcc returns a zeroed accumulator for operands in format f.
func NewAcc(f Format) *Acc {
	if !f.Valid() {
		panic("fixed: invalid format " + f.String())
	}
	return &Acc{fmt: f}
}

// MAC performs one multiply-accumulate step: acc += a × b.
func (a *Acc) MAC(x, y Value) {
	mustMatch(x.Fmt, a.fmt)
	mustMatch(y.Fmt, a.fmt)
	a.sum += int64(x.Raw) * int64(y.Raw)
}

// Steps is unused state-free metadata: the accumulator itself does not bound
// sequence length; saturation is applied only at readout.

// Value rounds and saturates the accumulated sum back into the operand
// format. This models the requantization stage at the MAC output.
func (a *Acc) Value() Value {
	shifted := roundShift(a.sum, a.fmt.Frac)
	return Value{Raw: saturate32(float64(shifted), a.fmt), Fmt: a.fmt}
}

// Float returns the exact accumulated real value before requantization.
func (a *Acc) Float() float64 {
	return float64(a.sum) * a.fmt.Scale() * a.fmt.Scale()
}

// Reset zeroes the accumulator.
func (a *Acc) Reset() { a.sum = 0 }

// Dot computes the fixed-point dot product of xs and ys (equal length) using
// a fresh accumulator and returns the requantized result. It is the software
// model of one MAC_op of length MAC_seq = len(xs).
func Dot(xs, ys []Value, f Format) Value {
	if len(xs) != len(ys) {
		panic("fixed: Dot length mismatch")
	}
	acc := NewAcc(f)
	for i := range xs {
		acc.MAC(xs[i], ys[i])
	}
	return acc.Value()
}

// QuantizeSlice converts a float64 slice into format f, saturating each
// element.
func QuantizeSlice(xs []float64, f Format) []Value {
	out := make([]Value, len(xs))
	for i, x := range xs {
		out[i] = FromFloat(x, f)
	}
	return out
}

// DequantizeSlice converts fixed values back to float64.
func DequantizeSlice(vs []Value) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v.Float()
	}
	return out
}

// QuantizationError returns the maximum absolute error introduced by
// round-tripping xs through format f. Values outside the representable
// range saturate and are reported as-is.
func QuantizationError(xs []float64, f Format) float64 {
	worst := 0.0
	for _, x := range xs {
		err := math.Abs(FromFloat(x, f).Float() - x)
		if err > worst {
			worst = err
		}
	}
	return worst
}
