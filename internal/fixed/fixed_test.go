package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatProperties(t *testing.T) {
	if !Q7.Valid() || !Q15.Valid() || !Q4_3.Valid() {
		t.Fatal("standard formats must be valid")
	}
	if Q7.Max() != 127 || Q7.Min() != -128 {
		t.Errorf("Q7 range = [%d, %d]", Q7.Min(), Q7.Max())
	}
	if got := Q7.Scale(); got != 1.0/128 {
		t.Errorf("Q7 scale = %v", got)
	}
	if got := Q7.String(); got != "Q0.7" {
		t.Errorf("Q7 string = %q", got)
	}
	if got := Q4_3.String(); got != "Q4.3" {
		t.Errorf("Q4_3 string = %q", got)
	}
	bad := Format{Bits: 1, Frac: 0}
	if bad.Valid() {
		t.Errorf("1-bit format should be invalid")
	}
	if (Format{Bits: 8, Frac: 8}).Valid() {
		t.Errorf("Frac == Bits should be invalid")
	}
}

func TestFromFloatRounding(t *testing.T) {
	tests := []struct {
		x    float64
		f    Format
		want int32
	}{
		{0, Q7, 0},
		{0.5, Q7, 64},
		{-0.5, Q7, -64},
		{1.0, Q7, 127},   // saturates: 1.0 not representable
		{-1.0, Q7, -128}, // exactly representable
		{2.0, Q7, 127},   // saturate high
		{-2.0, Q7, -128}, // saturate low
		{1.0, Q4_3, 8},   // 1.0 → raw 8 at 3 frac bits
		{15.875, Q4_3, 127},
		{0.004, Q7, 1}, // 0.004·128 = 0.512 rounds to 1
	}
	for _, tt := range tests {
		if got := FromFloat(tt.x, tt.f).Raw; got != tt.want {
			t.Errorf("FromFloat(%v, %s).Raw = %d, want %d", tt.x, tt.f, got, tt.want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any in-range value round-trips within half an LSB.
	f := func(x float64) bool {
		x = math.Mod(x, 1) * 0.99 // keep within Q7 range
		v := FromFloat(x, Q7)
		return math.Abs(v.Float()-x) <= Q7.Scale()/2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSaturates(t *testing.T) {
	a := FromFloat(0.9, Q7)
	b := FromFloat(0.9, Q7)
	sum := a.Add(b)
	if sum.Raw != Q7.Max() {
		t.Errorf("0.9+0.9 in Q7 should saturate to %d, got %d", Q7.Max(), sum.Raw)
	}
	c := FromFloat(-0.9, Q7)
	if got := c.Add(c).Raw; got != Q7.Min() {
		t.Errorf("-0.9-0.9 should saturate to %d, got %d", Q7.Min(), got)
	}
	small := FromFloat(0.25, Q7).Add(FromFloat(0.25, Q7))
	if math.Abs(small.Float()-0.5) > 1e-12 {
		t.Errorf("0.25+0.25 = %v", small.Float())
	}
}

func TestMul(t *testing.T) {
	a := FromFloat(0.5, Q7)
	b := FromFloat(0.5, Q7)
	if got := a.Mul(b).Float(); math.Abs(got-0.25) > Q7.Scale() {
		t.Errorf("0.5·0.5 = %v, want 0.25", got)
	}
	n := FromFloat(-0.5, Q7)
	if got := a.Mul(n).Float(); math.Abs(got+0.25) > Q7.Scale() {
		t.Errorf("0.5·-0.5 = %v, want -0.25", got)
	}
}

func TestMulProperty(t *testing.T) {
	f := func(xr, yr int8) bool {
		x := Value{Raw: int32(xr), Fmt: Q7}
		y := Value{Raw: int32(yr), Fmt: Q7}
		got := x.Mul(y).Float()
		want := x.Float() * y.Float()
		// Result is exact to within one LSB after rounding, unless saturated.
		if want > Q7.MaxFloat() {
			want = Q7.MaxFloat()
		}
		if want < Q7.MinFloat() {
			want = Q7.MinFloat()
		}
		return math.Abs(got-want) <= Q7.Scale()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("mixed-format Add should panic")
		}
	}()
	FromFloat(0.1, Q7).Add(FromFloat(0.1, Q15))
}

func TestAccumulatorExactness(t *testing.T) {
	// The accumulator must hold the exact sum of products without
	// intermediate rounding: sum of 256 products of ±1 LSB values.
	acc := NewAcc(Q7)
	one := Value{Raw: 1, Fmt: Q7}
	for i := 0; i < 256; i++ {
		acc.MAC(one, one)
	}
	// Exact sum = 256 · (1/128)² = 0.015625.
	if got := acc.Float(); math.Abs(got-256.0/(128*128)) > 1e-15 {
		t.Errorf("exact accumulated value = %v", got)
	}
	// Requantized: 256/128 = 2 raw → 2/128.
	if got := acc.Value().Float(); math.Abs(got-2.0/128) > 1e-15 {
		t.Errorf("requantized value = %v", got)
	}
	acc.Reset()
	if acc.Float() != 0 {
		t.Errorf("Reset did not zero accumulator")
	}
}

func TestDotMatchesFloat(t *testing.T) {
	xs := []float64{0.1, -0.2, 0.3, 0.45, -0.5}
	ys := []float64{0.5, 0.25, -0.125, 0.75, 0.9}
	qx := QuantizeSlice(xs, Q15)
	qy := QuantizeSlice(ys, Q15)
	got := Dot(qx, qy, Q15).Float()
	want := 0.0
	for i := range xs {
		want += xs[i] * ys[i]
	}
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("Dot = %v, want ≈%v", got, want)
	}
}

func TestDotProperty(t *testing.T) {
	// Fixed-point dot product tracks the float dot product to within
	// len·LSB (quantization of inputs) + 1 LSB (output rounding).
	f := func(raw [8]int8, raw2 [8]int8) bool {
		xs := make([]Value, 8)
		ys := make([]Value, 8)
		var want float64
		for i := 0; i < 8; i++ {
			xs[i] = Value{Raw: int32(raw[i]), Fmt: Q7}
			ys[i] = Value{Raw: int32(raw2[i]), Fmt: Q7}
			want += xs[i].Float() * ys[i].Float()
		}
		got := Dot(xs, ys, Q7).Float()
		if want > Q7.MaxFloat() {
			want = Q7.MaxFloat()
		}
		if want < Q7.MinFloat() {
			want = Q7.MinFloat()
		}
		return math.Abs(got-want) <= Q7.Scale()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("length mismatch should panic")
		}
	}()
	Dot(make([]Value, 2), make([]Value, 3), Q7)
}

func TestQuantizeDequantize(t *testing.T) {
	xs := []float64{0, 0.5, -0.25, 0.999, -1}
	back := DequantizeSlice(QuantizeSlice(xs, Q15))
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > Q15.Scale() {
			t.Errorf("element %d: %v -> %v", i, xs[i], back[i])
		}
	}
}

func TestQuantizationError(t *testing.T) {
	// In-range values: error bounded by half an LSB.
	xs := []float64{0.1, 0.2, 0.3}
	if got := QuantizationError(xs, Q15); got > Q15.Scale()/2+1e-12 {
		t.Errorf("in-range error = %v", got)
	}
	// Out-of-range values saturate; the error reflects clipping.
	if got := QuantizationError([]float64{5}, Q7); got < 3.9 {
		t.Errorf("clipping error = %v, want ≈4", got)
	}
}
