// Package dnnmodel describes the DNN workloads of Section 5.3 structurally:
// layer shapes, the f_MAC decomposition of Eq. (10), the α channel-scaling
// rule, and the implant/wearable partitioning of Section 6.1.
//
// Two templates mirror the paper's workloads — an MLP and a densely
// connected CNN (DN-CNN), both sized for speech synthesis from 128-channel,
// 2 kHz ECoG with 40 output labels. The exact hidden dimensions of the
// original networks are not published; the shapes here are calibrated so
// the framework reproduces the paper's feasibility crossovers (≈1800
// channels for the MLP, ≈1400 for the DN-CNN, partition gains ≈20% for the
// MLP and ≈0 for the DN-CNN). See DESIGN.md for the calibration notes.
package dnnmodel

import (
	"fmt"
	"math"

	"mindful/internal/units"
)

// Kind discriminates layer types.
type Kind int

// Layer kinds.
const (
	DenseKind Kind = iota
	ConvKind
)

// LayerSpec is one layer's structural description.
type LayerSpec struct {
	Kind Kind
	// Dense: In/Out are feature counts. Conv: In/Out are channel counts.
	In, Out int
	// Conv only: kernel width and input spatial length (stride 1, valid).
	K, InLen int
}

// Validate checks the spec is structurally sound.
func (l LayerSpec) Validate() error {
	if l.In <= 0 || l.Out <= 0 {
		return fmt.Errorf("dnnmodel: non-positive layer dims %d→%d", l.In, l.Out)
	}
	if l.Kind == ConvKind {
		if l.K <= 0 || l.InLen < l.K {
			return fmt.Errorf("dnnmodel: conv K=%d over length %d invalid", l.K, l.InLen)
		}
	}
	return nil
}

// OutLen returns a conv layer's output length (stride 1, valid padding);
// dense layers return 1.
func (l LayerSpec) OutLen() int {
	if l.Kind == ConvKind {
		return l.InLen - l.K + 1
	}
	return 1
}

// MACOps returns #MAC_op: the independent multiply-accumulate sequences in
// the layer (Fig. 8's definition — output neurons for dense, output
// positions × output channels for conv).
func (l LayerSpec) MACOps() int {
	if l.Kind == ConvKind {
		return l.Out * l.OutLen()
	}
	return l.Out
}

// MACSeq returns MAC_seq: the accumulation length of each MAC_op.
func (l LayerSpec) MACSeq() int {
	if l.Kind == ConvKind {
		return l.K * l.In
	}
	return l.In
}

// TotalMACs returns #MAC_op × MAC_seq for the layer.
func (l LayerSpec) TotalMACs() int { return l.MACOps() * l.MACSeq() }

// Weights returns the layer's parameter count (weights only; biases are
// negligible for the paper's model-size metric).
func (l LayerSpec) Weights() int {
	if l.Kind == ConvKind {
		return l.Out * l.In * l.K
	}
	return l.Out * l.In
}

// OutputValues returns the number of values the layer emits per inference —
// the quantity that sets T_comm when the network is cut after this layer.
func (l LayerSpec) OutputValues() int {
	if l.Kind == ConvKind {
		return l.Out * l.OutLen()
	}
	return l.Out
}

// Model is a concrete (already scaled) network.
type Model struct {
	Name string
	// Channels is the NI channel count n this instance was scaled for.
	Channels int
	// Alpha is the scaling factor n / baseChannels.
	Alpha float64
	// Labels is the fixed output size (speech frequencies in the paper).
	Labels int
	// SampleRate is the application's native sampling rate: one inference
	// must complete per sample period (the real-time deadline t = 1/f).
	SampleRate units.Frequency
	Layers     []LayerSpec
}

// Validate checks every layer and inter-layer compatibility of sizes.
func (m Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("dnnmodel: %s has no layers", m.Name)
	}
	for i, l := range m.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("dnnmodel: %s layer %d: %w", m.Name, i, err)
		}
	}
	return nil
}

// TotalMACs returns the per-inference MAC step count.
func (m Model) TotalMACs() int {
	t := 0
	for _, l := range m.Layers {
		t += l.TotalMACs()
	}
	return t
}

// TotalWeights returns the model size in weights (the Fig. 12 metric).
func (m Model) TotalWeights() int {
	t := 0
	for _, l := range m.Layers {
		t += l.Weights()
	}
	return t
}

// OutputValues returns the final layer's output size.
func (m Model) OutputValues() int {
	return m.Layers[len(m.Layers)-1].OutputValues()
}

// Prefix returns the on-implant sub-model consisting of layers [0, cut].
func (m Model) Prefix(cut int) (Model, error) {
	if cut < 0 || cut >= len(m.Layers) {
		return Model{}, fmt.Errorf("dnnmodel: cut %d outside [0, %d]", cut, len(m.Layers)-1)
	}
	out := m
	out.Name = fmt.Sprintf("%s[0:%d]", m.Name, cut+1)
	out.Layers = m.Layers[:cut+1]
	return out, nil
}

// Partition implements Section 6.1's layer-reduction rule: it returns the
// earliest cut index whose post-cut transmission volume fits maxValues
// output values per inference (the value budget of a 1024-channel
// communication-centric design). The second result is false when only the
// complete network satisfies the bound (no benefit).
func (m Model) Partition(maxValues int) (int, bool) {
	for i := 0; i < len(m.Layers)-1; i++ {
		if m.Layers[i].OutputValues() <= maxValues {
			return i, true
		}
	}
	return len(m.Layers) - 1, false
}

// DepthPolicy maps the scaling factor α to the number of extra hidden
// layers inserted when a template is scaled (the paper scales "the network
// depth according to α").
type DepthPolicy func(alpha float64) int

// DefaultDepth adds ⌈log₂ α⌉ layers for α > 1 and none otherwise.
func DefaultDepth(alpha float64) int {
	if alpha <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(alpha)))
}

// Template is a scalable network family.
type Template struct {
	Name string
	// BaseChannels is the channel count the original network was built
	// for (n₀ = 128 in the paper's workloads).
	BaseChannels int
	// SampleRate is the workload's native sampling rate (2 kHz for the
	// paper's speech-synthesis networks); it sets the real-time deadline
	// and the inference rate for output transmission.
	SampleRate units.Frequency
	// Labels is the fixed output size.
	Labels int
	// Depth is the depth-scaling policy (DefaultDepth if nil).
	Depth DepthPolicy
	// build produces the layer stack for a given α, channel count and
	// extra depth.
	build func(alpha float64, channels, extraDepth, labels int) []LayerSpec
}

// Scale instantiates the template for n channels with α = n/BaseChannels
// (Section 5.3's scaling factor).
func (t Template) Scale(n int) (Model, error) {
	if n <= 0 {
		return Model{}, fmt.Errorf("dnnmodel: channel count %d must be positive", n)
	}
	alpha := float64(n) / float64(t.BaseChannels)
	depth := t.Depth
	if depth == nil {
		depth = DefaultDepth
	}
	m := Model{
		Name:       t.Name,
		Channels:   n,
		Alpha:      alpha,
		Labels:     t.Labels,
		SampleRate: t.SampleRate,
		Layers:     t.build(alpha, n, depth(alpha), t.Labels),
	}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// scaleDim rounds a base width by α with a floor of 1.
func scaleDim(base int, alpha float64) int {
	v := int(math.Round(float64(base) * alpha))
	if v < 1 {
		return 1
	}
	return v
}

// MLP returns the multi-layer-perceptron template: a wide first hidden
// layer, a narrow bottleneck (whose output is what partitioning can ship
// to the wearable), extra bottleneck-width layers added with depth, and a
// wide pre-output layer.
func MLP() Template {
	return Template{
		Name:         "MLP",
		BaseChannels: 128,
		SampleRate:   units.Kilohertz(2),
		Labels:       40,
		build: func(alpha float64, channels, extraDepth, labels int) []LayerSpec {
			h1 := scaleDim(1920, alpha)
			bott := scaleDim(60, alpha)
			h2 := scaleDim(2880, alpha)
			layers := []LayerSpec{
				{Kind: DenseKind, In: channels, Out: h1},
				{Kind: DenseKind, In: h1, Out: bott},
			}
			for i := 0; i < extraDepth; i++ {
				layers = append(layers, LayerSpec{Kind: DenseKind, In: bott, Out: bott})
			}
			layers = append(layers,
				LayerSpec{Kind: DenseKind, In: bott, Out: h2},
				LayerSpec{Kind: DenseKind, In: h2, Out: labels},
			)
			return layers
		},
	}
}

// DNCNNWindow is the DN-CNN's input window length in samples.
const DNCNNWindow = 16

// DNCNN returns the densely connected CNN template: a channel-reducing
// front convolution, a dense block whose convolutions see concatenated
// features, a transition convolution (repeated with depth), and a dense
// classifier. Its intermediate feature maps are large, which is exactly
// why Section 6.1 finds no partitioning benefit for it.
func DNCNN() Template {
	return Template{
		Name:         "DN-CNN",
		BaseChannels: 128,
		SampleRate:   units.Kilohertz(2),
		Labels:       40,
		build: func(alpha float64, channels, extraDepth, labels int) []LayerSpec {
			c1 := scaleDim(64, alpha)
			growth := scaleDim(32, alpha)
			c2 := scaleDim(128, alpha)
			ln := DNCNNWindow
			layers := []LayerSpec{
				{Kind: ConvKind, In: channels, Out: c1, K: 3, InLen: ln},
			}
			ln -= 2
			// Dense block: two K=1 convolutions on concatenated features.
			layers = append(layers,
				LayerSpec{Kind: ConvKind, In: c1, Out: growth, K: 1, InLen: ln},
				LayerSpec{Kind: ConvKind, In: c1 + growth, Out: growth, K: 1, InLen: ln},
			)
			// Transition convolution, then depth adds K=1 feature mixers.
			width := c1 + 2*growth
			layers = append(layers, LayerSpec{Kind: ConvKind, In: width, Out: c2, K: 3, InLen: ln})
			ln -= 2
			width = c2
			for i := 0; i < extraDepth; i++ {
				layers = append(layers, LayerSpec{Kind: ConvKind, In: width, Out: c2, K: 1, InLen: ln})
				width = c2
			}
			layers = append(layers, LayerSpec{Kind: DenseKind, In: width * ln, Out: labels})
			return layers
		},
	}
}

// Templates returns the paper's two workload families.
func Templates() []Template { return []Template{MLP(), DNCNN()} }
