package dnnmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLayerSpecPaperExamples(t *testing.T) {
	// Fig. 8 matrix case: A(4×3)·x → #MAC_op = 4 output rows, MAC_seq = 3.
	dense := LayerSpec{Kind: DenseKind, In: 3, Out: 4}
	if dense.MACOps() != 4 || dense.MACSeq() != 3 {
		t.Errorf("dense profile = %d/%d, want 4/3", dense.MACOps(), dense.MACSeq())
	}
	// Fig. 8 conv case: 2 in-channels, 1 out-channel, K=4, output size 4 →
	// #MAC_op = 4, MAC_seq = 8.
	conv := LayerSpec{Kind: ConvKind, In: 2, Out: 1, K: 4, InLen: 7}
	if conv.OutLen() != 4 {
		t.Fatalf("conv out length = %d", conv.OutLen())
	}
	if conv.MACOps() != 4 || conv.MACSeq() != 8 {
		t.Errorf("conv profile = %d/%d, want 4/8", conv.MACOps(), conv.MACSeq())
	}
	if conv.TotalMACs() != 32 {
		t.Errorf("conv total = %d, want 32", conv.TotalMACs())
	}
	if conv.Weights() != 8 {
		t.Errorf("conv weights = %d, want 8", conv.Weights())
	}
	if dense.Weights() != 12 {
		t.Errorf("dense weights = %d", dense.Weights())
	}
}

func TestLayerValidation(t *testing.T) {
	bad := []LayerSpec{
		{Kind: DenseKind, In: 0, Out: 4},
		{Kind: DenseKind, In: 4, Out: 0},
		{Kind: ConvKind, In: 1, Out: 1, K: 0, InLen: 4},
		{Kind: ConvKind, In: 1, Out: 1, K: 5, InLen: 4},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layer %d should fail validation", i)
		}
	}
}

func TestScaleAtBaseChannels(t *testing.T) {
	for _, tmpl := range Templates() {
		m, err := tmpl.Scale(tmpl.BaseChannels)
		if err != nil {
			t.Fatalf("%s: %v", tmpl.Name, err)
		}
		if m.Alpha != 1 {
			t.Errorf("%s α = %v at base channels", tmpl.Name, m.Alpha)
		}
		if m.OutputValues() != 40 {
			t.Errorf("%s output = %d labels, want 40", tmpl.Name, m.OutputValues())
		}
		if m.TotalMACs() <= 0 || m.TotalWeights() <= 0 {
			t.Errorf("%s degenerate size", tmpl.Name)
		}
	}
}

func TestScalingSuperlinear(t *testing.T) {
	// The paper: DNN compute grows super-linearly with input size.
	for _, tmpl := range Templates() {
		base, err := tmpl.Scale(128)
		if err != nil {
			t.Fatal(err)
		}
		big, err := tmpl.Scale(1024)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(big.TotalMACs()) / float64(base.TotalMACs())
		if ratio < 8*8*0.8 { // ≳ α² (widths scale linearly on both ends)
			t.Errorf("%s compute ratio at 8× channels = %v, want ≳α²", tmpl.Name, ratio)
		}
	}
}

func TestOutputSizeFixedUnderScaling(t *testing.T) {
	// Classification output stays 40 labels regardless of n (Section 5.3).
	for _, tmpl := range Templates() {
		for _, n := range []int{128, 1024, 4096, 8192} {
			m, err := tmpl.Scale(n)
			if err != nil {
				t.Fatalf("%s @%d: %v", tmpl.Name, n, err)
			}
			if m.OutputValues() != 40 {
				t.Errorf("%s @%d output = %d", tmpl.Name, n, m.OutputValues())
			}
		}
	}
}

func TestDepthGrowsWithAlpha(t *testing.T) {
	mlp := MLP()
	small, _ := mlp.Scale(128)
	big, _ := mlp.Scale(2048)
	if len(big.Layers) <= len(small.Layers) {
		t.Errorf("depth did not grow: %d vs %d layers", len(big.Layers), len(small.Layers))
	}
	if got := DefaultDepth(1); got != 0 {
		t.Errorf("DefaultDepth(1) = %d", got)
	}
	if got := DefaultDepth(8); got != 3 {
		t.Errorf("DefaultDepth(8) = %d", got)
	}
	if got := DefaultDepth(0.5); got != 0 {
		t.Errorf("DefaultDepth(<1) = %d", got)
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := MLP().Scale(0); err == nil {
		t.Errorf("zero channels should fail")
	}
	if _, err := MLP().Scale(-5); err == nil {
		t.Errorf("negative channels should fail")
	}
}

func TestMLPPartitionFindsBottleneck(t *testing.T) {
	// At 1024 channels the MLP bottleneck is 512 values — within a
	// 1024-value budget — so a proper cut exists.
	m, err := MLP().Scale(1024)
	if err != nil {
		t.Fatal(err)
	}
	cut, ok := m.Partition(1024)
	if !ok {
		t.Fatalf("no cut found for MLP@1024")
	}
	if m.Layers[cut].OutputValues() > 1024 {
		t.Errorf("cut output %d exceeds budget", m.Layers[cut].OutputValues())
	}
	// The cut must strictly reduce on-implant compute.
	pre, err := m.Prefix(cut)
	if err != nil {
		t.Fatal(err)
	}
	if pre.TotalMACs() >= m.TotalMACs() {
		t.Errorf("prefix MACs %d not below full %d", pre.TotalMACs(), m.TotalMACs())
	}
	// The offloaded fraction should be meaningful (paper: ≈20% channel
	// gain needs ≳25% compute reduction).
	frac := float64(pre.TotalMACs()) / float64(m.TotalMACs())
	if frac > 0.85 {
		t.Errorf("cut removes only %.0f%% of compute", (1-frac)*100)
	}
}

func TestDNCNNPartitionFindsNoCutAtScale(t *testing.T) {
	// The DN-CNN's intermediate feature maps exceed the value budget at
	// the channel counts that matter — Section 6.1's negative result.
	for _, n := range []int{1024, 2048, 4096} {
		m, err := DNCNN().Scale(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.Partition(1024); ok {
			t.Errorf("DN-CNN@%d unexpectedly has a valid cut", n)
		}
	}
}

func TestPartitionBudgetMonotoneProperty(t *testing.T) {
	m, err := MLP().Scale(1024)
	if err != nil {
		t.Fatal(err)
	}
	f := func(b1, b2 uint16) bool {
		lo, hi := int(b1)%5000+1, int(b2)%5000+1
		if lo > hi {
			lo, hi = hi, lo
		}
		cutLo, okLo := m.Partition(lo)
		cutHi, okHi := m.Partition(hi)
		// A larger budget can only move the cut earlier (or keep it).
		if okLo && !okHi {
			return false
		}
		if okLo && okHi && cutHi > cutLo {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPrefixValidation(t *testing.T) {
	m, err := MLP().Scale(128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Prefix(-1); err == nil {
		t.Errorf("negative cut should fail")
	}
	if _, err := m.Prefix(len(m.Layers)); err == nil {
		t.Errorf("out-of-range cut should fail")
	}
	pre, err := m.Prefix(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre.Layers) != 1 {
		t.Errorf("prefix(0) layers = %d", len(pre.Layers))
	}
}

func TestRelativeCostOfTemplates(t *testing.T) {
	// Calibration guard: the DN-CNN must be markedly costlier than the
	// MLP — the paper's feasibility crossovers (≈1400 vs ≈1800 channels
	// under quadratic compute growth) imply roughly a 2–4× MAC ratio.
	mlp, _ := MLP().Scale(1024)
	cnn, _ := DNCNN().Scale(1024)
	ratio := float64(cnn.TotalMACs()) / float64(mlp.TotalMACs())
	if ratio < 2 || ratio > 5 {
		t.Errorf("DN-CNN/MLP MAC ratio = %.2f, want within [2, 5]", ratio)
	}
}

func TestModelValidate(t *testing.T) {
	if err := (Model{Name: "x"}).Validate(); err == nil {
		t.Errorf("empty model should fail")
	}
	m := Model{Name: "x", Layers: []LayerSpec{{Kind: DenseKind, In: 0, Out: 1}}}
	if err := m.Validate(); err == nil {
		t.Errorf("invalid layer should fail")
	}
}

func TestScaleDimFloor(t *testing.T) {
	if got := scaleDim(4, 0.01); got != 1 {
		t.Errorf("scaleDim floor = %d", got)
	}
	if got := scaleDim(512, 2); got != 1024 {
		t.Errorf("scaleDim = %d", got)
	}
	if got := scaleDim(3, 1.5); got != 5 { // 4.5 rounds to 5 (half away)
		t.Errorf("scaleDim rounding = %d", got)
	}
}

func TestAlphaMatchesDefinition(t *testing.T) {
	m, err := MLP().Scale(320)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-2.5) > 1e-12 {
		t.Errorf("α = %v, want 2.5", m.Alpha)
	}
	if m.Channels != 320 {
		t.Errorf("channels = %d", m.Channels)
	}
	// First layer input equals the channel count.
	if m.Layers[0].In != 320 {
		t.Errorf("input layer In = %d", m.Layers[0].In)
	}
}
