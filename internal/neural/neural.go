// Package neural is the synthetic neural-interface substrate: it generates
// the multichannel cortical signals the rest of the system consumes.
//
// The paper's workloads are driven by real ECoG recordings; those are not
// available here, so this package produces statistically similar traces —
// per-channel Poisson spiking units with biphasic action-potential
// waveforms, a shared low-frequency field potential, and white sensor noise
// — plus the ADC that digitizes them to d-bit samples (the d of Eq. 6).
// Spiking rates are modulated by a latent "intent" state with cosine
// tuning, giving the linear decoders in internal/decode something real to
// decode. Ground-truth spike times are exposed so internal/dsp's detector
// and sorter can be validated.
package neural

import (
	"fmt"
	"math"

	"mindful/internal/detrand"
	"mindful/internal/units"
)

// Config describes a synthetic neural interface.
type Config struct {
	// Channels is the number of recording channels n.
	Channels int
	// SampleRate is the per-channel sampling frequency f.
	SampleRate units.Frequency
	// Seed makes the generated signal reproducible.
	Seed int64
	// ActiveFraction is the fraction of channels with a spiking unit in
	// range; the remainder record only field potential and noise. The
	// paper's channel-dropout optimization exploits exactly this redundancy.
	ActiveFraction float64
	// MeanRateHz is the baseline firing rate of active units.
	MeanRateHz float64
	// ModulationDepth is the fractional rate modulation by intent (0..1).
	ModulationDepth float64
	// NoiseRMS is the white-noise amplitude relative to spike peak (≈1.0).
	NoiseRMS float64
	// LFPAmplitude is the shared field-potential amplitude relative to
	// spike peak.
	LFPAmplitude float64
}

// DefaultConfig returns a 128-channel, 2 kHz interface matching the
// paper's baseline workload (the Berezutskaya speech dataset geometry).
func DefaultConfig() Config {
	return Config{
		Channels:        128,
		SampleRate:      units.Kilohertz(2),
		Seed:            1,
		ActiveFraction:  0.7,
		MeanRateHz:      20,
		ModulationDepth: 0.8,
		NoiseRMS:        0.12,
		LFPAmplitude:    0.25,
	}
}

// Generator produces multichannel neural samples.
type Generator struct {
	cfg Config
	rng *detrand.Rand

	active   []bool       // channel has a unit
	tuning   [][2]float64 // unit preferred direction (unit vector)
	theta    []float64    // drawn preferred-direction angles (static)
	drift    *unitDrift   // externally-applied nonstationarity; nil when stationary
	template []float64    // AP waveform
	// pending is a per-channel ring of upcoming additive waveform values:
	// channel c's ring is pending[c*len(template) : (c+1)*len(template)],
	// read at pendHead[c]. Fixed-size rings keep the spike mixing free of
	// per-spike allocations (overlapping spikes sum in place).
	pending  []float64
	pendHead []int
	intent   [2]float64
	// lfp state: second-order resonator excited by noise, normalized to
	// unit stationary RMS via lfpNorm.
	lfpY1, lfpY2 float64
	lfpA1, lfpA2 float64
	lfpNorm      float64
	t            int
	spikeLog     [][]int // ground-truth spike sample indices per channel
	logSpikes    bool
}

// New validates cfg and returns a generator.
func New(cfg Config) (*Generator, error) {
	if cfg.Channels <= 0 {
		return nil, fmt.Errorf("neural: channels %d must be positive", cfg.Channels)
	}
	if cfg.SampleRate.Hz() <= 0 {
		return nil, fmt.Errorf("neural: sample rate must be positive")
	}
	if cfg.ActiveFraction < 0 || cfg.ActiveFraction > 1 {
		return nil, fmt.Errorf("neural: active fraction %g outside [0,1]", cfg.ActiveFraction)
	}
	if cfg.MeanRateHz < 0 || cfg.NoiseRMS < 0 || cfg.LFPAmplitude < 0 {
		return nil, fmt.Errorf("neural: negative signal parameter")
	}
	if cfg.ModulationDepth < 0 || cfg.ModulationDepth > 1 {
		return nil, fmt.Errorf("neural: modulation depth %g outside [0,1]", cfg.ModulationDepth)
	}
	g := &Generator{
		cfg:      cfg,
		rng:      detrand.New(cfg.Seed),
		active:   make([]bool, cfg.Channels),
		tuning:   make([][2]float64, cfg.Channels),
		theta:    make([]float64, cfg.Channels),
		pendHead: make([]int, cfg.Channels),
		spikeLog: make([][]int, cfg.Channels),
		template: apTemplate(cfg.SampleRate),
	}
	g.pending = make([]float64, cfg.Channels*len(g.template))
	for c := 0; c < cfg.Channels; c++ {
		g.active[c] = g.rng.Float64() < cfg.ActiveFraction
		theta := g.rng.Float64() * 2 * math.Pi
		g.theta[c] = theta
		g.tuning[c] = [2]float64{math.Cos(theta), math.Sin(theta)}
	}
	// LFP resonator: damped ~10 Hz AR(2) driven by unit white noise,
	// normalized to unit stationary RMS so LFPAmplitude is meaningful.
	w := 2 * math.Pi * 10 * cfg.SampleRate.Period()
	r := 0.995
	g.lfpA1 = 2 * r * math.Cos(w)
	g.lfpA2 = -r * r
	// Stationary variance of an AR(2) process with unit drive variance.
	gamma0 := (1 - g.lfpA2) / ((1 + g.lfpA2) * ((1-g.lfpA2)*(1-g.lfpA2) - g.lfpA1*g.lfpA1))
	if gamma0 > 0 {
		g.lfpNorm = 1 / math.Sqrt(gamma0)
	} else {
		g.lfpNorm = 1
	}
	return g, nil
}

// apTemplate builds a biphasic action-potential waveform of ≈1.2 ms,
// normalized to unit negative peak.
func apTemplate(rate units.Frequency) []float64 {
	n := int(rate.Hz() * 1.2e-3)
	if n < 3 {
		n = 3
	}
	out := make([]float64, n)
	trough := 0.0
	for i := range out {
		x := float64(i) / float64(n-1) // 0..1
		// Sharp depolarization followed by a slower positive rebound.
		out[i] = -math.Exp(-math.Pow((x-0.2)/0.1, 2)) + 0.4*math.Exp(-math.Pow((x-0.55)/0.18, 2))
		if out[i] < trough {
			trough = out[i]
		}
	}
	// At low sample rates the grid can miss the continuous trough; rescale
	// so the sampled waveform always reaches −1.
	if trough < 0 {
		for i := range out {
			out[i] /= -trough
		}
	}
	return out
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// ActiveChannels returns the indices of channels with a spiking unit.
func (g *Generator) ActiveChannels() []int {
	var out []int
	for c, a := range g.active {
		if a {
			out = append(out, c)
		}
	}
	return out
}

// SetIntent updates the latent 2-D intent state (e.g. cursor velocity)
// that modulates unit firing rates. Components should be within [-1, 1].
func (g *Generator) SetIntent(x, y float64) { g.intent = [2]float64{x, y} }

// Intent returns the current latent state.
func (g *Generator) Intent() (x, y float64) { return g.intent[0], g.intent[1] }

// RecordSpikes enables ground-truth spike logging (for detector tests).
func (g *Generator) RecordSpikes(on bool) { g.logSpikes = on }

// unitDrift holds externally-applied nonstationarity state — per-unit
// multipliers on the configured firing rate and spike amplitude plus a
// liveness gate. It stays nil until SetUnitState is first called, so a
// stationary generator's hot path is untouched; once allocated, identity
// values (scale 1, alive) are bit-exact no-ops.
type unitDrift struct {
	rateScale []float64
	ampGain   []float64
	alive     []bool
}

// UnitThetas returns a copy of the drawn preferred-direction angles, one
// per channel — the day-0 tuning a nonstationarity process evolves from.
func (g *Generator) UnitThetas() []float64 {
	return append([]float64(nil), g.theta...)
}

// UnitActive returns a copy of the per-channel unit presence flags.
func (g *Generator) UnitActive() []bool {
	return append([]bool(nil), g.active...)
}

// SetUnitState overwrites one channel's unit parameters for
// nonstationarity modeling: theta is the absolute preferred-direction
// angle (replacing the drawn one), rateScale and ampGain multiply the
// configured firing rate and spike amplitude, and alive gates the unit —
// a unit lost to turnover stops spiking even on an active channel.
//
// The state set here is NOT part of GeneratorState: a restored generator
// comes back pristine and the owning drift process must re-apply its
// absolute state (drift.Process does exactly that).
func (g *Generator) SetUnitState(c int, theta, rateScale, ampGain float64, alive bool) error {
	if c < 0 || c >= g.cfg.Channels {
		return fmt.Errorf("neural: unit %d outside 0..%d", c, g.cfg.Channels-1)
	}
	for _, v := range [...]float64{theta, rateScale, ampGain} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("neural: non-finite unit state for channel %d", c)
		}
	}
	if rateScale < 0 || ampGain < 0 {
		return fmt.Errorf("neural: negative unit scale for channel %d", c)
	}
	if g.drift == nil {
		d := &unitDrift{
			rateScale: make([]float64, g.cfg.Channels),
			ampGain:   make([]float64, g.cfg.Channels),
			alive:     make([]bool, g.cfg.Channels),
		}
		for i := 0; i < g.cfg.Channels; i++ {
			d.rateScale[i], d.ampGain[i], d.alive[i] = 1, 1, true
		}
		g.drift = d
	}
	g.theta[c] = theta
	g.tuning[c] = [2]float64{math.Cos(theta), math.Sin(theta)}
	g.drift.rateScale[c] = rateScale
	g.drift.ampGain[c] = ampGain
	g.drift.alive[c] = alive
	return nil
}

// SpikeLog returns, per channel, the sample indices at which spikes were
// emitted since construction (only while RecordSpikes was enabled).
func (g *Generator) SpikeLog() [][]int { return g.spikeLog }

// Next produces one sample for every channel and advances time.
func (g *Generator) Next() []float64 {
	return g.NextInto(nil)
}

// NextInto produces one sample for every channel into dst (grown when too
// small) and advances time. Reusing the returned slice across ticks makes
// the sensing path allocation-free.
func (g *Generator) NextInto(dst []float64) []float64 {
	if cap(dst) < g.cfg.Channels {
		dst = make([]float64, g.cfg.Channels)
	}
	dst = dst[:g.cfg.Channels]
	g.fill(dst)
	return dst
}

// fill writes one sample per channel into dst (len = Channels).
func (g *Generator) fill(dst []float64) {
	dt := g.cfg.SampleRate.Period()
	raw := g.lfpA1*g.lfpY1 + g.lfpA2*g.lfpY2 + g.rng.NormFloat64()
	g.lfpY2, g.lfpY1 = g.lfpY1, raw
	lfp := raw * g.lfpNorm

	tlen := len(g.template)
	for c := 0; c < g.cfg.Channels; c++ {
		v := g.cfg.LFPAmplitude*lfp + g.cfg.NoiseRMS*g.rng.NormFloat64()
		ring := g.pending[c*tlen : (c+1)*tlen]
		head := g.pendHead[c]
		if g.active[c] && (g.drift == nil || g.drift.alive[c]) {
			rate := g.cfg.MeanRateHz * (1 + g.cfg.ModulationDepth*(g.tuning[c][0]*g.intent[0]+g.tuning[c][1]*g.intent[1]))
			amp := 1.0
			if g.drift != nil {
				// Multiplying by the identity scales (1.0) is bit-exact,
				// so a drift state that has not diverged from pristine
				// keeps the sample stream byte-identical.
				rate *= g.drift.rateScale[c]
				amp = g.drift.ampGain[c]
			}
			if rate < 0 {
				rate = 0
			}
			if g.rng.Float64() < rate*dt {
				// Emit a spike: mix the template additively into the
				// channel's pending ring (overlapping spikes sum).
				for k, tv := range g.template {
					ring[(head+k)%tlen] += tv * amp
				}
				if g.logSpikes {
					g.spikeLog[c] = append(g.spikeLog[c], g.t)
				}
			}
		}
		v += ring[head]
		ring[head] = 0
		g.pendHead[c] = (head + 1) % tlen
		dst[c] = v
	}
	g.t++
}

// NextBlock produces n consecutive samples; block[i][c] is channel c at
// time step i.
func (g *Generator) NextBlock(n int) [][]float64 {
	out := make([][]float64, n)
	flat := make([]float64, n*g.cfg.Channels)
	for i := range out {
		out[i] = flat[i*g.cfg.Channels : (i+1)*g.cfg.Channels]
		g.fill(out[i])
	}
	return out
}

// GeneratorState is a generator's serializable mid-run state: the RNG
// position plus every mutable field the tick loop touches. Channel
// activity and tuning are not stored — they are a pure function of the
// config and are rebuilt by RestoreGenerator. The ground-truth spike log
// is excluded (checkpointed pipelines do not record spikes).
type GeneratorState struct {
	RNG      detrand.State
	Pending  []float64
	PendHead []int
	Intent   [2]float64
	LFPY1    float64
	LFPY2    float64
	T        int
}

// Snapshot captures the generator's mid-run state. Restoring it with
// RestoreGenerator under the same Config continues the sample stream
// bit-identically.
func (g *Generator) Snapshot() GeneratorState {
	st := GeneratorState{
		RNG:      g.rng.State(),
		Pending:  append([]float64(nil), g.pending...),
		PendHead: append([]int(nil), g.pendHead...),
		Intent:   g.intent,
		LFPY1:    g.lfpY1,
		LFPY2:    g.lfpY2,
		T:        g.t,
	}
	return st
}

// RestoreGenerator rebuilds a generator from a snapshot taken under the
// same config. The static structure (active channels, tuning, template)
// is regenerated from cfg; the RNG is fast-forwarded to the recorded
// position; the mutable tick state is overwritten.
func RestoreGenerator(cfg Config, st GeneratorState) (*Generator, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	rng, err := detrand.RestoreInto(g.rng, st.RNG)
	if err != nil {
		return nil, fmt.Errorf("neural: %w", err)
	}
	if len(st.Pending) != len(g.pending) {
		return nil, fmt.Errorf("neural: pending ring %d entries, config needs %d", len(st.Pending), len(g.pending))
	}
	if len(st.PendHead) != len(g.pendHead) {
		return nil, fmt.Errorf("neural: %d ring heads, config needs %d", len(st.PendHead), len(g.pendHead))
	}
	tlen := len(g.template)
	for c, h := range st.PendHead {
		if h < 0 || h >= tlen {
			return nil, fmt.Errorf("neural: ring head %d of channel %d outside [0, %d)", h, c, tlen)
		}
	}
	if st.T < 0 {
		return nil, fmt.Errorf("neural: negative tick counter %d", st.T)
	}
	g.rng = rng
	copy(g.pending, st.Pending)
	copy(g.pendHead, st.PendHead)
	g.intent = st.Intent
	g.lfpY1, g.lfpY2 = st.LFPY1, st.LFPY2
	g.t = st.T
	return g, nil
}

// ADC digitizes analog samples to unsigned d-bit codes, mid-rise, clipping
// at ±FullScale.
type ADC struct {
	// Bits is the sample width d (Eq. 6), 1..16.
	Bits int
	// FullScale is the analog amplitude mapped to the code extremes.
	FullScale float64
}

// DefaultADC is the 10-bit converter used in the paper's worked example.
func DefaultADC() ADC { return ADC{Bits: 10, FullScale: 2.0} }

// Levels returns the number of quantization levels.
func (a ADC) Levels() int { return 1 << a.Bits }

// Quantize converts an analog value to a code.
func (a ADC) Quantize(x float64) uint16 {
	if a.Bits < 1 || a.Bits > 16 {
		panic("neural: ADC bits outside 1..16")
	}
	lv := float64(a.Levels())
	code := math.Floor((x + a.FullScale) / (2 * a.FullScale) * lv)
	if code < 0 {
		code = 0
	}
	if code > lv-1 {
		code = lv - 1
	}
	return uint16(code)
}

// Dequantize converts a code back to the center of its analog bin.
func (a ADC) Dequantize(q uint16) float64 {
	lv := float64(a.Levels())
	return (float64(q)+0.5)/lv*2*a.FullScale - a.FullScale
}

// QuantizeBlock digitizes one multichannel sample vector.
func (a ADC) QuantizeBlock(xs []float64) []uint16 {
	return a.AppendQuantize(make([]uint16, 0, len(xs)), xs)
}

// AppendQuantize digitizes xs, appending the codes to dst — the
// allocation-free variant for buffer-reusing pipelines.
func (a ADC) AppendQuantize(dst []uint16, xs []float64) []uint16 {
	for _, x := range xs {
		dst = append(dst, a.Quantize(x))
	}
	return dst
}

// SensingThroughput returns Eq. (6): T_sensing(n) = d·n·f.
func SensingThroughput(channels, sampleBits int, f units.Frequency) units.DataRate {
	return units.BitsPerSecond(float64(sampleBits) * float64(channels) * f.Hz())
}
