package neural

import (
	"fmt"
	"math"
)

// Batched sensing kernels: the fleet's batch runner steps B implants in
// tick-lockstep, so the per-implant generators advance together over
// one contiguous structure-of-arrays slab. Each generator owns an
// independent RNG stream, so lockstep stepping preserves every
// implant's draw order by construction; within one implant, fillFast is
// fill with the detrand fast samplers substituted call-for-call —
// identical value stream, identical draw count (pinned by
// batch_test.go and the fleet determinism walls).

// fillFast mirrors fill exactly, drawing through the fast samplers.
func (g *Generator) fillFast(dst []float64) {
	dt := g.cfg.SampleRate.Period()
	raw := g.lfpA1*g.lfpY1 + g.lfpA2*g.lfpY2 + g.rng.FastNormFloat64()
	g.lfpY2, g.lfpY1 = g.lfpY1, raw
	lfp := raw * g.lfpNorm

	tlen := len(g.template)
	for c := 0; c < g.cfg.Channels; c++ {
		v := g.cfg.LFPAmplitude*lfp + g.cfg.NoiseRMS*g.rng.FastNormFloat64()
		ring := g.pending[c*tlen : (c+1)*tlen]
		head := g.pendHead[c]
		if g.active[c] && (g.drift == nil || g.drift.alive[c]) {
			rate := g.cfg.MeanRateHz * (1 + g.cfg.ModulationDepth*(g.tuning[c][0]*g.intent[0]+g.tuning[c][1]*g.intent[1]))
			amp := 1.0
			if g.drift != nil {
				rate *= g.drift.rateScale[c]
				amp = g.drift.ampGain[c]
			}
			if rate < 0 {
				rate = 0
			}
			if g.rng.FastFloat64() < rate*dt {
				for k, tv := range g.template {
					ring[(head+k)%tlen] += tv * amp
				}
				if g.logSpikes {
					g.spikeLog[c] = append(g.spikeLog[c], g.t)
				}
			}
		}
		v += ring[head]
		ring[head] = 0
		g.pendHead[c] = (head + 1) % tlen
		dst[c] = v
	}
	g.t++
}

// NextSlab advances every generator one sample in lockstep, writing
// generator i's channels into slab[i*channels : (i+1)*channels] — the
// batched NextInto. Generator i's output is bit-identical to what its
// own NextInto would have produced.
func NextSlab(gens []*Generator, slab []float64, channels int) error {
	if len(slab) < len(gens)*channels {
		return fmt.Errorf("neural: slab holds %d values, need %d", len(slab), len(gens)*channels)
	}
	for i, g := range gens {
		if g.cfg.Channels != channels {
			return fmt.Errorf("neural: generator %d has %d channels, slab expects %d", i, g.cfg.Channels, channels)
		}
		g.fillFast(slab[i*channels : (i+1)*channels])
	}
	return nil
}

// AppendQuantizeFast is AppendQuantize with the range check and scale
// constants hoisted out of the sample loop; each code comes from the
// same floating-point expression, so output is identical.
func (a ADC) AppendQuantizeFast(dst []uint16, xs []float64) []uint16 {
	if a.Bits < 1 || a.Bits > 16 {
		panic("neural: ADC bits outside 1..16")
	}
	lv := float64(int(1) << a.Bits)
	den := 2 * a.FullScale
	for _, x := range xs {
		code := math.Floor((x + a.FullScale) / den * lv)
		if code < 0 {
			code = 0
		}
		if code > lv-1 {
			code = lv - 1
		}
		dst = append(dst, uint16(code))
	}
	return dst
}
