package neural

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mindful/internal/units"
)

// TestNextSlabBitIdentical steps a batch of generators through NextSlab
// and identically seeded twins through the scalar NextInto, asserting
// bit-identical samples and end states across many ticks and changing
// intents.
func TestNextSlabBitIdentical(t *testing.T) {
	const (
		n     = 5
		ticks = 400
	)
	cfg := DefaultConfig()
	cfg.Channels = 16
	mk := func() []*Generator {
		gens := make([]*Generator, n)
		for i := range gens {
			c := cfg
			c.Seed = int64(1000 + 37*i)
			g, err := New(c)
			if err != nil {
				panic(err)
			}
			gens[i] = g
		}
		return gens
	}
	batch, scalar := mk(), mk()
	slab := make([]float64, n*cfg.Channels)
	ref := make([]float64, cfg.Channels)
	for tick := 0; tick < ticks; tick++ {
		ix, iy := math.Sin(float64(tick)/30), math.Cos(float64(tick)/50)
		for i := 0; i < n; i++ {
			batch[i].SetIntent(ix, iy)
			scalar[i].SetIntent(ix, iy)
		}
		if err := NextSlab(batch, slab, cfg.Channels); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			ref = scalar[i].NextInto(ref)
			for c := 0; c < cfg.Channels; c++ {
				got := slab[i*cfg.Channels+c]
				if math.Float64bits(ref[c]) != math.Float64bits(got) {
					t.Fatalf("tick %d gen %d ch %d: slab %v != scalar %v", tick, i, c, got, ref[c])
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(batch[i].Snapshot(), scalar[i].Snapshot()) {
			t.Fatalf("gen %d: end states diverged", i)
		}
	}
}

// TestNextSlabValidates pins the slab-size and channel-shape errors.
func TestNextSlabValidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 8
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := NextSlab([]*Generator{g}, make([]float64, 4), 8); err == nil {
		t.Error("short slab accepted")
	}
	if err := NextSlab([]*Generator{g}, make([]float64, 16), 16); err == nil {
		t.Error("channel mismatch accepted")
	}
}

// TestAppendQuantizeFastIdentical pins the hoisted quantizer against the
// reference across widths, in-range, clipped and edge values.
func TestAppendQuantizeFastIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, bits := range []int{1, 4, 10, 16} {
		a := ADC{Bits: bits, FullScale: 2.0}
		xs := []float64{-3, -2, -1.9999, 0, 1.9999, 2, 3, math.SmallestNonzeroFloat64}
		for i := 0; i < 256; i++ {
			xs = append(xs, rng.NormFloat64())
		}
		want := a.AppendQuantize(nil, xs)
		got := a.AppendQuantizeFast(nil, xs)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("bits=%d: codes differ", bits)
		}
	}
}

func benchGen() *Generator {
	cfg := DefaultConfig()
	cfg.Channels = 32
	cfg.SampleRate = units.Hertz(2000)
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

func BenchmarkNextInto(b *testing.B) {
	g := benchGen()
	buf := make([]float64, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = g.NextInto(buf)
	}
}

func BenchmarkNextSlab(b *testing.B) {
	gens := make([]*Generator, 16)
	for i := range gens {
		gens[i] = benchGen()
	}
	slab := make([]float64, 16*32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := NextSlab(gens, slab, 32); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(gens)), "ns/gen")
}
