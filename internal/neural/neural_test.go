package neural

import (
	"math"
	"testing"
	"testing/quick"

	"mindful/internal/units"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Channels: 0, SampleRate: units.Kilohertz(2)},
		{Channels: 8, SampleRate: 0},
		{Channels: 8, SampleRate: units.Kilohertz(2), ActiveFraction: 1.5},
		{Channels: 8, SampleRate: units.Kilohertz(2), MeanRateHz: -1},
		{Channels: 8, SampleRate: units.Kilohertz(2), ModulationDepth: 2},
		{Channels: 8, SampleRate: units.Kilohertz(2), NoiseRMS: -0.1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1 := g1.NextBlock(100)
	b2 := g2.NextBlock(100)
	for i := range b1 {
		for c := range b1[i] {
			if b1[i][c] != b2[i][c] {
				t.Fatalf("same seed diverged at sample %d channel %d", i, c)
			}
		}
	}
}

func TestBlockShape(t *testing.T) {
	g, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := g.NextBlock(50)
	if len(b) != 50 {
		t.Fatalf("block rows = %d", len(b))
	}
	for _, row := range b {
		if len(row) != 128 {
			t.Fatalf("row width = %d", len(row))
		}
	}
	if len(g.Next()) != 128 {
		t.Fatalf("Next width wrong")
	}
}

func TestActiveFractionRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 1000
	cfg.ActiveFraction = 0.3
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := len(g.ActiveChannels())
	if n < 230 || n > 370 {
		t.Errorf("active channels = %d of 1000, want ≈300", n)
	}
	cfg.ActiveFraction = 0
	g0, _ := New(cfg)
	if len(g0.ActiveChannels()) != 0 {
		t.Errorf("zero fraction should give no active channels")
	}
}

func TestSpikeLogAndRates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 64
	cfg.ActiveFraction = 1
	cfg.MeanRateHz = 50
	cfg.ModulationDepth = 0
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.RecordSpikes(true)
	seconds := 5.0
	n := int(cfg.SampleRate.Hz() * seconds)
	g.NextBlock(n)
	total := 0
	for _, log := range g.SpikeLog() {
		total += len(log)
	}
	// Expected 64 ch × 50 Hz × 5 s = 16000 spikes; allow ±15%.
	want := 64 * 50 * seconds
	if math.Abs(float64(total)-want) > 0.15*want {
		t.Errorf("total spikes = %d, want ≈%v", total, want)
	}
}

func TestIntentModulatesRates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 200
	cfg.ActiveFraction = 1
	cfg.MeanRateHz = 40
	cfg.ModulationDepth = 0.9
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.RecordSpikes(true)
	// Drive intent along +x; channels tuned to +x should fire more than
	// channels tuned to −x.
	g.SetIntent(1, 0)
	if x, y := g.Intent(); x != 1 || y != 0 {
		t.Fatalf("intent round trip failed")
	}
	n := int(cfg.SampleRate.Hz() * 4)
	g.NextBlock(n)
	logs := g.SpikeLog()
	var hi, lo, nHi, nLo float64
	for c := 0; c < cfg.Channels; c++ {
		switch proj := g.tuning[c][0]; {
		case proj > 0.5:
			hi += float64(len(logs[c]))
			nHi++
		case proj < -0.5:
			lo += float64(len(logs[c]))
			nLo++
		}
	}
	if nHi == 0 || nLo == 0 {
		t.Fatal("tuning distribution degenerate")
	}
	if hi/nHi <= 1.3*(lo/nLo) {
		t.Errorf("aligned channels should fire ≫ anti-aligned: %v vs %v", hi/nHi, lo/nLo)
	}
}

func TestSignalContainsSpikesAboveNoise(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Channels = 4
	cfg.ActiveFraction = 1
	cfg.MeanRateHz = 100
	cfg.NoiseRMS = 0.05
	cfg.LFPAmplitude = 0
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := g.NextBlock(int(cfg.SampleRate.Hz()))
	min := 0.0
	for _, row := range b {
		for _, v := range row {
			if v < min {
				min = v
			}
		}
	}
	// The AP template has a −1 trough; with 100 Hz firing we must see it.
	if min > -0.7 {
		t.Errorf("no spike troughs visible: min = %v", min)
	}
}

func TestADCRoundTripProperty(t *testing.T) {
	adc := DefaultADC()
	step := 2 * adc.FullScale / float64(adc.Levels())
	f := func(x float64) bool {
		x = math.Mod(x, adc.FullScale*0.99)
		q := adc.Quantize(x)
		back := adc.Dequantize(q)
		return math.Abs(back-x) <= step
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestADCClipping(t *testing.T) {
	adc := DefaultADC()
	if got := adc.Quantize(100); got != uint16(adc.Levels()-1) {
		t.Errorf("positive clip = %d", got)
	}
	if got := adc.Quantize(-100); got != 0 {
		t.Errorf("negative clip = %d", got)
	}
	if adc.Levels() != 1024 {
		t.Errorf("10-bit ADC levels = %d", adc.Levels())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("invalid ADC bits should panic")
			}
		}()
		ADC{Bits: 0, FullScale: 1}.Quantize(0)
	}()
}

func TestADCMonotoneProperty(t *testing.T) {
	adc := DefaultADC()
	f := func(a, b float64) bool {
		a = math.Mod(a, 3)
		b = math.Mod(b, 3)
		if a > b {
			a, b = b, a
		}
		return adc.Quantize(a) <= adc.Quantize(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeBlock(t *testing.T) {
	adc := DefaultADC()
	got := adc.QuantizeBlock([]float64{-3, 0, 3})
	if got[0] != 0 || got[2] != 1023 {
		t.Errorf("block extremes wrong: %v", got)
	}
	if got[1] != 512 {
		t.Errorf("midscale code = %d, want 512", got[1])
	}
}

func TestSensingThroughput(t *testing.T) {
	// Eq. 6 worked example: 1024 ch × 10 b × 8 kHz = 81.92 Mbps.
	got := SensingThroughput(1024, 10, units.Kilohertz(8))
	if math.Abs(got.Mbps()-81.92) > 1e-9 {
		t.Errorf("T_sensing = %v Mbps, want 81.92", got.Mbps())
	}
}
