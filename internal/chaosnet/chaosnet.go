// Package chaosnet is deterministic network fault injection for the
// cluster control plane — the PR 3 fault-injection discipline
// (internal/fault) lifted from the radio link to HTTP and TCP. A
// Transport wraps any http.RoundTripper and injects the failures a
// distributed control plane actually meets: requests that vanish before
// reaching the peer, responses lost after the peer already acted (the
// case that makes idempotency keys load-bearing), bodies severed
// mid-read, added latency, and brief full partitions.
//
// Every decision is seeded and replayable. Draws are keyed by the
// operation's identity (method + path) and a per-operation attempt
// counter, so the fault history of one call sequence does not shift
// when unrelated traffic (health probes, status polls) interleaves with
// it, and a retry of the same operation advances to fresh draws instead
// of hitting the same verdict forever. Profiles scale with an intensity
// knob under common-random-number semantics, mirroring
// internal/fault.Profile: the same (seed, operation, attempt) consumes
// the same uniforms at every intensity, so a request that fails at
// intensity i also fails at every intensity ≥ i and degradation curves
// are monotone by construction, not by luck.
package chaosnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes a fault environment at unit intensity. The zero
// value injects nothing; Scale derives weaker environments for sweeps.
type Profile struct {
	// Drop is the probability a request vanishes before reaching the
	// peer — the peer never sees it, so a retry is always safe.
	Drop float64 `json:"drop"`
	// Reset is the probability the response is lost after the peer
	// fully processed the request — the side effect happened, the caller
	// cannot tell. Retries of non-idempotent operations under Reset are
	// exactly the duplicate-effect bug idempotency keys exist for.
	Reset float64 `json:"reset"`
	// Cut is the probability a response body is severed partway
	// through the read — a torn transfer the reader must detect.
	Cut float64 `json:"cut"`
	// Delay is the probability a request is held for a uniform draw in
	// [DelayMin, DelayMax] before being forwarded.
	Delay    float64       `json:"delay"`
	DelayMin time.Duration `json:"delay_min_ns"`
	DelayMax time.Duration `json:"delay_max_ns"`
	// Partition is the per-request onset probability of a full
	// partition lasting PartitionFor: every request in the window fails
	// immediately, the way a switch rebooting looks to its clients.
	Partition    float64       `json:"partition"`
	PartitionFor time.Duration `json:"partition_for_ns"`
}

// DefaultProfile returns a deliberately harsh unit-intensity
// environment — the stress point chaos sweeps scale down from.
func DefaultProfile() Profile {
	return Profile{
		Drop:         0.12,
		Reset:        0.10,
		Cut:          0.06,
		Delay:        0.20,
		DelayMin:     500 * time.Microsecond,
		DelayMax:     5 * time.Millisecond,
		Partition:    0.01,
		PartitionFor: 50 * time.Millisecond,
	}
}

// clamp01 bounds probabilities to [0, 1].
func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Scale returns the profile with every probability multiplied by
// intensity (clamped to [0, 1]); durations are kept. Scale(0) disables
// all injection, Scale(1) is the profile itself.
func (p Profile) Scale(intensity float64) Profile {
	if intensity < 0 {
		intensity = 0
	}
	out := p
	out.Drop = clamp01(p.Drop * intensity)
	out.Reset = clamp01(p.Reset * intensity)
	out.Cut = clamp01(p.Cut * intensity)
	out.Delay = clamp01(p.Delay * intensity)
	out.Partition = clamp01(p.Partition * intensity)
	return out
}

// Validate checks the profile's ranges.
func (p Profile) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"Drop", p.Drop}, {"Reset", p.Reset}, {"Cut", p.Cut},
		{"Delay", p.Delay}, {"Partition", p.Partition},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("chaosnet: %s = %g outside [0, 1]", pr.name, pr.v)
		}
	}
	if p.DelayMin < 0 || p.DelayMax < p.DelayMin {
		return fmt.Errorf("chaosnet: delay window [%v, %v] invalid", p.DelayMin, p.DelayMax)
	}
	if p.PartitionFor < 0 {
		return fmt.Errorf("chaosnet: PartitionFor %v negative", p.PartitionFor)
	}
	return nil
}

// Injected fault errors. All surface as transport-level errors (wrapped
// in *url.Error by http.Client), the shape real network failures take.
var (
	ErrDropped     = errors.New("chaosnet: request dropped before reaching the peer")
	ErrReset       = errors.New("chaosnet: connection reset before the response arrived")
	ErrCut         = errors.New("chaosnet: connection cut mid-body")
	ErrPartitioned = errors.New("chaosnet: network partitioned")
)

// Stats counts injected faults since the transport was created.
type Stats struct {
	Requests    int64 `json:"requests"`
	Drops       int64 `json:"drops"`
	Resets      int64 `json:"resets"`
	Cuts        int64 `json:"cuts"`
	Delays      int64 `json:"delays"`
	Partitioned int64 `json:"partitioned"` // requests failed inside a partition window (incl. onsets)
}

// splitmix64 advances a SplitMix64 state and returns the mixed output —
// the same finalizer the fleet's seed sharding uses, giving avalanche
// over nearby keys.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// draws is one decision's uniform variates, fully determined by
// (seed, operation key, attempt index) — the common-random-number
// substrate.
type draws struct {
	part, drop, reset, cut, delay, amount float64
}

// uniform maps one SplitMix64 output to [0, 1).
func uniform(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / (1 << 53)
}

// drawsFor derives the fixed-order uniforms for one (op, attempt).
func drawsFor(seed int64, op string, attempt uint64) draws {
	h := fnv.New64a()
	h.Write([]byte(op))
	state := uint64(seed) ^ h.Sum64() ^ (attempt+1)*0x9e3779b97f4a7c15
	return draws{
		part:   uniform(&state),
		drop:   uniform(&state),
		reset:  uniform(&state),
		cut:    uniform(&state),
		delay:  uniform(&state),
		amount: uniform(&state),
	}
}

// verdict is the decision drawsFor + a profile produce for one request.
type verdict struct {
	partitionOnset bool
	drop           bool
	reset          bool
	cut            bool
	delay          time.Duration
	cutFrac        float64 // fraction of the body delivered before the cut
}

// decide applies a scaled profile to a draw set. Exposed through
// Transport.decide for the determinism and CRN property tests.
func decide(p Profile, d draws) verdict {
	v := verdict{
		partitionOnset: d.part < p.Partition,
		drop:           d.drop < p.Drop,
		reset:          d.reset < p.Reset,
		cut:            d.cut < p.Cut,
		cutFrac:        d.amount,
	}
	if d.delay < p.Delay {
		v.delay = p.DelayMin + time.Duration(d.amount*float64(p.DelayMax-p.DelayMin))
	}
	return v
}

// Transport is a fault-injecting http.RoundTripper. The zero intensity
// passes every request through untouched (while still counting it), so
// a sweep's baseline point runs the exact same code path as its faulted
// points.
type Transport struct {
	inner http.RoundTripper
	prof  Profile
	seed  int64

	intensity atomicFloat
	partUntil atomic.Int64 // unix nanos until which the partition holds

	mu       sync.Mutex
	attempts map[string]uint64 // per-operation attempt counters

	requests    atomic.Int64
	drops       atomic.Int64
	resets      atomic.Int64
	cuts        atomic.Int64
	delays      atomic.Int64
	partitioned atomic.Int64
}

// atomicFloat is a float64 stored in an atomic.Uint64.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Store(v float64) { a.bits.Store(floatBits(v)) }
func (a *atomicFloat) Load() float64   { return floatFromBits(a.bits.Load()) }

// NewTransport wraps inner (nil = http.DefaultTransport) with fault
// injection from prof at the given seed. Intensity starts at 1; use
// SetIntensity to sweep or to gate injection around a run's phases.
func NewTransport(inner http.RoundTripper, prof Profile, seed int64) (*Transport, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	t := &Transport{
		inner:    inner,
		prof:     prof,
		seed:     seed,
		attempts: make(map[string]uint64),
	}
	t.intensity.Store(1)
	return t, nil
}

// SetIntensity rescales injection on the fly (clamped at 0). The draw
// streams are unaffected — common random numbers across intensities.
func (t *Transport) SetIntensity(x float64) {
	if x < 0 {
		x = 0
	}
	t.intensity.Store(x)
}

// Intensity returns the current intensity.
func (t *Transport) Intensity() float64 { return t.intensity.Load() }

// Stats returns the counters' current values.
func (t *Transport) Stats() Stats {
	return Stats{
		Requests:    t.requests.Load(),
		Drops:       t.drops.Load(),
		Resets:      t.resets.Load(),
		Cuts:        t.cuts.Load(),
		Delays:      t.delays.Load(),
		Partitioned: t.partitioned.Load(),
	}
}

// opKey is the operation identity draws are keyed by: method and path,
// without the query (retry loops vary query values like start_paused;
// the operation is the same).
func opKey(req *http.Request) string {
	return req.Method + " " + req.URL.Path
}

// nextAttempt returns and advances the operation's attempt counter.
func (t *Transport) nextAttempt(op string) uint64 {
	t.mu.Lock()
	n := t.attempts[op]
	t.attempts[op] = n + 1
	t.mu.Unlock()
	return n
}

// decide derives the verdict for one request at the current intensity.
func (t *Transport) decide(op string) verdict {
	d := drawsFor(t.seed, op, t.nextAttempt(op))
	return decide(t.prof.Scale(t.Intensity()), d)
}

// RoundTrip injects faults around the inner transport. Error order:
// an active partition beats everything; a partition onset opens the
// window and fails the request; drop fails before the peer is reached;
// delay holds the request; reset forwards the request and then loses
// the response; cut forwards and severs the body partway.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	t.requests.Add(1)
	now := time.Now()
	if now.UnixNano() < t.partUntil.Load() {
		t.partitioned.Add(1)
		return nil, ErrPartitioned
	}
	v := t.decide(opKey(req))
	if v.partitionOnset {
		t.partUntil.Store(now.Add(t.prof.PartitionFor).UnixNano())
		t.partitioned.Add(1)
		return nil, ErrPartitioned
	}
	if v.drop {
		t.drops.Add(1)
		return nil, ErrDropped
	}
	if v.delay > 0 {
		t.delays.Add(1)
		time.Sleep(v.delay)
	}
	if v.reset {
		// The peer processes the request in full; only the response is
		// lost. Draining the body makes "processed" unambiguous even for
		// streamed handlers.
		resp, err := inner.RoundTrip(req)
		if err == nil {
			drainClose(resp)
		}
		t.resets.Add(1)
		return nil, ErrReset
	}
	resp, err := inner.RoundTrip(req)
	if err != nil || !v.cut {
		return resp, err
	}
	t.cuts.Add(1)
	resp.Body = newCutBody(resp.Body, v.cutFrac, resp.ContentLength)
	return resp, nil
}
