package chaosnet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestScale mirrors fault.Profile.Scale semantics: probabilities scale
// and clamp, durations are untouched, Scale(0) disables everything.
func TestScale(t *testing.T) {
	p := DefaultProfile()
	zero := p.Scale(0)
	if zero.Drop != 0 || zero.Reset != 0 || zero.Cut != 0 || zero.Delay != 0 || zero.Partition != 0 {
		t.Fatalf("Scale(0) left probabilities: %+v", zero)
	}
	if zero.DelayMax != p.DelayMax || zero.PartitionFor != p.PartitionFor {
		t.Fatalf("Scale(0) changed durations: %+v", zero)
	}
	half := p.Scale(0.5)
	if half.Drop != p.Drop*0.5 || half.Partition != p.Partition*0.5 {
		t.Fatalf("Scale(0.5) wrong: %+v", half)
	}
	big := p.Scale(100)
	if big.Drop != 1 || big.Delay != 1 {
		t.Fatalf("Scale(100) should clamp to 1: %+v", big)
	}
	if neg := p.Scale(-3); neg.Drop != 0 {
		t.Fatalf("Scale(-3) should clamp to 0: %+v", neg)
	}
}

func TestValidate(t *testing.T) {
	good := DefaultProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
	bad := []Profile{
		{Drop: 1.5},
		{Reset: -0.1},
		{DelayMin: -time.Second},
		{DelayMin: time.Second, DelayMax: time.Millisecond},
		{PartitionFor: -time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad[%d] %+v validated", i, p)
		}
	}
}

// TestDrawsDeterministic: identical (seed, op, attempt) triples yield
// identical draws; changing any coordinate changes them.
func TestDrawsDeterministic(t *testing.T) {
	a := drawsFor(42, "POST /api/sessions/import", 3)
	b := drawsFor(42, "POST /api/sessions/import", 3)
	if a != b {
		t.Fatalf("same triple, different draws: %+v vs %+v", a, b)
	}
	if drawsFor(43, "POST /api/sessions/import", 3) == a {
		t.Fatal("seed change did not move draws")
	}
	if drawsFor(42, "GET /api/sessions/import", 3) == a {
		t.Fatal("op change did not move draws")
	}
	if drawsFor(42, "POST /api/sessions/import", 4) == a {
		t.Fatal("attempt change did not move draws")
	}
}

// TestCRNMonotone is the common-random-number property: a decision that
// triggers at intensity i triggers at every j ≥ i, so fault burdens are
// monotone in intensity draw-by-draw, not just in expectation.
func TestCRNMonotone(t *testing.T) {
	prof := DefaultProfile()
	intensities := []float64{0, 0.25, 0.5, 1, 2}
	for attempt := uint64(0); attempt < 2000; attempt++ {
		d := drawsFor(7, "POST /api/sessions/s000001/pause", attempt)
		prev := verdict{}
		for k, in := range intensities {
			v := decide(prof.Scale(in), d)
			if k > 0 {
				if prev.drop && !v.drop || prev.reset && !v.reset ||
					prev.cut && !v.cut || prev.partitionOnset && !v.partitionOnset {
					t.Fatalf("attempt %d: fault at intensity %g vanished at %g",
						attempt, intensities[k-1], in)
				}
			}
			prev = v
		}
		if z := decide(prof.Scale(0), d); z.drop || z.reset || z.cut || z.partitionOnset || z.delay != 0 {
			t.Fatalf("attempt %d: intensity 0 injected %+v", attempt, z)
		}
	}
}

// TestDecideRates sanity-checks the empirical trigger rates against the
// profile within loose tolerance — mis-scaled draws would blow this.
func TestDecideRates(t *testing.T) {
	prof := Profile{Drop: 0.3, Reset: 0.2, Cut: 0.1, Delay: 0.5, DelayMin: time.Millisecond, DelayMax: 2 * time.Millisecond}
	const n = 20000
	var drops, resets, cuts, delays int
	for i := uint64(0); i < n; i++ {
		v := decide(prof, drawsFor(99, "rates", i))
		if v.drop {
			drops++
		}
		if v.reset {
			resets++
		}
		if v.cut {
			cuts++
		}
		if v.delay > 0 {
			delays++
		}
	}
	check := func(name string, got int, want float64) {
		rate := float64(got) / n
		if rate < want-0.02 || rate > want+0.02 {
			t.Errorf("%s rate %.3f, want %.2f ± 0.02", name, rate, want)
		}
	}
	check("drop", drops, prof.Drop)
	check("reset", resets, prof.Reset)
	check("cut", cuts, prof.Cut)
	check("delay", delays, prof.Delay)
}

// TestTransportPassthrough: intensity 0 must be a perfect no-op wrapper.
func TestTransportPassthrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello")
	}))
	defer srv.Close()
	tr, err := NewTransport(nil, DefaultProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetIntensity(0)
	client := &http.Client{Transport: tr}
	for i := 0; i < 50; i++ {
		resp, err := client.Get(srv.URL + "/x")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || string(body) != "hello" {
			t.Fatalf("request %d: body %q err %v", i, body, err)
		}
	}
	if s := tr.Stats(); s.Requests != 50 || s.Drops+s.Resets+s.Cuts+s.Partitioned != 0 {
		t.Fatalf("intensity 0 injected faults: %+v", s)
	}
}

// TestTransportDropNeverReachesPeer: a dropped request must not hit the
// handler; a reset request must.
func TestTransportDropNeverReachesPeer(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	tr, err := NewTransport(nil, Profile{Drop: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	if _, err := client.Get(srv.URL + "/drop"); err == nil || !errors.Is(errUnwrap(err), ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if served != 0 {
		t.Fatalf("dropped request reached the peer %d times", served)
	}

	tr2, err := NewTransport(nil, Profile{Reset: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	client2 := &http.Client{Transport: tr2}
	if _, err := client2.Get(srv.URL + "/reset"); err == nil || !errors.Is(errUnwrap(err), ErrReset) {
		t.Fatalf("want ErrReset, got %v", err)
	}
	if served != 1 {
		t.Fatalf("reset request should reach the peer exactly once, served %d", served)
	}
}

// errUnwrap digs the injected sentinel out of http.Client's *url.Error.
func errUnwrap(err error) error {
	for {
		u := errors.Unwrap(err)
		if u == nil {
			return err
		}
		err = u
	}
}

// TestTransportCutTruncatesBody: the response arrives but the body read
// fails partway with ErrCut.
func TestTransportCutTruncatesBody(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		io.WriteString(w, payload)
	}))
	defer srv.Close()
	tr, err := NewTransport(nil, Profile{Cut: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL + "/cut")
	if err != nil {
		t.Fatalf("cut must not fail the round trip itself: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, ErrCut) {
		t.Fatalf("want ErrCut from body read, got err=%v body=%d bytes", err, len(body))
	}
	if len(body) >= len(payload) {
		t.Fatalf("cut delivered the whole body (%d bytes)", len(body))
	}
}

// TestTransportPartitionWindow: an onset fails subsequent requests
// until the window expires.
func TestTransportPartitionWindow(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	tr, err := NewTransport(nil, Profile{Partition: 1, PartitionFor: 60 * time.Millisecond}, 2)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("partition onset should fail the request")
	}
	// Inside the window every request fails regardless of draws.
	tr.SetIntensity(0)
	if _, err := client.Get(srv.URL); err == nil || !errors.Is(errUnwrap(err), ErrPartitioned) {
		t.Fatalf("inside window want ErrPartitioned, got %v", err)
	}
	time.Sleep(80 * time.Millisecond)
	if resp, err := client.Get(srv.URL); err != nil {
		t.Fatalf("after window: %v", err)
	} else {
		resp.Body.Close()
	}
}

// TestTransportDeterministicSequence: two transports with the same
// seed serve the same request sequence with identical fault outcomes.
func TestTransportDeterministicSequence(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	prof := Profile{Drop: 0.3, Reset: 0.2}
	run := func() []bool {
		tr, err := NewTransport(nil, prof, 77)
		if err != nil {
			t.Fatal(err)
		}
		client := &http.Client{Transport: tr}
		var fates []bool
		paths := []string{"/a", "/b", "/a", "/c", "/a", "/b"}
		for i := 0; i < 40; i++ {
			resp, err := client.Get(srv.URL + paths[i%len(paths)])
			if err == nil {
				resp.Body.Close()
			}
			fates = append(fates, err == nil)
		}
		return fates
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: fates diverge (%v vs %v)", i, a[i], b[i])
		}
	}
}

// TestTransportOpIsolation: interleaving unrelated traffic must not
// shift the draw stream of a different operation.
func TestTransportOpIsolation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	prof := Profile{Drop: 0.4}
	fates := func(noise int) []bool {
		tr, err := NewTransport(nil, prof, 31)
		if err != nil {
			t.Fatal(err)
		}
		client := &http.Client{Transport: tr}
		var out []bool
		for i := 0; i < 20; i++ {
			for j := 0; j < noise; j++ {
				if resp, err := client.Get(srv.URL + "/noise"); err == nil {
					resp.Body.Close()
				}
			}
			resp, err := client.Get(srv.URL + "/op")
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	quiet, noisy := fates(0), fates(3)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("op fate %d shifted under noise (%v vs %v)", i, quiet[i], noisy[i])
		}
	}
}
