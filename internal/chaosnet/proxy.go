package chaosnet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting TCP forwarder for the data plane: dial the
// proxy's Addr instead of the upstream and connections are refused,
// delayed, or severed after a drawn byte budget according to the
// profile. Decisions are keyed by the connection index, so the same
// seed replays the same per-connection fate regardless of wall clock.
type Proxy struct {
	upstream string
	prof     Profile
	seed     int64

	ln        net.Listener
	intensity atomicFloat
	connIdx   atomic.Uint64
	closed    atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	refused atomic.Int64
	severed atomic.Int64
}

// NewProxy listens on addr (e.g. "127.0.0.1:0") and forwards accepted
// connections to upstream through the fault profile. Intensity starts
// at 1.
func NewProxy(addr, upstream string, prof Profile, seed int64) (*Proxy, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		upstream: upstream,
		prof:     prof,
		seed:     seed,
		ln:       ln,
		conns:    make(map[net.Conn]struct{}),
	}
	p.intensity.Store(1)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address, for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetIntensity rescales injection for connections accepted from now on.
func (p *Proxy) SetIntensity(x float64) {
	if x < 0 {
		x = 0
	}
	p.intensity.Store(x)
}

// Refused and Severed report the faults injected so far.
func (p *Proxy) Refused() int64 { return p.refused.Load() }
func (p *Proxy) Severed() int64 { return p.severed.Load() }

// Close stops accepting and tears down every live connection.
func (p *Proxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		idx := p.connIdx.Add(1) - 1
		p.wg.Add(1)
		go p.serve(conn, idx)
	}
}

// serve applies one connection's fate. Draw roles are reused from the
// HTTP transport: drop refuses the connection outright, delay holds the
// accept before forwarding, cut severs both directions after a byte
// budget drawn over severBudget bytes of downstream traffic.
const severBudget = 256 << 10

func (p *Proxy) serve(conn net.Conn, idx uint64) {
	defer p.wg.Done()
	d := drawsFor(p.seed, "proxy", idx)
	v := decide(p.prof.Scale(p.intensity.Load()), d)
	if v.drop || v.partitionOnset {
		p.refused.Add(1)
		conn.Close()
		return
	}
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	up, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		conn.Close()
		return
	}
	p.track(conn, up)
	defer p.untrack(conn, up)
	defer conn.Close()
	defer up.Close()

	var limit int64 = -1
	if v.cut {
		limit = int64(v.cutFrac * severBudget)
		if limit < 1 {
			limit = 1
		}
	}
	done := make(chan struct{}, 2)
	// Client → upstream is never the limited direction: subscriptions
	// send one handshake line and then receive; the cut belongs on the
	// downstream byte stream.
	go func() {
		io.Copy(up, conn)
		done <- struct{}{}
	}()
	go func() {
		if limit >= 0 {
			io.CopyN(conn, up, limit)
			p.severed.Add(1)
		} else {
			io.Copy(conn, up)
		}
		done <- struct{}{}
	}()
	<-done
	// Closing both ends (deferred) unblocks the other copy.
}

func (p *Proxy) track(conns ...net.Conn) {
	p.mu.Lock()
	for _, c := range conns {
		p.conns[c] = struct{}{}
	}
	p.mu.Unlock()
}

func (p *Proxy) untrack(conns ...net.Conn) {
	p.mu.Lock()
	for _, c := range conns {
		delete(p.conns, c)
	}
	p.mu.Unlock()
}
