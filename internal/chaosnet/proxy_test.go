package chaosnet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoUpstream answers each line with "echo: <line>" and, on "blast",
// streams a large payload — enough downstream traffic to trip a sever.
func echoUpstream(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					line := sc.Text()
					if line == "blast" {
						big := strings.Repeat("y", 1<<20)
						io.WriteString(c, big)
						return
					}
					fmt.Fprintf(c, "echo: %s\n", line)
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestProxyPassthrough: intensity 0 forwards cleanly in both directions.
func TestProxyPassthrough(t *testing.T) {
	up, stop := echoUpstream(t)
	defer stop()
	p, err := NewProxy("127.0.0.1:0", up, DefaultProfile(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetIntensity(0)

	for i := 0; i < 10; i++ {
		conn, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		fmt.Fprintf(conn, "ping %d\n", i)
		reply, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err != nil || reply != fmt.Sprintf("echo: ping %d\n", i) {
			t.Fatalf("conn %d: reply %q err %v", i, reply, err)
		}
	}
	if p.Refused() != 0 || p.Severed() != 0 {
		t.Fatalf("intensity 0 injected: refused=%d severed=%d", p.Refused(), p.Severed())
	}
}

// TestProxyRefuse: Drop=1 makes every connection die before any byte.
func TestProxyRefuse(t *testing.T) {
	up, stop := echoUpstream(t)
	defer stop()
	p, err := NewProxy("127.0.0.1:0", up, Profile{Drop: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		// Acceptable: close raced the dial.
		return
	}
	defer conn.Close()
	fmt.Fprintln(conn, "ping")
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(conn).ReadString('\n'); err == nil {
		t.Fatal("refused connection still delivered a reply")
	}
	if p.Refused() == 0 {
		t.Fatal("refusal not counted")
	}
}

// TestProxySever: Cut=1 delivers only a prefix of a large downstream
// payload before the connection dies.
func TestProxySever(t *testing.T) {
	up, stop := echoUpstream(t)
	defer stop()
	p, err := NewProxy("127.0.0.1:0", up, Profile{Cut: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintln(conn, "blast")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, _ := io.Copy(io.Discard, conn)
	if n >= 1<<20 {
		t.Fatalf("sever delivered the whole 1 MiB payload (%d bytes)", n)
	}
	if p.Severed() == 0 {
		t.Fatal("sever not counted")
	}
}

// TestProxyDeterministicFates: same seed → same per-connection-index
// fates across proxy instances.
func TestProxyDeterministicFates(t *testing.T) {
	up, stop := echoUpstream(t)
	defer stop()
	prof := Profile{Drop: 0.5}
	run := func() []bool {
		p, err := NewProxy("127.0.0.1:0", up, prof, 123)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		var fates []bool
		for i := 0; i < 20; i++ {
			conn, err := net.Dial("tcp", p.Addr())
			if err != nil {
				fates = append(fates, false)
				continue
			}
			fmt.Fprintln(conn, "ping")
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			_, rerr := bufio.NewReader(conn).ReadString('\n')
			conn.Close()
			fates = append(fates, rerr == nil)
		}
		return fates
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("connection %d: fates diverge (%v vs %v)", i, a[i], b[i])
		}
	}
}
