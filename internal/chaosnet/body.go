package chaosnet

import (
	"io"
	"math"
	"net/http"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// drainClose consumes and closes a response body so the injected reset
// still lets the peer's handler run to completion and the underlying
// connection be reused.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// cutBody delivers a prefix of the wrapped body and then fails the
// read with ErrCut — a transfer severed partway through.
type cutBody struct {
	inner     io.ReadCloser
	remaining int64
}

// newCutBody budgets frac of the declared content length (or of a
// 64 KiB default when the length is unknown/chunked), with a floor of
// one byte so "cut" never degenerates into a clean empty read, and a
// ceiling one byte short of a known length so it always truncates.
func newCutBody(inner io.ReadCloser, frac float64, contentLength int64) io.ReadCloser {
	total := contentLength
	if total <= 0 {
		total = 64 << 10
	}
	budget := int64(frac * float64(total))
	if contentLength > 0 && budget >= contentLength {
		budget = contentLength - 1
	}
	if budget < 1 {
		budget = 1
	}
	return &cutBody{inner: inner, remaining: budget}
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, ErrCut
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.inner.Read(p)
	c.remaining -= int64(n)
	if err == io.EOF {
		// The body was shorter than the budget: the cut lands after the
		// last byte, which a framed reader must still treat as torn.
		return n, ErrCut
	}
	return n, err
}

func (c *cutBody) Close() error { return c.inner.Close() }
