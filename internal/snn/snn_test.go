package snn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mindful/internal/mac"
)

func TestLIFValidation(t *testing.T) {
	bad := []LIF{
		{Leak: 0, Threshold: 1},
		{Leak: 1.5, Threshold: 1},
		{Leak: 0.9, Threshold: 0, Reset: 0},
		{Leak: 0.9, Threshold: 1, RefractorySteps: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should fail", i)
		}
	}
	if err := DefaultLIF().Validate(); err != nil {
		t.Errorf("default params rejected: %v", err)
	}
}

func TestSingleNeuronIntegratesAndFires(t *testing.T) {
	// One neuron, one synapse of weight 0.4, threshold 1, no leak decay
	// loss (leak 1): fires on the 3rd input spike (0.4+0.4+0.4 ≥ 1... the
	// check happens after accumulation, so 3 spikes → 1.2 ≥ 1).
	l, err := NewLayer([][]float64{{0.4}}, LIF{Leak: 1, Threshold: 1, Reset: 0})
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	for step := 0; step < 6; step++ {
		out, ev, err := l.Step([]byte{1})
		if err != nil {
			t.Fatal(err)
		}
		if ev != 1 {
			t.Fatalf("step %d events = %d, want 1", step, ev)
		}
		if out[0] == 1 {
			fired = append(fired, step)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Errorf("fired at %v, want [2 5]", fired)
	}
}

func TestLeakPreventsFiring(t *testing.T) {
	// Strong leak with sub-threshold drive: never fires.
	l, err := NewLayer([][]float64{{0.3}}, LIF{Leak: 0.5, Threshold: 1, Reset: 0})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 100; step++ {
		out, _, err := l.Step([]byte{1})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] == 1 {
			t.Fatalf("leaky neuron fired at step %d", step)
		}
	}
}

func TestRefractoryPeriod(t *testing.T) {
	// Huge weight: would fire every step without refractory hold-off.
	l, err := NewLayer([][]float64{{2}}, LIF{Leak: 1, Threshold: 1, Reset: 0, RefractorySteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	var pattern []byte
	for step := 0; step < 8; step++ {
		out, _, err := l.Step([]byte{1})
		if err != nil {
			t.Fatal(err)
		}
		pattern = append(pattern, out[0])
	}
	// Fire, then 3 silent steps, repeating.
	want := []byte{1, 0, 0, 0, 1, 0, 0, 0}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("pattern = %v, want %v", pattern, want)
		}
	}
}

func TestEventCountingIsEventDriven(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := RandLayer(rng, 10, 5, DefaultLIF())
	// No input spikes → zero events.
	_, ev, err := l.Step(make([]byte, 10))
	if err != nil {
		t.Fatal(err)
	}
	if ev != 0 {
		t.Errorf("silent input produced %d events", ev)
	}
	// k active inputs → k × Out events.
	in := make([]byte, 10)
	in[2], in[7] = 1, 1
	_, ev, err = l.Step(in)
	if err != nil {
		t.Fatal(err)
	}
	if ev != 2*5 {
		t.Errorf("events = %d, want 10", ev)
	}
}

func TestNetworkPropagationAndAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n, err := NewNetwork(
		RandLayer(rng, 16, 8, DefaultLIF()),
		RandLayer(rng, 8, 4, DefaultLIF()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if n.In() != 16 || n.Out() != 4 {
		t.Fatalf("dims = %d→%d", n.In(), n.Out())
	}
	if n.Synapses() != 16*8+8*4 {
		t.Errorf("synapses = %d", n.Synapses())
	}
	enc, err := NewPoissonEncoder(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, 16)
	for i := range values {
		values[i] = 0.8
	}
	for step := 0; step < 400; step++ {
		if _, err := n.Step(enc.Encode(values)); err != nil {
			t.Fatal(err)
		}
	}
	if n.Steps() != 400 {
		t.Errorf("steps = %d", n.Steps())
	}
	if n.SynapticEvents() == 0 {
		t.Errorf("no synaptic events despite active input")
	}
	// Activity factor strictly below 1: the event-driven saving.
	if af := n.ActivityFactor(); af <= 0 || af >= 1 {
		t.Errorf("activity factor = %v, want (0, 1)", af)
	}
	rates := n.Rates()
	active := 0
	for _, r := range rates {
		if r > 0 {
			active++
		}
	}
	if active == 0 {
		t.Errorf("no output activity: %v", rates)
	}
	n.Reset()
	if n.Steps() != 0 || n.SynapticEvents() != 0 {
		t.Errorf("Reset did not clear accounting")
	}
}

func TestNetworkDiscriminatesInputPatterns(t *testing.T) {
	// A hand-built two-output network where output 0 listens to the first
	// input group and output 1 to the second: rate decoding must tell the
	// patterns apart.
	w := [][]float64{
		{0.6, 0.6, 0, 0},
		{0, 0, 0.6, 0.6},
	}
	l, err := NewLayer(w, LIF{Leak: 0.9, Threshold: 1, Reset: 0, RefractorySteps: 0})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(l)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewPoissonEncoder(2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	drive := func(values []float64, steps int) []float64 {
		n.Reset()
		for s := 0; s < steps; s++ {
			if _, err := n.Step(enc.Encode(values)); err != nil {
				t.Fatal(err)
			}
		}
		return n.Rates()
	}
	groupA := drive([]float64{1, 1, 0, 0}, 500)
	if groupA[0] <= 2*groupA[1] {
		t.Errorf("pattern A rates = %v, want output 0 dominant", groupA)
	}
	groupB := drive([]float64{0, 0, 1, 1}, 500)
	if groupB[1] <= 2*groupB[0] {
		t.Errorf("pattern B rates = %v, want output 1 dominant", groupB)
	}
}

func TestEnergyModelAgainstDenseMLP(t *testing.T) {
	// The headline SNN claim: at low input activity, the event-driven
	// cost beats the dense MAC cost by roughly (activity × AC/MAC ratio).
	rng := rand.New(rand.NewSource(6))
	n, err := NewNetwork(RandLayer(rng, 64, 32, DefaultLIF()))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewPoissonEncoder(3, 0.1) // sparse input: ~10% activity
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, 64)
	for i := range values {
		values[i] = 1
	}
	const steps = 1000
	for s := 0; s < steps; s++ {
		if _, err := n.Step(enc.Encode(values)); err != nil {
			t.Fatal(err)
		}
	}
	em := EnergyFromMAC(mac.NanGate45.EnergyPerStep())
	seconds := 1.0
	snnPower := em.Power(n.SynapticEvents(), seconds)
	// The dense MLP executes every synapse every step as a full MAC.
	denseJoules := float64(n.DenseEquivalentEvents()) * mac.NanGate45.EnergyPerStep().Joules()
	densePower := denseJoules / seconds
	if snnPower.Watts() >= densePower*0.2 {
		t.Errorf("SNN power %v not well below dense %v W at 10%% activity", snnPower, densePower)
	}
	if af := n.ActivityFactor(); math.Abs(af-0.1) > 0.03 {
		t.Errorf("activity factor = %v, want ≈0.10", af)
	}
}

func TestPoissonEncoderRates(t *testing.T) {
	enc, err := NewPoissonEncoder(9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if enc.Encode([]float64{0.5})[0] == 1 {
			count++
		}
	}
	got := float64(count) / trials
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("rate at value 0.5 = %v, want ≈0.25", got)
	}
	// Clamping.
	s := enc.Encode([]float64{-1, 2})
	if s[0] != 0 {
		t.Errorf("negative value should never spike immediately... got %v", s[0])
	}
	if _, err := NewPoissonEncoder(1, 0); err == nil {
		t.Errorf("zero max rate should fail")
	}
	if _, err := NewPoissonEncoder(1, 1.5); err == nil {
		t.Errorf("max rate above 1 should fail")
	}
}

func TestActivityMonotoneProperty(t *testing.T) {
	// Higher input activity → more synaptic events.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func() *Network {
			r := rand.New(rand.NewSource(42))
			n, err := NewNetwork(RandLayer(r, 32, 16, DefaultLIF()))
			if err != nil {
				return nil
			}
			return n
		}
		lowNet, highNet := build(), build()
		if lowNet == nil || highNet == nil {
			return false
		}
		encLow, err1 := NewPoissonEncoder(rng.Int63(), 0.05)
		encHigh, err2 := NewPoissonEncoder(rng.Int63(), 0.6)
		if err1 != nil || err2 != nil {
			return false
		}
		values := make([]float64, 32)
		for i := range values {
			values[i] = 1
		}
		for s := 0; s < 200; s++ {
			if _, err := lowNet.Step(encLow.Encode(values)); err != nil {
				return false
			}
			if _, err := highNet.Step(encHigh.Encode(values)); err != nil {
				return false
			}
		}
		return lowNet.SynapticEvents() < highNet.SynapticEvents()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewLayer(nil, DefaultLIF()); err == nil {
		t.Errorf("empty weights should fail")
	}
	if _, err := NewLayer([][]float64{{1, 2}, {1}}, DefaultLIF()); err == nil {
		t.Errorf("ragged weights should fail")
	}
	if _, err := NewLayer([][]float64{{1}}, LIF{Leak: 0, Threshold: 1}); err == nil {
		t.Errorf("bad params should fail")
	}
	if _, err := NewNetwork(); err == nil {
		t.Errorf("empty network should fail")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewNetwork(RandLayer(rng, 4, 3, DefaultLIF()), RandLayer(rng, 5, 2, DefaultLIF())); err == nil {
		t.Errorf("mismatched layers should fail")
	}
	l := RandLayer(rng, 4, 2, DefaultLIF())
	if _, _, err := l.Step(make([]byte, 3)); err == nil {
		t.Errorf("wrong input length should fail")
	}
}

func TestEnergyModelEdges(t *testing.T) {
	em := EnergyFromMAC(mac.NanGate45.EnergyPerStep())
	if em.Power(100, 0) != 0 {
		t.Errorf("zero duration should give zero power")
	}
	if em.PerEvent.Joules() >= mac.NanGate45.EnergyPerStep().Joules() {
		t.Errorf("accumulate must cost less than a full MAC")
	}
	rng := rand.New(rand.NewSource(2))
	n, _ := NewNetwork(RandLayer(rng, 4, 2, DefaultLIF()))
	if n.ActivityFactor() != 0 {
		t.Errorf("fresh network activity factor should be 0")
	}
}
