// Package snn implements leaky integrate-and-fire spiking neural networks,
// the computation class the paper's related work (Hueber et al.) finds
// attractive for power-constrained BCIs and that Section 7 names as the
// planned extension of the MINDFUL analysis.
//
// The power story differs fundamentally from DNNs: an SNN layer performs
// accumulate-only synaptic operations, and only for input spikes that
// actually occur. The package therefore counts synaptic events exactly
// during simulation and prices them per-event, so the framework can ask:
// below which input activity does an SNN beat the MAC lower bound of an
// equivalent MLP?
package snn

import (
	"fmt"
	"math/rand"

	"mindful/internal/units"
)

// LIF holds the shared neuron parameters of a layer: a discrete-time leaky
// integrate-and-fire model
//
//	v[t+1] = leak·v[t] + I[t];  spike & reset when v ≥ threshold
type LIF struct {
	// Leak is the per-step membrane decay in (0, 1].
	Leak float64
	// Threshold is the firing threshold.
	Threshold float64
	// Reset is the post-spike membrane value.
	Reset float64
	// RefractorySteps suppresses integration after a spike.
	RefractorySteps int
}

// DefaultLIF returns standard parameters (decay 0.9, threshold 1).
func DefaultLIF() LIF {
	return LIF{Leak: 0.9, Threshold: 1.0, Reset: 0, RefractorySteps: 2}
}

// Validate checks the parameters.
func (p LIF) Validate() error {
	if p.Leak <= 0 || p.Leak > 1 {
		return fmt.Errorf("snn: leak %g outside (0, 1]", p.Leak)
	}
	if p.Threshold <= p.Reset {
		return fmt.Errorf("snn: threshold %g not above reset %g", p.Threshold, p.Reset)
	}
	if p.RefractorySteps < 0 {
		return fmt.Errorf("snn: negative refractory period")
	}
	return nil
}

// Layer is one fully connected spiking layer.
type Layer struct {
	// W is Out×In synaptic weights.
	W [][]float64
	// Params are the layer's neuron parameters.
	Params LIF

	v    []float64
	hold []int
}

// NewLayer builds a layer from a rectangular weight matrix.
func NewLayer(w [][]float64, p LIF) (*Layer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, fmt.Errorf("snn: empty weight matrix")
	}
	for i, row := range w {
		if len(row) != len(w[0]) {
			return nil, fmt.Errorf("snn: ragged weights at row %d", i)
		}
	}
	return &Layer{W: w, Params: p, v: make([]float64, len(w)), hold: make([]int, len(w))}, nil
}

// RandLayer builds a layer with positive random weights scaled so that a
// fully active input drives neurons past threshold within a few steps.
func RandLayer(rng *rand.Rand, in, out int, p LIF) *Layer {
	w := make([][]float64, out)
	scale := 4 * p.Threshold / float64(in)
	for o := range w {
		row := make([]float64, in)
		for i := range row {
			row[i] = rng.Float64() * scale
		}
		w[o] = row
	}
	l, err := NewLayer(w, p)
	if err != nil {
		panic(err) // construction is shape-correct
	}
	return l
}

// In and Out report the layer dimensions.
func (l *Layer) In() int  { return len(l.W[0]) }
func (l *Layer) Out() int { return len(l.W) }

// Step advances one timestep: spikes is the binary input vector. It
// returns the output spike vector and the number of synaptic accumulate
// events performed (nnz(spikes) × Out — the event-driven cost).
func (l *Layer) Step(spikes []byte) ([]byte, int, error) {
	if len(spikes) != l.In() {
		return nil, 0, fmt.Errorf("snn: input length %d != %d", len(spikes), l.In())
	}
	events := 0
	// Event-driven accumulation: only active inputs touch the synapses.
	for i, s := range spikes {
		if s == 0 {
			continue
		}
		for o := range l.W {
			l.v[o] += l.W[o][i]
		}
		events += l.Out()
	}
	out := make([]byte, l.Out())
	for o := range l.v {
		if l.hold[o] > 0 {
			l.hold[o]--
			l.v[o] = l.Params.Reset
			continue
		}
		if l.v[o] >= l.Params.Threshold {
			out[o] = 1
			l.v[o] = l.Params.Reset
			l.hold[o] = l.Params.RefractorySteps
			continue
		}
		l.v[o] *= l.Params.Leak
	}
	return out, events, nil
}

// Reset clears membrane state.
func (l *Layer) Reset() {
	for i := range l.v {
		l.v[i] = 0
		l.hold[i] = 0
	}
}

// Network is a feed-forward stack of spiking layers.
type Network struct {
	Layers []*Layer

	steps  int64
	events int64
	counts []int64 // output spike counts since last ResetCounts
}

// NewNetwork validates layer compatibility.
func NewNetwork(layers ...*Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("snn: network needs at least one layer")
	}
	for i := 1; i < len(layers); i++ {
		if layers[i].In() != layers[i-1].Out() {
			return nil, fmt.Errorf("snn: layer %d input %d != layer %d output %d",
				i, layers[i].In(), i-1, layers[i-1].Out())
		}
	}
	last := layers[len(layers)-1]
	return &Network{Layers: layers, counts: make([]int64, last.Out())}, nil
}

// In and Out report the network dimensions.
func (n *Network) In() int  { return n.Layers[0].In() }
func (n *Network) Out() int { return n.Layers[len(n.Layers)-1].Out() }

// Step propagates one timestep of input spikes through all layers.
func (n *Network) Step(spikes []byte) ([]byte, error) {
	cur := spikes
	for i, l := range n.Layers {
		out, ev, err := l.Step(cur)
		if err != nil {
			return nil, fmt.Errorf("snn: layer %d: %w", i, err)
		}
		n.events += int64(ev)
		cur = out
	}
	for i, s := range cur {
		if s != 0 {
			n.counts[i]++
		}
	}
	n.steps++
	return cur, nil
}

// Steps and SynapticEvents report the accounting since construction.
func (n *Network) Steps() int64          { return n.steps }
func (n *Network) SynapticEvents() int64 { return n.events }

// Rates returns per-output spike rates (spikes per step) since the last
// ResetCounts.
func (n *Network) Rates() []float64 {
	out := make([]float64, len(n.counts))
	if n.steps == 0 {
		return out
	}
	for i, c := range n.counts {
		out[i] = float64(c) / float64(n.steps)
	}
	return out
}

// ResetCounts zeroes rate counters and step/event accounting while keeping
// membrane state.
func (n *Network) ResetCounts() {
	n.steps, n.events = 0, 0
	for i := range n.counts {
		n.counts[i] = 0
	}
}

// Reset clears all state.
func (n *Network) Reset() {
	n.ResetCounts()
	for _, l := range n.Layers {
		l.Reset()
	}
}

// Synapses returns the total synaptic weight count — the dense-equivalent
// workload size.
func (n *Network) Synapses() int {
	t := 0
	for _, l := range n.Layers {
		t += l.In() * l.Out()
	}
	return t
}

// PoissonEncoder converts analog values in [0, 1] into spike trains whose
// rates are proportional to the values.
type PoissonEncoder struct {
	rng *rand.Rand
	// MaxRate is the spike probability per step at input 1.0.
	MaxRate float64
}

// NewPoissonEncoder returns a seeded encoder.
func NewPoissonEncoder(seed int64, maxRate float64) (*PoissonEncoder, error) {
	if maxRate <= 0 || maxRate > 1 {
		return nil, fmt.Errorf("snn: max rate %g outside (0, 1]", maxRate)
	}
	return &PoissonEncoder{rng: rand.New(rand.NewSource(seed)), MaxRate: maxRate}, nil
}

// Encode produces one timestep of spikes for the value vector (values are
// clamped to [0, 1]).
func (e *PoissonEncoder) Encode(values []float64) []byte {
	out := make([]byte, len(values))
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		if e.rng.Float64() < v*e.MaxRate {
			out[i] = 1
		}
	}
	return out
}

// EnergyModel prices synaptic events. An accumulate-only synaptic op costs
// a fraction of a full multiply-accumulate; 0.4 is a representative ratio
// for 8-bit datapaths.
type EnergyModel struct {
	// PerEvent is the energy of one synaptic accumulate.
	PerEvent units.Energy
}

// ACOverMACRatio is the default accumulate/multiply-accumulate energy
// ratio.
const ACOverMACRatio = 0.4

// EnergyFromMAC derives the synaptic event energy from a MAC step energy.
func EnergyFromMAC(macStep units.Energy) EnergyModel {
	return EnergyModel{PerEvent: units.Energy(macStep.Joules() * ACOverMACRatio)}
}

// Power returns the average power of a network that executed events
// synaptic ops over the given duration in seconds.
func (m EnergyModel) Power(events int64, seconds float64) units.Power {
	if seconds <= 0 {
		return 0
	}
	return units.Power(float64(events) * m.PerEvent.Joules() / seconds)
}

// DenseEquivalentEvents returns the events an equivalent dense (MAC-based)
// network would execute over the same steps: every synapse, every step.
func (n *Network) DenseEquivalentEvents() int64 {
	return n.steps * int64(n.Synapses())
}

// ActivityFactor returns the fraction of dense work actually performed —
// the SNN's headline advantage. 1.0 means no sparsity benefit.
func (n *Network) ActivityFactor() float64 {
	dense := n.DenseEquivalentEvents()
	if dense == 0 {
		return 0
	}
	return float64(n.events) / float64(dense)
}
