package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugMux returns an http.ServeMux exposing the observer:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON-lines metrics snapshot
//	/trace         JSON-lines span dump
//	/events        JSON-lines flight-recorder event dump
//	/debug/vars    expvar (cmdline, memstats, …)
//	/debug/pprof/  runtime profiling endpoints
func NewDebugMux(o *Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if o != nil {
			_ = o.Metrics.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if o != nil {
			_ = o.Metrics.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if o != nil {
			_ = o.Tracer.WriteJSONL(w)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if o != nil {
			_ = o.Events.WriteJSONL(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug listener on addr (e.g. "localhost:6060" or
// ":0" for an ephemeral port) and serves NewDebugMux in a goroutine. It
// returns the bound address and a function that stops the server
// gracefully — in-flight scrapes get up to five seconds to finish.
func ServeDebug(addr string, o *Observer) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(o)}
	go func() { _ = srv.Serve(ln) }()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
	return ln.Addr().String(), stop, nil
}
