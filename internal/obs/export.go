package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound (+Inf for the last).
	UpperBound float64
	// Count is the cumulative number of observations ≤ UpperBound.
	Count int64
}

// Sample is one exported metric instrument.
type Sample struct {
	Name   string
	Type   string // "counter", "gauge" or "histogram"
	Help   string
	Labels []Label
	// Value holds the counter or gauge reading.
	Value float64
	// Buckets, Sum and Count hold the histogram reading.
	Buckets []BucketCount
	Sum     float64
	Count   int64
}

// Snapshot returns every instrument's current reading, sorted by family
// name then label key. Safe on a nil receiver (returns nil).
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Sample
	for _, name := range names {
		f := r.families[name]
		keys := make([]string, 0, len(f.byLabel))
		for k := range f.byLabel {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := Sample{Name: name, Type: f.kind.String(), Help: f.help}
			switch inst := f.byLabel[k].(type) {
			case *Counter:
				s.Labels = inst.labels
				s.Value = float64(inst.Value())
			case *Gauge:
				s.Labels = inst.labels
				s.Value = inst.Value()
			case *Histogram:
				s.Labels = inst.labels
				s.Sum = inst.Sum()
				s.Count = inst.Count()
				cum := int64(0)
				s.Buckets = make([]BucketCount, 0, len(inst.bounds)+1)
				for i, ub := range inst.bounds {
					cum += inst.counts[i].Load()
					s.Buckets = append(s.Buckets, BucketCount{UpperBound: ub, Count: cum})
				}
				cum += inst.counts[len(inst.bounds)].Load()
				s.Buckets = append(s.Buckets, BucketCount{UpperBound: math.Inf(1), Count: cum})
			}
			out = append(out, s)
		}
	}
	return out
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders {k="v",…} with an optional extra label appended.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat formats a value for the text exposition (integers stay
// integral; +Inf becomes "+Inf").
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format (version 0.0.4). Safe on a nil receiver.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastName {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
				return err
			}
			lastName = s.Name
		}
		var err error
		switch s.Type {
		case "histogram":
			for _, b := range s.Buckets {
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name,
					promLabels(s.Labels, Label{Key: "le", Value: promFloat(b.UpperBound)}), b.Count); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels), s.Count)
		default:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// jsonSample is the JSONL wire form of one Sample.
type jsonSample struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Count   *int64            `json:"count,omitempty"`
}

type jsonBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// WriteJSONL writes one JSON object per instrument, one per line. Safe on
// a nil receiver.
func (r *Registry) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range r.Snapshot() {
		js := jsonSample{Name: s.Name, Type: s.Type}
		if len(s.Labels) > 0 {
			js.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				js.Labels[l.Key] = l.Value
			}
		}
		if s.Type == "histogram" {
			sum, count := s.Sum, s.Count
			js.Sum, js.Count = &sum, &count
			for _, b := range s.Buckets {
				js.Buckets = append(js.Buckets, jsonBucket{LE: promFloat(b.UpperBound), Count: b.Count})
			}
		} else {
			v := s.Value
			js.Value = &v
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return nil
}

// jsonSpan is the JSONL wire form of one Span.
type jsonSpan struct {
	ID      uint64             `json:"id"`
	Parent  uint64             `json:"parent,omitempty"`
	Name    string             `json:"name"`
	StartNS int64              `json:"start_ns"`
	EndNS   int64              `json:"end_ns,omitempty"`
	DurNS   int64              `json:"dur_ns,omitempty"`
	Attrs   map[string]float64 `json:"attrs,omitempty"`
}

// WriteJSONL writes the retained spans as JSON lines, oldest first. Safe
// on a nil receiver.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Snapshot() {
		js := jsonSpan{ID: s.ID, Parent: s.Parent, Name: s.Name, StartNS: s.Start, EndNS: s.End}
		if s.End != 0 {
			js.DurNS = s.End - s.Start
		}
		if s.NAttrs > 0 {
			js.Attrs = make(map[string]float64, s.NAttrs)
			for i := 0; i < s.NAttrs; i++ {
				js.Attrs[s.Attrs[i].Key] = s.Attrs[i].Val
			}
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return nil
}
