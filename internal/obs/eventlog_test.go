package obs

import (
	"strings"
	"sync"
	"testing"
	"unicode/utf8"
)

// stubClock returns a deterministic clock advancing 50ns per call.
func stubClock() func() int64 {
	now := int64(0)
	return func() int64 { now += 50; return now }
}

func TestEventLogBasics(t *testing.T) {
	l := NewEventLog(8)
	l.SetClock(stubClock())
	seq := l.Record("session_create", "s-1", "kalman",
		EventAttr{Key: "implants", Val: 4})
	if seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	if seq = l.Record("session_pause", "s-1", ""); seq != 2 {
		t.Fatalf("second seq = %d, want 2", seq)
	}
	evs := l.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("snapshot has %d events, want 2", len(evs))
	}
	if evs[0].Type != "session_create" || evs[0].Subject != "s-1" || evs[0].Detail != "kalman" {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[0].TimeNs != 50 || evs[1].TimeNs != 100 {
		t.Errorf("timestamps = %d, %d, want 50, 100", evs[0].TimeNs, evs[1].TimeNs)
	}
	if evs[0].NAttrs != 1 || evs[0].Attrs[0] != (EventAttr{Key: "implants", Val: 4}) {
		t.Errorf("attrs = %v (n=%d)", evs[0].Attrs, evs[0].NAttrs)
	}
	if l.Recorded() != 2 || l.Dropped() != 0 {
		t.Errorf("recorded/dropped = %d/%d, want 2/0", l.Recorded(), l.Dropped())
	}
}

func TestEventLogEviction(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Record("tick", "", "")
	}
	evs := l.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// Oldest-first, contiguous, ending at the newest seq.
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if l.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", l.Recorded())
	}
	if l.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", l.Dropped())
	}
}

func TestEventLogAttrOverflow(t *testing.T) {
	l := NewEventLog(2)
	attrs := make([]EventAttr, maxEventAttrs+3)
	for i := range attrs {
		attrs[i] = EventAttr{Key: string(rune('a' + i)), Val: float64(i)}
	}
	l.Record("overfull", "", "", attrs...)
	if got := l.Snapshot()[0].NAttrs; got != maxEventAttrs {
		t.Errorf("retained %d attrs, want %d", got, maxEventAttrs)
	}
	if l.AttrsDropped() != 3 {
		t.Errorf("AttrsDropped = %d, want 3", l.AttrsDropped())
	}
}

func TestEventLogNilSafety(t *testing.T) {
	var l *EventLog
	l.SetClock(func() int64 { return 0 })
	if seq := l.Record("x", "", ""); seq != 0 {
		t.Errorf("nil Record seq = %d, want 0", seq)
	}
	if l.Snapshot() != nil || l.Recorded() != 0 || l.Dropped() != 0 || l.AttrsDropped() != 0 {
		t.Error("nil event log must read as empty")
	}
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil WriteJSONL = %v, %q", err, b.String())
	}
}

func TestEventLogConcurrency(t *testing.T) {
	l := NewEventLog(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Record("concurrent", "g", "", EventAttr{Key: "i", Val: float64(i)})
			}
		}()
	}
	wg.Wait()
	if l.Recorded() != 8000 {
		t.Errorf("Recorded = %d, want 8000", l.Recorded())
	}
	evs := l.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("snapshot seqs not contiguous at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestEventRoundTrip(t *testing.T) {
	l := NewEventLog(8)
	l.SetClock(stubClock())
	l.Record("arq_exhausted", "s-2", "frame 17",
		EventAttr{Key: "retries", Val: 2}, EventAttr{Key: "tick", Val: 17})
	l.Record("brownout_onset", "s-2", "")
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		got, err := DecodeEvent([]byte(line))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		want := l.Snapshot()[i]
		if got != want {
			t.Errorf("line %d round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestEventJSONCanonical(t *testing.T) {
	e := Event{Seq: 3, TimeNs: 150, Type: "evict", Subject: `sub "q"`, Detail: "stall",
		Attrs: [maxEventAttrs]EventAttr{{Key: "depth", Val: 64}, {Key: "dropped", Val: 2.5}}, NAttrs: 2}
	got := string(e.AppendJSON(nil))
	want := `{"seq":3,"t_ns":150,"type":"evict","subject":"sub \"q\"","detail":"stall","attrs":{"depth":64,"dropped":2.5}}`
	if got != want {
		t.Errorf("canonical JSON mismatch:\n got %s\nwant %s", got, want)
	}
	// Serializing the same event twice must be byte-identical.
	if again := string(e.AppendJSON(nil)); again != got {
		t.Errorf("non-deterministic encode: %s vs %s", got, again)
	}
}

func TestDecodeEventErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"not json",
		`{"seq":1`,                               // truncated
		`{"t_ns":5,"type":"x"}`,                  // missing seq
		`{"seq":0,"t_ns":5,"type":"x"}`,          // zero seq
		`{"seq":1,"type":"x"}`,                   // missing t_ns
		`{"seq":1,"t_ns":5}`,                     // missing type
		`{"seq":1,"t_ns":5,"type":"x","q":1}`,    // unknown field
		`{"seq":1,"t_ns":5,"type":"x"} trailing`, // trailing data
		`{"seq":-1,"t_ns":5,"type":"x"}`,         // negative seq
		`{"seq":1,"t_ns":5,"type":"x","attrs":{"a":1,"b":2,"c":3,"d":4,"e":5,"f":6,"g":7}}`, // too many attrs
	}
	for _, line := range bad {
		if _, err := DecodeEvent([]byte(line)); err == nil {
			t.Errorf("DecodeEvent(%q) succeeded, want error", line)
		}
	}
}

// FuzzEventLogDecode pins the decoder's crash-safety contract: arbitrary
// bytes — truncated records, garbage, adversarial JSON — must produce an
// error or a valid event, never a panic. Valid decodes must re-encode to
// a line that decodes identically (canonical form is a fixed point).
func FuzzEventLogDecode(f *testing.F) {
	f.Add([]byte(`{"seq":1,"t_ns":50,"type":"session_create","subject":"s-1","detail":"kalman","attrs":{"implants":4}}`))
	f.Add([]byte(`{"seq":18446744073709551615,"t_ns":-1,"type":"x"}`))
	f.Add([]byte(`{"seq":1`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte("{\"seq\":1,\"t_ns\":0,\"type\":\"\\u0000\"}"))
	f.Fuzz(func(t *testing.T, line []byte) {
		e, err := DecodeEvent(line)
		if err != nil {
			return
		}
		if e.Seq == 0 || e.Type == "" {
			t.Fatalf("decode accepted event violating schema: %+v", e)
		}
		// json.Marshal of decoded strings requires valid UTF-8 for the
		// canonical re-encode; the decoder replaces invalid sequences, so
		// re-encoded output must always be decodable.
		reenc := e.AppendJSON(nil)
		if !utf8.Valid(reenc) {
			t.Fatalf("re-encoded event is not valid UTF-8: %q", reenc)
		}
		e2, err := DecodeEvent(reenc)
		if err != nil {
			t.Fatalf("re-encoded event %s failed to decode: %v", reenc, err)
		}
		if e2 != e {
			t.Fatalf("canonical re-encode not a fixed point:\n once %+v\ntwice %+v", e, e2)
		}
	})
}
