package obs

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// buildGoldenObserver assembles a deterministic observer exercising every
// export path: labeled and unlabeled metrics of each kind, nested spans
// with attributes, and flight-recorder events — enough to pin JSONL field
// ordering end to end.
func buildGoldenObserver() *Observer {
	o := &Observer{
		Metrics: NewRegistry(),
		Tracer:  NewTracer(8),
		Events:  NewEventLog(8),
	}
	now := int64(0)
	clock := func() int64 { now += 100; return now }
	o.Tracer.SetClock(clock)
	o.Events.SetClock(clock)

	o.Metrics.Counter("frames_total", Label{Key: "stage", Value: "transport"}).Add(7)
	o.Metrics.Gauge("queue_depth").Set(3.5)
	h := o.Metrics.Histogram("stage_ns", []float64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)

	root := o.Tracer.Start("pipeline.tick", 0)
	child := o.Tracer.Start("stage.decode", root)
	o.Tracer.Attr(child, "channels", 64)
	o.Tracer.End(child)
	o.Tracer.End(root)

	o.Events.Record("session_create", "s-1", "kalman", EventAttr{Key: "implants", Val: 4})
	o.Events.Record("arq_exhausted", "s-1", "", EventAttr{Key: "tick", Val: 17}, EventAttr{Key: "retries", Val: 2})
	o.Events.Record("session_drain", "s-1", "")
	return o
}

// TestExportGoldenFiles pins the byte-exact JSONL export of metrics,
// traces and events against files under testdata/ — the export-ordering
// contract external consumers parse against. Regenerate intentionally
// with: go test ./internal/obs -run TestExportGoldenFiles -update
func TestExportGoldenFiles(t *testing.T) {
	o := buildGoldenObserver()
	for _, tc := range []struct {
		file  string
		write func(*strings.Builder) error
	}{
		{"metrics.golden.jsonl", func(b *strings.Builder) error { return o.Metrics.WriteJSONL(b) }},
		{"trace.golden.jsonl", func(b *strings.Builder) error { return o.Tracer.WriteJSONL(b) }},
		{"events.golden.jsonl", func(b *strings.Builder) error { return o.Events.WriteJSONL(b) }},
	} {
		t.Run(tc.file, func(t *testing.T) {
			var b strings.Builder
			if err := tc.write(&b); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if b.String() != string(want) {
				t.Errorf("export drifted from %s:\n got:\n%s\nwant:\n%s\n(run with -update if intentional)",
					path, b.String(), want)
			}
		})
	}
}

// TestTracerWraparoundSustained drives the ring through many wraps and
// pins the eviction contract: the newest `capacity` spans survive in
// oldest-first order, Started() counts every span ever started, and
// attributes on surviving spans are intact.
func TestTracerWraparoundSustained(t *testing.T) {
	const capacity, total = 8, 50
	tr := NewTracer(capacity)
	now := int64(0)
	tr.SetClock(func() int64 { now++; return now })
	for i := 0; i < total; i++ {
		id := tr.Start(fmt.Sprintf("span-%d", i), 0)
		tr.Attr(id, "i", float64(i))
		tr.End(id)
	}
	if tr.Started() != total {
		t.Errorf("Started = %d, want %d", tr.Started(), total)
	}
	spans := tr.Snapshot()
	if len(spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(spans), capacity)
	}
	for i, s := range spans {
		wantID := uint64(total - capacity + 1 + i)
		if s.ID != wantID {
			t.Errorf("span %d: ID = %d, want %d (oldest-first after wrap)", i, s.ID, wantID)
		}
		wantName := fmt.Sprintf("span-%d", wantID-1)
		if s.Name != wantName {
			t.Errorf("span %d: name = %q, want %q", i, s.Name, wantName)
		}
		if s.NAttrs != 1 || s.Attrs[0].Val != float64(wantID-1) {
			t.Errorf("span %d: attrs = %v (n=%d), want i=%d", i, s.Attrs, s.NAttrs, wantID-1)
		}
		if s.End == 0 {
			t.Errorf("span %d: not ended", i)
		}
	}
}
