package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildGoldenRegistry populates a registry with one of each instrument
// kind, deterministically.
func buildGoldenRegistry() *Registry {
	r := NewRegistry()
	f := r.Counter("implant_frames_total", Label{Key: "flow", Value: "communication-centric"})
	f.Add(42)
	r.Help("implant_frames_total", "Uplink frames emitted.")
	r.Gauge("thermal_max_rise_celsius").Set(1.25)
	r.Help("thermal_max_rise_celsius", "Peak tissue temperature rise.")
	h := r.Histogram("rx_latency_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(5)
	return r
}

const goldenProm = `# HELP implant_frames_total Uplink frames emitted.
# TYPE implant_frames_total counter
implant_frames_total{flow="communication-centric"} 42
# TYPE rx_latency_seconds histogram
rx_latency_seconds_bucket{le="0.001"} 1
rx_latency_seconds_bucket{le="0.01"} 2
rx_latency_seconds_bucket{le="+Inf"} 3
rx_latency_seconds_sum 5.0025
rx_latency_seconds_count 3
# HELP thermal_max_rise_celsius Peak tissue temperature rise.
# TYPE thermal_max_rise_celsius gauge
thermal_max_rise_celsius 1.25
`

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenProm {
		t.Errorf("prometheus exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), goldenProm)
	}
}

const goldenJSONL = `{"name":"implant_frames_total","type":"counter","labels":{"flow":"communication-centric"},"value":42}
{"name":"rx_latency_seconds","type":"histogram","buckets":[{"le":"0.001","count":1},{"le":"0.01","count":2},{"le":"+Inf","count":3}],"sum":5.0025,"count":3}
{"name":"thermal_max_rise_celsius","type":"gauge","value":1.25}
`

func TestWriteJSONLGolden(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenRegistry().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenJSONL {
		t.Errorf("jsonl mismatch:\n got:\n%s\nwant:\n%s", b.String(), goldenJSONL)
	}
	// Every line must round-trip as standalone JSON.
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Errorf("line %q is not valid JSON: %v", sc.Text(), err)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", Label{Key: "v", Value: "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped output %q missing %q", b.String(), want)
	}
}

func TestTraceJSONL(t *testing.T) {
	tr := NewTracer(8)
	now := int64(0)
	tr.SetClock(func() int64 { now += 100; return now })
	root := tr.Start("tick", 0)
	child := tr.Start("sense", root)
	tr.Attr(child, "channels", 128)
	tr.End(child)
	tr.End(root)
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"id":1,"name":"tick","start_ns":100,"end_ns":400,"dur_ns":300}
{"id":2,"parent":1,"name":"sense","start_ns":200,"end_ns":300,"dur_ns":100,"attrs":{"channels":128}}
`
	if b.String() != want {
		t.Errorf("trace jsonl mismatch:\n got: %s\nwant: %s", b.String(), want)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	var last SpanID
	for i := 0; i < 10; i++ {
		last = tr.Start("s", 0)
		tr.End(last)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if spans[len(spans)-1].ID != uint64(last) {
		t.Errorf("newest span ID = %d, want %d", spans[len(spans)-1].ID, last)
	}
	if spans[0].ID != uint64(last)-3 {
		t.Errorf("oldest span ID = %d, want %d", spans[0].ID, uint64(last)-3)
	}
	// Ending an overwritten span must be a harmless no-op.
	tr.End(SpanID(1))
	if tr.Started() != 10 {
		t.Errorf("started = %d, want 10", tr.Started())
	}
}

func TestTracerLostOpen(t *testing.T) {
	tr := NewTracer(2)
	a := tr.Start("open-never-ended", 0)
	_ = a
	tr.Start("b", 0)
	tr.Start("c", 0) // overwrites a, which is still open
	if got := tr.LostOpen(); got != 1 {
		t.Errorf("LostOpen = %d, want 1", got)
	}
}

func TestDebugMux(t *testing.T) {
	o := New()
	o.Metrics.Counter("hits_total").Inc()
	o.Tracer.End(o.Tracer.Start("span", 0))
	srv := httptest.NewServer(NewDebugMux(o))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":      "hits_total 1",
		"/metrics.json": `"name":"hits_total"`,
		"/trace":        `"name":"span"`,
		"/debug/vars":   "cmdline",
		"/debug/pprof/": "goroutine",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), want) {
			t.Errorf("%s: body missing %q", path, want)
		}
	}
}

func TestServeDebug(t *testing.T) {
	o := New()
	o.Metrics.Counter("served_total").Add(3)
	addr, stop, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stop() }()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "served_total 3") {
		t.Errorf("metrics body = %q", string(buf[:n]))
	}
}
