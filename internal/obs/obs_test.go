package obs

import (
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one counter family, one gauge and one
// histogram from N goroutines and checks the exact final counts — the
// -race gate for the lock-cheap registry.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 5001 // multiple of 3 so the histogram sum is exact

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Resolve handles inside the goroutine: registration itself
			// must be concurrency-safe too.
			c := r.Counter("events_total", Label{Key: "src", Value: "shared"})
			own := r.Counter("events_total", Label{Key: "src", Value: string(rune('a' + g))})
			ga := r.Gauge("level")
			h := r.Histogram("lat_seconds", []float64{0.5, 1.5, 2.5})
			for i := 0; i < perG; i++ {
				c.Inc()
				own.Add(2)
				ga.Add(1)
				h.Observe(float64(i % 3)) // 0, 1, 2 → buckets 0.5, 1.5, 2.5
			}
		}(g)
	}
	wg.Wait()

	if got := r.Counter("events_total", Label{Key: "src", Value: "shared"}).Value(); got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		lbl := Label{Key: "src", Value: string(rune('a' + g))}
		if got := r.Counter("events_total", lbl).Value(); got != 2*perG {
			t.Errorf("counter %v = %d, want %d", lbl, got, 2*perG)
		}
	}
	if got := r.Gauge("level").Value(); got != goroutines*perG {
		t.Errorf("gauge = %g, want %d", got, goroutines*perG)
	}
	h := r.Histogram("lat_seconds", []float64{0.5, 1.5, 2.5})
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	wantSum := float64(goroutines * perG) // each triple of observations sums to 3
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
}

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("c_total"); c2 != c {
		t.Error("same family+labels should return the same instrument")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	var tr *Tracer
	var o *Observer
	_ = o
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", []float64{1}).Observe(1)
	r.Help("a", "help")
	if s := r.Snapshot(); s != nil {
		t.Error("nil registry snapshot should be nil")
	}
	id := tr.Start("x", 0)
	if id != 0 {
		t.Error("nil tracer Start should return 0")
	}
	tr.End(id)
	tr.Attr(id, "k", 1)
	if tr.Snapshot() != nil {
		t.Error("nil tracer snapshot should be nil")
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments should read zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	var s Sample
	for _, smp := range r.Snapshot() {
		if smp.Name == "h" {
			s = smp
		}
	}
	wantCum := []int64{2, 3, 4, 5} // ≤1: {0.5, 1}; ≤10: +5; ≤100: +50; +Inf: +500
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if s.Sum != 556.5 || s.Count != 5 {
		t.Errorf("sum/count = %g/%d, want 556.5/5", s.Sum, s.Count)
	}
}

func TestBucketHelpers(t *testing.T) {
	exp := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	for i := range want {
		if diff := exp[i]/want[i] - 1; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("ExpBuckets[%d] = %g, want %g", i, exp[i], want[i])
		}
	}
	lin := LinearBuckets(0, 2.5, 3)
	if lin[0] != 0 || lin[1] != 2.5 || lin[2] != 5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
}
