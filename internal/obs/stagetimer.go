package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// StageTimer attributes wall time to named pipeline stages: per-stage
// ns/frame histograms plus an exponentially weighted moving average.
// The design splits registration from observation the same way the
// metrics registry does — Clock(name) takes a mutex once, the returned
// *StageClock records with atomics only — so worker goroutines sharing
// one timer never contend, and a nil timer (or nil clock) is a single
// inlined nil check: the zero-alloc disabled path.

// ewmaAlpha is the smoothing factor of the per-stage moving average:
// ~1/64 weight per sample, so the EWMA settles over a few hundred
// frames and tracks drift without whipsawing on scheduler noise.
const ewmaAlpha = 1.0 / 64

// stageTimerBuckets spans 16ns..~125ms in exponential steps — wide
// enough that a no-op decode step (tens of ns) and a Kalman refit
// (hundreds of µs) both land in interior buckets of the same histogram.
// The quantile estimates are additionally clamped to the observed
// [min, max] in Stats, so a sub-first-bucket sample can never report a
// p50 below the fastest recorded step (the BENCH_stage.json p50 ≈ 130ns
// vs mean ≈ 213µs artifact).
func stageTimerBuckets() []float64 {
	return ExpBuckets(16, 1.8, 28)
}

// StageClock is the per-stage recording handle. Observe is atomic-only
// and safe on a nil receiver.
type StageClock struct {
	name     string
	count    atomic.Int64
	sumNs    atomic.Int64
	minNs    atomic.Int64 // MaxInt64 until the first observation
	maxNs    atomic.Int64
	ewmaBits atomic.Uint64 // float64 bits; 0 = unset
	hist     *Histogram
}

// Observe records one frame's duration in nanoseconds. Safe on a nil
// receiver (no-op) — the disabled path.
func (c *StageClock) Observe(ns int64) {
	if c == nil {
		return
	}
	c.count.Add(1)
	c.sumNs.Add(ns)
	c.hist.Observe(float64(ns))
	c.observeRange(ns)
	c.observeEWMA(float64(ns))
}

// ObserveBatch records a batched stage invocation that covered n frames
// in totalNs: the per-frame average counts n times, so Count keeps its
// frames-observed meaning and MeanNs stays the true ns/frame. The EWMA
// takes one step toward the batch average (one invocation, one sample
// of the quantity it tracks).
func (c *StageClock) ObserveBatch(totalNs int64, n int) {
	if c == nil || n <= 0 {
		return
	}
	c.count.Add(int64(n))
	c.sumNs.Add(totalNs)
	avg := float64(totalNs) / float64(n)
	c.hist.ObserveN(avg, int64(n))
	c.observeRange(int64(avg))
	c.observeEWMA(avg)
}

func (c *StageClock) observeRange(ns int64) {
	for {
		old := c.minNs.Load()
		if ns >= old || c.minNs.CompareAndSwap(old, ns) {
			break
		}
	}
	for {
		old := c.maxNs.Load()
		if ns <= old || c.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
}

func (c *StageClock) observeEWMA(ns float64) {
	for {
		old := c.ewmaBits.Load()
		var next float64
		if old == 0 {
			next = ns
		} else {
			cur := math.Float64frombits(old)
			next = cur + ewmaAlpha*(ns-cur)
		}
		if c.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Name returns the stage name ("" on a nil receiver).
func (c *StageClock) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// StageStats is one stage's timing summary. The quantiles are
// histogram estimates clamped to [MinNs, MaxNs], so p50/p99 always lie
// within the range of recorded samples.
type StageStats struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	MeanNs  float64 `json:"mean_ns"`
	EWMANs  float64 `json:"ewma_ns"`
	P50Ns   float64 `json:"p50_ns"`
	P99Ns   float64 `json:"p99_ns"`
	MinNs   int64   `json:"min_ns"`
	MaxNs   int64   `json:"max_ns"`
	TotalNs int64   `json:"total_ns"`
}

// StageTimer is a registry of StageClocks keyed by stage name. Safe for
// concurrent use; every method is safe on a nil receiver.
type StageTimer struct {
	mu     sync.Mutex
	clocks map[string]*StageClock
}

// NewStageTimer returns an empty stage timer.
func NewStageTimer() *StageTimer {
	return &StageTimer{clocks: make(map[string]*StageClock)}
}

// Clock returns (creating on first use) the named stage's recording
// handle. Resolve once outside the hot path; the handle observes with
// atomics only. Returns nil on a nil receiver, so a disabled timer
// yields nil clocks and Observe short-circuits.
func (t *StageTimer) Clock(name string) *StageClock {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.clocks[name]
	if !ok {
		c = &StageClock{name: name, hist: NewHistogram(stageTimerBuckets())}
		c.minNs.Store(math.MaxInt64)
		t.clocks[name] = c
	}
	return c
}

// Stats returns every stage's summary, sorted by stage name for stable
// output. Safe on a nil receiver (returns nil).
func (t *StageTimer) Stats() []StageStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	clocks := make([]*StageClock, 0, len(t.clocks))
	for _, c := range t.clocks {
		clocks = append(clocks, c)
	}
	t.mu.Unlock()
	sort.Slice(clocks, func(i, j int) bool { return clocks[i].name < clocks[j].name })
	out := make([]StageStats, 0, len(clocks))
	for _, c := range clocks {
		n := c.count.Load()
		sum := c.sumNs.Load()
		s := StageStats{
			Stage:   c.name,
			Count:   n,
			TotalNs: sum,
			EWMANs:  math.Float64frombits(c.ewmaBits.Load()),
			P50Ns:   c.hist.Quantile(0.50),
			P99Ns:   c.hist.Quantile(0.99),
		}
		if n > 0 {
			s.MeanNs = float64(sum) / float64(n)
			s.MinNs = c.minNs.Load()
			s.MaxNs = c.maxNs.Load()
			// Histogram quantiles interpolate within bucket bounds, which
			// can stray outside the observed range (most visibly below the
			// first bucket); clamp them to [min, max] so the summary never
			// reports a quantile no sample attained.
			s.P50Ns = clampQuantile(s.P50Ns, s.MinNs, s.MaxNs)
			s.P99Ns = clampQuantile(s.P99Ns, s.MinNs, s.MaxNs)
		}
		out = append(out, s)
	}
	return out
}

func clampQuantile(q float64, min, max int64) float64 {
	if q < float64(min) {
		return float64(min)
	}
	if q > float64(max) {
		return float64(max)
	}
	return q
}
