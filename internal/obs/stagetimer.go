package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// StageTimer attributes wall time to named pipeline stages: per-stage
// ns/frame histograms plus an exponentially weighted moving average.
// The design splits registration from observation the same way the
// metrics registry does — Clock(name) takes a mutex once, the returned
// *StageClock records with atomics only — so worker goroutines sharing
// one timer never contend, and a nil timer (or nil clock) is a single
// inlined nil check: the zero-alloc disabled path.

// ewmaAlpha is the smoothing factor of the per-stage moving average:
// ~1/64 weight per sample, so the EWMA settles over a few hundred
// frames and tracks drift without whipsawing on scheduler noise.
const ewmaAlpha = 1.0 / 64

// stageTimerBuckets spans 100ns..~7ms in exponential steps — wide
// enough for a trivial source stage and a Kalman decode stage to land
// in interior buckets of the same histogram.
func stageTimerBuckets() []float64 {
	return ExpBuckets(100, 1.8, 20)
}

// StageClock is the per-stage recording handle. Observe is atomic-only
// and safe on a nil receiver.
type StageClock struct {
	name     string
	count    atomic.Int64
	sumNs    atomic.Int64
	ewmaBits atomic.Uint64 // float64 bits; 0 = unset
	hist     *Histogram
}

// Observe records one frame's duration in nanoseconds. Safe on a nil
// receiver (no-op) — the disabled path.
func (c *StageClock) Observe(ns int64) {
	if c == nil {
		return
	}
	c.count.Add(1)
	c.sumNs.Add(ns)
	c.hist.Observe(float64(ns))
	for {
		old := c.ewmaBits.Load()
		var next float64
		if old == 0 {
			next = float64(ns)
		} else {
			cur := math.Float64frombits(old)
			next = cur + ewmaAlpha*(float64(ns)-cur)
		}
		if c.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Name returns the stage name ("" on a nil receiver).
func (c *StageClock) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// StageStats is one stage's timing summary.
type StageStats struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	MeanNs  float64 `json:"mean_ns"`
	EWMANs  float64 `json:"ewma_ns"`
	P50Ns   float64 `json:"p50_ns"`
	P99Ns   float64 `json:"p99_ns"`
	TotalNs int64   `json:"total_ns"`
}

// StageTimer is a registry of StageClocks keyed by stage name. Safe for
// concurrent use; every method is safe on a nil receiver.
type StageTimer struct {
	mu     sync.Mutex
	clocks map[string]*StageClock
}

// NewStageTimer returns an empty stage timer.
func NewStageTimer() *StageTimer {
	return &StageTimer{clocks: make(map[string]*StageClock)}
}

// Clock returns (creating on first use) the named stage's recording
// handle. Resolve once outside the hot path; the handle observes with
// atomics only. Returns nil on a nil receiver, so a disabled timer
// yields nil clocks and Observe short-circuits.
func (t *StageTimer) Clock(name string) *StageClock {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.clocks[name]
	if !ok {
		c = &StageClock{name: name, hist: NewHistogram(stageTimerBuckets())}
		t.clocks[name] = c
	}
	return c
}

// Stats returns every stage's summary, sorted by stage name for stable
// output. Safe on a nil receiver (returns nil).
func (t *StageTimer) Stats() []StageStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	clocks := make([]*StageClock, 0, len(t.clocks))
	for _, c := range t.clocks {
		clocks = append(clocks, c)
	}
	t.mu.Unlock()
	sort.Slice(clocks, func(i, j int) bool { return clocks[i].name < clocks[j].name })
	out := make([]StageStats, 0, len(clocks))
	for _, c := range clocks {
		n := c.count.Load()
		sum := c.sumNs.Load()
		s := StageStats{
			Stage:   c.name,
			Count:   n,
			TotalNs: sum,
			EWMANs:  math.Float64frombits(c.ewmaBits.Load()),
			P50Ns:   c.hist.Quantile(0.50),
			P99Ns:   c.hist.Quantile(0.99),
		}
		if n > 0 {
			s.MeanNs = float64(sum) / float64(n)
		}
		out = append(out, s)
	}
	return out
}
