package obs

import (
	"sync"
	"time"
)

// SpanID identifies one started span; the zero value means "no span" and
// is accepted everywhere (as a parent, in End, in Attr) as a no-op.
type SpanID uint64

// Attr is one numeric span attribute.
type Attr struct {
	Key string
	Val float64
}

// maxSpanAttrs bounds per-span attributes so the ring stays allocation
// free; attributes past the limit are dropped (and counted).
const maxSpanAttrs = 4

// Span is one recorded interval. End == 0 means still open (or dropped by
// ring wrap-around before it ended).
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  int64 // ns since the tracer's epoch
	End    int64
	Attrs  [maxSpanAttrs]Attr
	NAttrs int
}

// Duration returns the span's length (0 when still open).
func (s Span) Duration() time.Duration {
	if s.End == 0 {
		return 0
	}
	return time.Duration(s.End - s.Start)
}

// Tracer records spans into a bounded ring buffer: starting a span claims
// the next slot, wrapping over the oldest entries, so tick-loop tracing is
// allocation-free in steady state. The guarding mutex is held only for the
// few stores of a slot update.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    uint64 // spans started; span IDs are 1-based
	lost    uint64 // spans overwritten while still open
	clock   func() int64
	epoch   time.Time
	dropped uint64 // attributes dropped past maxSpanAttrs
}

// NewTracer returns a tracer holding the most recent capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{ring: make([]Span, capacity), epoch: time.Now()}
	t.clock = func() int64 { return int64(time.Since(t.epoch)) }
	return t
}

// SetClock replaces the tracer's clock (ns since an arbitrary epoch) —
// used by tests for deterministic timestamps.
func (t *Tracer) SetClock(clock func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Start opens a span under parent (0 for a root) and returns its ID. Safe
// on a nil receiver (returns 0).
func (t *Tracer) Start(name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.next++
	id := t.next
	s := &t.ring[(id-1)%uint64(len(t.ring))]
	if s.ID != 0 && s.End == 0 {
		t.lost++
	}
	*s = Span{ID: id, Parent: uint64(parent), Name: name, Start: t.clock()}
	t.mu.Unlock()
	return SpanID(id)
}

// End closes the span. Ending a span that has already been overwritten by
// ring wrap-around (or ID 0) is a no-op. Safe on a nil receiver.
func (t *Tracer) End(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	s := &t.ring[(uint64(id)-1)%uint64(len(t.ring))]
	if s.ID == uint64(id) && s.End == 0 {
		s.End = t.clock()
	}
	t.mu.Unlock()
}

// Attr attaches a numeric attribute to an open or closed span still in the
// ring. At most maxSpanAttrs attributes are kept per span; the rest are
// dropped and counted. Safe on a nil receiver.
func (t *Tracer) Attr(id SpanID, key string, val float64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	s := &t.ring[(uint64(id)-1)%uint64(len(t.ring))]
	if s.ID == uint64(id) {
		if s.NAttrs < maxSpanAttrs {
			s.Attrs[s.NAttrs] = Attr{Key: key, Val: val}
			s.NAttrs++
		} else {
			t.dropped++
		}
	}
	t.mu.Unlock()
}

// Started returns the total number of spans started (including ones that
// have since been overwritten). Safe on a nil receiver.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// LostOpen returns how many spans were overwritten by wrap-around while
// still open — a sizing signal for the ring. Safe on a nil receiver.
func (t *Tracer) LostOpen() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lost
}

// Snapshot returns the retained spans in start order (oldest first). Safe
// on a nil receiver (returns nil).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	cap64 := uint64(len(t.ring))
	start := uint64(1)
	if n > cap64 {
		start = n - cap64 + 1
	}
	out := make([]Span, 0, n-start+1)
	for id := start; id <= n; id++ {
		s := t.ring[(id-1)%cap64]
		if s.ID == id {
			out = append(out, s)
		}
	}
	return out
}
