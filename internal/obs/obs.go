// Package obs is the observability backbone of the MINDFUL runtime
// substrates: a lock-cheap metrics registry (atomic counters, gauges and
// fixed-bucket histograms with labeled families), a bounded ring-buffer
// span tracer, and exporters in Prometheus text and JSON-lines formats.
//
// The paper's whole argument is an accounting exercise — power, bits,
// MACs and temperature per design point — so every runtime substrate
// (implant pipeline, modem, thermal solvers, MAC-array simulator) wires
// its hot path through this package. Instrumentation is designed to
// vanish when unobserved: every instrument method is safe on a nil
// receiver, so an unattached observer costs one inlined nil check per
// call site and no allocations.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric family.
type Label struct {
	Key, Value string
}

// Observer bundles the sinks a component can be wired to: the metrics
// registry, the span tracer, and the flight recorder's structured event
// log. A nil *Observer (or nil fields) short-circuits all
// instrumentation.
type Observer struct {
	Metrics *Registry
	Tracer  *Tracer
	Events  *EventLog
}

// DefaultTraceCapacity is the ring size of New's tracer: large enough to
// hold several thousand pipeline ticks' stage spans.
const DefaultTraceCapacity = 16384

// DefaultEventCapacity is the ring size of New's event log: lifecycle
// and fault-path events are orders of magnitude rarer than spans, so a
// smaller ring retains a long history.
const DefaultEventCapacity = 4096

// New returns an Observer with a fresh registry, a default-capacity
// tracer and a default-capacity event log.
func New() *Observer {
	return &Observer{
		Metrics: NewRegistry(),
		Tracer:  NewTracer(DefaultTraceCapacity),
		Events:  NewEventLog(DefaultEventCapacity),
	}
}

// metric kinds.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	default:
		return "unknown"
	}
}

// family is one named metric with a fixed kind and a set of labeled
// instruments.
type family struct {
	name    string
	help    string
	kind    kind
	bounds  []float64 // histogram upper bounds (excluding +Inf)
	byLabel map[string]any
}

// Registry is a concurrency-safe collection of metric families. Lookup
// (Counter/Gauge/Histogram) takes the registry lock; the returned
// instruments update via atomics only, so call sites resolve handles once
// and increment without contention.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey serializes labels into a canonical map key (sorted by key).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortedLabels returns a sorted copy of labels.
func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

func (r *Registry) instrument(name string, k kind, bounds []float64, labels []Label) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, bounds: bounds, byLabel: make(map[string]any)}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, k))
	}
	key := labelKey(labels)
	if inst, ok := f.byLabel[key]; ok {
		return inst
	}
	var inst any
	switch k {
	case counterKind:
		inst = &Counter{labels: sortedLabels(labels)}
	case gaugeKind:
		inst = &Gauge{labels: sortedLabels(labels)}
	case histogramKind:
		h := &Histogram{labels: sortedLabels(labels), bounds: f.bounds}
		h.counts = make([]atomic.Int64, len(f.bounds)+1)
		inst = h
	}
	f.byLabel[key] = inst
	return inst
}

// Counter returns (creating on first use) the counter of the named family
// with the given labels. Nil-receiver safe: returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.instrument(name, counterKind, nil, labels).(*Counter)
}

// Gauge returns (creating on first use) the gauge of the named family with
// the given labels. Nil-receiver safe.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.instrument(name, gaugeKind, nil, labels).(*Gauge)
}

// Histogram returns (creating on first use) the histogram of the named
// family. The bucket bounds of the first registration win; they must be
// sorted ascending. Nil-receiver safe.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	return r.instrument(name, histogramKind, append([]float64(nil), bounds...), labels).(*Histogram)
}

// Help sets the family's help text (shown in the Prometheus exposition).
// Nil-receiver safe; a family that does not exist yet is created lazily on
// first instrument registration and picks the help up at export time only
// if set again — so call Help after registering. Unknown names are stored
// when the family exists, ignored otherwise.
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	}
}

// Counter is a monotonically increasing event count.
type Counter struct {
	labels []Label
	v      atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be ≥ 0; negative deltas are ignored to keep the
// counter monotone). Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float sample.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds delta to the gauge. Safe on a nil receiver.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. Buckets hold
// non-cumulative counts internally; exports are cumulative (Prometheus
// convention).
type Histogram struct {
	labels []Label
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sum    Gauge
	count  atomic.Int64
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound ≥ v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveN records the value n times in one shot — the batched-stage
// path, where one invocation stands for n per-frame observations. Safe
// on a nil receiver; n ≤ 0 records nothing.
func (h *Histogram) ObserveN(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.sum.Add(v * float64(n))
	h.count.Add(n)
}

// NewHistogram returns a standalone histogram (not attached to any
// registry) with the given ascending bucket bounds — the building block
// behind StageTimer and the loadgen latency estimator. Histograms from
// Registry.Histogram share the same implementation.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts
// by linear interpolation inside the covering bucket — the
// histogram_quantile estimator. Observations are assumed non-negative:
// the first bucket interpolates from 0. A quantile that lands in the
// +Inf overflow bucket is clamped to the highest finite bound (there is
// no upper edge to interpolate toward). Returns 0 on a nil receiver or
// an empty histogram. Under concurrent observation the bucket loads are
// not a consistent snapshot; the estimate is approximate, which is all a
// bucketed quantile ever is.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	total := int64(0)
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	lower := 0.0
	for i, ub := range h.bounds {
		c := counts[i]
		if c > 0 && float64(cum)+float64(c) >= rank {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (ub-lower)*frac
		}
		cum += c
		lower = ub
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// ExpBuckets returns n exponentially spaced bounds starting at start with
// the given growth factor — the standard latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bounds starting at start.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinearBuckets needs width > 0, n ≥ 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}
