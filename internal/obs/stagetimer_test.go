package obs

import (
	"math"
	"sync"
	"testing"
)

func TestStageTimerStats(t *testing.T) {
	st := NewStageTimer()
	src := st.Clock("source")
	dec := st.Clock("decode")
	for i := 0; i < 100; i++ {
		src.Observe(1000)
		dec.Observe(5000)
	}
	stats := st.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d stages, want 2", len(stats))
	}
	// Sorted by name: decode before source.
	if stats[0].Stage != "decode" || stats[1].Stage != "source" {
		t.Fatalf("stage order = %s, %s", stats[0].Stage, stats[1].Stage)
	}
	d := stats[0]
	if d.Count != 100 || d.TotalNs != 500000 {
		t.Errorf("decode count/total = %d/%d, want 100/500000", d.Count, d.TotalNs)
	}
	if d.MeanNs != 5000 {
		t.Errorf("decode mean = %g, want 5000", d.MeanNs)
	}
	// Constant samples: the EWMA converges to the sample exactly (first
	// sample seeds it, every update is a no-op).
	if d.EWMANs != 5000 {
		t.Errorf("decode ewma = %g, want 5000", d.EWMANs)
	}
	// Quantiles land inside the bucket covering 5000ns.
	if d.P50Ns <= 0 || d.P99Ns < d.P50Ns {
		t.Errorf("decode p50/p99 = %g/%g", d.P50Ns, d.P99Ns)
	}
}

// TestStageTimerQuantilesWithinRange is the regression test for the
// BENCH_stage.json artifact where a mostly-no-op decode stage reported
// p50 ≈ 130ns against a mean of ~213µs: with samples far below the
// first histogram bucket mixed with heavy tail samples, every reported
// quantile must still lie within [min, max] of what was recorded.
func TestStageTimerQuantilesWithinRange(t *testing.T) {
	st := NewStageTimer()
	c := st.Clock("decode")
	// Bimodal load: many ~40ns no-op steps, a few ~213µs refit steps —
	// the exact shape that produced the artifact.
	for i := 0; i < 980; i++ {
		c.Observe(40)
	}
	for i := 0; i < 20; i++ {
		c.Observe(213_000)
	}
	s := st.Stats()[0]
	if s.MinNs != 40 || s.MaxNs != 213_000 {
		t.Fatalf("min/max = %d/%d, want 40/213000", s.MinNs, s.MaxNs)
	}
	for _, q := range []struct {
		name string
		v    float64
	}{{"p50", s.P50Ns}, {"p99", s.P99Ns}} {
		if q.v < float64(s.MinNs) || q.v > float64(s.MaxNs) {
			t.Errorf("%s = %g outside observed range [%d, %d]", q.name, q.v, s.MinNs, s.MaxNs)
		}
	}
	// The median of this distribution is a no-op step: p50 must sit at
	// the fast mode, not interpolate into fiction above it.
	if s.P50Ns > 1000 {
		t.Errorf("p50 = %g, want ≤ 1µs (fast mode)", s.P50Ns)
	}
	if s.P99Ns < 100_000 {
		t.Errorf("p99 = %g, want ≥ 100µs (slow mode)", s.P99Ns)
	}
}

// TestStageClockObserveBatch pins the batched observation semantics:
// count keeps its frames-observed meaning, the mean is the true
// ns/frame, and min/max/quantiles see the batch average.
func TestStageClockObserveBatch(t *testing.T) {
	st := NewStageTimer()
	c := st.Clock("source")
	c.ObserveBatch(64_000, 64) // 64 frames at 1µs average
	c.ObserveBatch(32_000, 16) // 16 frames at 2µs average
	c.ObserveBatch(100, 0)     // no frames: must record nothing
	s := st.Stats()[0]
	if s.Count != 80 || s.TotalNs != 96_000 {
		t.Fatalf("count/total = %d/%d, want 80/96000", s.Count, s.TotalNs)
	}
	if s.MeanNs != 1200 {
		t.Errorf("mean = %g, want 1200", s.MeanNs)
	}
	if s.MinNs != 1000 || s.MaxNs != 2000 {
		t.Errorf("min/max = %d/%d, want 1000/2000", s.MinNs, s.MaxNs)
	}
	if s.P50Ns < float64(s.MinNs) || s.P50Ns > float64(s.MaxNs) {
		t.Errorf("p50 = %g outside [%d, %d]", s.P50Ns, s.MinNs, s.MaxNs)
	}
	// Nil safety mirrors Observe.
	var nilClock *StageClock
	nilClock.ObserveBatch(1000, 4)
}

func TestStageTimerEWMATracks(t *testing.T) {
	st := NewStageTimer()
	c := st.Clock("transport")
	c.Observe(1000)
	if got := st.Stats()[0].EWMANs; got != 1000 {
		t.Fatalf("ewma after first sample = %g, want 1000", got)
	}
	// A long run at a new level must pull the EWMA most of the way there.
	for i := 0; i < 500; i++ {
		c.Observe(9000)
	}
	got := st.Stats()[0].EWMANs
	if math.Abs(got-9000) > 10 {
		t.Errorf("ewma after 500 samples at 9000 = %g, want ≈9000", got)
	}
}

func TestStageTimerClockReuse(t *testing.T) {
	st := NewStageTimer()
	if st.Clock("receiver") != st.Clock("receiver") {
		t.Error("Clock must return the same handle for the same name")
	}
}

func TestStageTimerNilSafety(t *testing.T) {
	var st *StageTimer
	c := st.Clock("source")
	if c != nil {
		t.Fatal("nil timer must yield nil clocks")
	}
	c.Observe(100) // must not panic
	if c.Name() != "" {
		t.Errorf("nil clock name = %q", c.Name())
	}
	if st.Stats() != nil {
		t.Error("nil timer Stats must be nil")
	}
}

func TestStageTimerConcurrency(t *testing.T) {
	st := NewStageTimer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := st.Clock("shared")
			for i := 0; i < 1000; i++ {
				c.Observe(int64(100 + i%7))
			}
		}()
	}
	wg.Wait()
	s := st.Stats()[0]
	if s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
	if s.EWMANs < 100 || s.EWMANs > 107 {
		t.Errorf("ewma = %g, want within [100,107]", s.EWMANs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	// 10 observations in [0,10], 10 in (10,20].
	for i := 0; i < 10; i++ {
		h.Observe(5)
		h.Observe(15)
	}
	// Median sits exactly at the first bucket's upper edge.
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %g, want 10", got)
	}
	// p25 interpolates halfway into the first bucket (rank 5 of 10).
	if got := h.Quantile(0.25); got != 5 {
		t.Errorf("p25 = %g, want 5", got)
	}
	// p75 interpolates halfway into the second bucket.
	if got := h.Quantile(0.75); got != 15 {
		t.Errorf("p75 = %g, want 15", got)
	}
	// q clamps.
	if lo, hi := h.Quantile(-1), h.Quantile(2); lo != h.Quantile(0) || hi != h.Quantile(1) {
		t.Errorf("quantile clamping: q=-1 → %g, q=2 → %g", lo, hi)
	}
}

func TestHistogramQuantileOverflow(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	h.Observe(5)
	h.Observe(1000) // lands in +Inf overflow
	// The overflow bucket has no upper edge; quantiles landing there clamp
	// to the highest finite bound.
	if got := h.Quantile(0.99); got != 20 {
		t.Errorf("p99 in overflow = %g, want 20 (highest finite bound)", got)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile must be 0")
	}
}

func TestNewHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with unsorted bounds must panic")
		}
	}()
	NewHistogram([]float64{2, 1})
}

// The enabled-path costs: a live StageClock.Observe (count/sum atomics,
// CAS EWMA, one histogram bucket) and a live EventLog.Record (mutex +
// ring-slot overwrite). The disabled path is the nil receiver.
func BenchmarkStageClockObserve(b *testing.B) {
	c := NewStageTimer().Clock("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe(int64(i&1023) + 100)
	}
}

func BenchmarkStageClockObserveDisabled(b *testing.B) {
	var c *StageClock
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Observe(int64(i))
	}
}

func BenchmarkEventLogRecord(b *testing.B) {
	l := NewEventLog(DefaultEventCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record("bench_event", "subject", "", EventAttr{Key: "tick", Val: float64(i)})
	}
}

func BenchmarkEventLogRecordDisabled(b *testing.B) {
	var l *EventLog
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record("bench_event", "subject", "")
	}
}
