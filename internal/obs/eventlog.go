package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// The event log is the flight recorder's durable narrative: a bounded
// ring buffer of typed, timestamped records with monotonic sequence
// numbers. Where metrics aggregate and spans time, events *explain* —
// a session was restored, an ARQ budget ran out, a brownout began.
// Recording is cheap (one mutex, no allocation beyond the variadic
// attribute slice), eviction is oldest-first and counted, and the
// export is canonical JSONL: fixed field order, attributes in record
// order, so identical histories serialize byte-identically.

// maxEventAttrs bounds per-event attributes so the ring stays fixed
// size; attributes past the limit are dropped and counted.
const maxEventAttrs = 6

// EventAttr is one numeric event attribute.
type EventAttr struct {
	Key string
	Val float64
}

// Event is one recorded flight-recorder entry.
type Event struct {
	// Seq is the 1-based monotonic sequence number. Gaps in an exported
	// stream mean the ring evicted records between two snapshots.
	Seq uint64
	// TimeNs is nanoseconds since the log's epoch.
	TimeNs int64
	// Type classifies the event (e.g. "session_create", "arq_exhausted").
	Type string
	// Subject names what the event happened to (e.g. a session ID).
	Subject string
	// Detail carries optional free-form context (a decoder name, an
	// error string).
	Detail string
	// Attrs are the numeric attributes, in record order.
	Attrs  [maxEventAttrs]EventAttr
	NAttrs int
}

// EventLog records events into a bounded ring buffer, evicting oldest
// first. Safe for concurrent use; every method is safe on a nil
// receiver, so an unattached log costs one nil check per call site.
type EventLog struct {
	mu           sync.Mutex
	ring         []Event
	next         uint64 // events recorded; seq numbers are 1-based
	attrsDropped uint64 // attributes dropped past maxEventAttrs
	clock        func() int64
	epoch        time.Time
}

// NewEventLog returns an event log retaining the most recent capacity
// events.
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &EventLog{ring: make([]Event, capacity), epoch: time.Now()}
	l.clock = func() int64 { return int64(time.Since(l.epoch)) }
	return l
}

// SetClock replaces the log's clock (ns since an arbitrary epoch) — used
// by tests for deterministic timestamps. Safe on a nil receiver.
func (l *EventLog) SetClock(clock func() int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.clock = clock
	l.mu.Unlock()
}

// Record appends one event and returns its sequence number (0 on a nil
// receiver). Attributes beyond the per-event limit are dropped and
// counted rather than allocated.
func (l *EventLog) Record(typ, subject, detail string, attrs ...EventAttr) uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	l.next++
	seq := l.next
	e := &l.ring[(seq-1)%uint64(len(l.ring))]
	*e = Event{Seq: seq, TimeNs: l.clock(), Type: typ, Subject: subject, Detail: detail}
	for _, a := range attrs {
		if e.NAttrs < maxEventAttrs {
			e.Attrs[e.NAttrs] = a
			e.NAttrs++
		} else {
			l.attrsDropped++
		}
	}
	l.mu.Unlock()
	return seq
}

// Recorded returns the total number of events ever recorded, including
// ones the ring has since evicted. Safe on a nil receiver.
func (l *EventLog) Recorded() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Dropped returns how many events the ring has evicted oldest-first —
// the sizing signal for the capacity. Safe on a nil receiver.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if cap64 := uint64(len(l.ring)); l.next > cap64 {
		return l.next - cap64
	}
	return 0
}

// AttrsDropped returns how many attributes were discarded past the
// per-event limit. Safe on a nil receiver.
func (l *EventLog) AttrsDropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.attrsDropped
}

// Snapshot returns the retained events in sequence order (oldest
// first). Safe on a nil receiver (returns nil).
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	cap64 := uint64(len(l.ring))
	start := uint64(1)
	if n > cap64 {
		start = n - cap64 + 1
	}
	out := make([]Event, 0, n-start+1)
	for seq := start; seq <= n; seq++ {
		out = append(out, l.ring[(seq-1)%cap64])
	}
	return out
}

// AppendJSON serializes the event onto dst in the canonical wire form:
// fixed field order, attributes as an object in record order, numbers
// via strconv so identical events encode byte-identically.
func (e Event) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"t_ns":`...)
	dst = strconv.AppendInt(dst, e.TimeNs, 10)
	dst = append(dst, `,"type":`...)
	dst = appendJSONString(dst, e.Type)
	if e.Subject != "" {
		dst = append(dst, `,"subject":`...)
		dst = appendJSONString(dst, e.Subject)
	}
	if e.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = appendJSONString(dst, e.Detail)
	}
	if e.NAttrs > 0 {
		dst = append(dst, `,"attrs":{`...)
		for i := 0; i < e.NAttrs; i++ {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, e.Attrs[i].Key)
			dst = append(dst, ':')
			dst = strconv.AppendFloat(dst, e.Attrs[i].Val, 'g', -1, 64)
		}
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

// appendJSONString appends s as a quoted JSON string. The encoding/json
// marshaller would escape <, > and & for HTML embedding; event types and
// subjects are plain identifiers, so the simple escape set suffices and
// keeps the output canonical.
func appendJSONString(dst []byte, s string) []byte {
	b, _ := json.Marshal(s) // cannot fail for a string
	return append(dst, b...)
}

// WriteJSONL writes the retained events as canonical JSON lines, oldest
// first. Safe on a nil receiver (writes nothing).
func (l *EventLog) WriteJSONL(w io.Writer) error {
	var buf []byte
	for _, e := range l.Snapshot() {
		buf = e.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// jsonEvent is the decode form of one event line.
type jsonEvent struct {
	Seq     *uint64            `json:"seq"`
	TimeNs  *int64             `json:"t_ns"`
	Type    string             `json:"type"`
	Subject string             `json:"subject"`
	Detail  string             `json:"detail"`
	Attrs   map[string]float64 `json:"attrs"`
}

// DecodeEvent parses one JSONL event line back into an Event. Truncated,
// garbage or schema-violating input is an error, never a panic — the
// contract FuzzEventLogDecode pins. Attribute order inside the object is
// not recoverable from a map; decoded attributes are returned sorted by
// key for determinism.
func DecodeEvent(line []byte) (Event, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return Event{}, errors.New("obs: empty event line")
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var je jsonEvent
	if err := dec.Decode(&je); err != nil {
		return Event{}, fmt.Errorf("obs: bad event line: %w", err)
	}
	if dec.More() {
		return Event{}, errors.New("obs: trailing data after event")
	}
	if je.Seq == nil || *je.Seq == 0 {
		return Event{}, errors.New("obs: event missing seq")
	}
	if je.TimeNs == nil {
		return Event{}, errors.New("obs: event missing t_ns")
	}
	if je.Type == "" {
		return Event{}, errors.New("obs: event missing type")
	}
	if len(je.Attrs) > maxEventAttrs {
		return Event{}, fmt.Errorf("obs: event carries %d attrs, limit %d", len(je.Attrs), maxEventAttrs)
	}
	e := Event{Seq: *je.Seq, TimeNs: *je.TimeNs, Type: je.Type, Subject: je.Subject, Detail: je.Detail}
	keys := make([]string, 0, len(je.Attrs))
	for k := range je.Attrs {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		e.Attrs[e.NAttrs] = EventAttr{Key: k, Val: je.Attrs[k]}
		e.NAttrs++
	}
	return e, nil
}

// sortStrings is an insertion sort: attribute sets are tiny and this
// avoids pulling sort into the decode path's import graph twice.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
