// Package comm models the wireless uplink of an implanted BCI SoC.
//
// It provides three layers:
//
//   - Analysis: modulation schemes (OOK and M-QAM) with analytic BER ↔
//     Eb/N0 inversions, a link budget that turns a required Eb/N0 into
//     transmit energy per bit through path loss, margin and implementation
//     efficiency (Section 5.1–5.2 of the paper), and Shannon-limit helpers.
//   - Simulation: a bit-level modulator/demodulator over an AWGN channel
//     whose measured BER is checked against the analytic curves — the
//     stand-in for RF hardware the paper's authors have and we do not.
//   - Framing: the packetizer that the communication-centric dataflow uses
//     to prepare digitized neural samples for transmission.
package comm

import (
	"fmt"
	"math"

	"mindful/internal/mathx"
)

// Modulation is a digital modulation scheme characterized by its
// bits-per-symbol and its analytic bit-error-rate curve on an AWGN channel.
type Modulation interface {
	// Name identifies the scheme (e.g. "OOK", "16-QAM").
	Name() string
	// BitsPerSymbol returns the number of bits encoded in one symbol.
	BitsPerSymbol() int
	// BER returns the analytic bit error rate at the given Eb/N0 (linear).
	BER(ebN0 float64) float64
	// RequiredEbN0 returns the minimum Eb/N0 (linear) achieving the target
	// bit error rate.
	RequiredEbN0(ber float64) float64
}

// OOK is on-off keying: one bit per symbol, the energy-efficient scheme
// current implanted SoCs prefer (Section 5.1). With coherent detection its
// BER is Q(√(Eb/N0)).
type OOK struct{}

// Name implements Modulation.
func (OOK) Name() string { return "OOK" }

// BitsPerSymbol implements Modulation.
func (OOK) BitsPerSymbol() int { return 1 }

// BER implements Modulation.
func (OOK) BER(ebN0 float64) float64 {
	if ebN0 <= 0 {
		return 0.5
	}
	return mathx.Q(math.Sqrt(ebN0))
}

// RequiredEbN0 implements Modulation.
func (OOK) RequiredEbN0(ber float64) float64 {
	checkBER(ber)
	x := mathx.QInv(ber)
	return x * x
}

// QAM is square/cross M-ary quadrature amplitude modulation with Gray
// mapping. For even bits-per-symbol k the constellation is square
// (M = 2^k); for odd k the standard cross-constellation approximation is
// used with the same closed form. k = 1 degenerates to BPSK.
type QAM struct {
	// Bits is the number of bits per symbol, k ≥ 1.
	Bits int
}

// NewQAM returns a k-bit-per-symbol QAM scheme.
func NewQAM(bits int) QAM {
	if bits < 1 {
		panic("comm: QAM requires at least 1 bit per symbol")
	}
	return QAM{Bits: bits}
}

// Name implements Modulation.
func (q QAM) Name() string {
	if q.Bits == 1 {
		return "BPSK"
	}
	return fmt.Sprintf("%d-QAM", q.M())
}

// M returns the constellation size 2^Bits.
func (q QAM) M() int { return 1 << q.Bits }

// BitsPerSymbol implements Modulation.
func (q QAM) BitsPerSymbol() int { return q.Bits }

// BER implements Modulation. For k ≥ 2 it uses the standard Gray-coded
// approximation
//
//	Pb ≈ 4/k · (1 − 1/√M) · Q(√(3k/(M−1) · Eb/N0))
//
// which is exact in the high-SNR limit for square constellations; k = 1 is
// exact BPSK.
func (q QAM) BER(ebN0 float64) float64 {
	if ebN0 <= 0 {
		return 0.5
	}
	k := float64(q.Bits)
	if q.Bits == 1 {
		return mathx.Q(math.Sqrt(2 * ebN0))
	}
	m := float64(q.M())
	coef := 4 / k * (1 - 1/math.Sqrt(m))
	p := coef * mathx.Q(math.Sqrt(3*k/(m-1)*ebN0))
	return math.Min(p, 0.5)
}

// RequiredEbN0 implements Modulation by inverting the BER approximation.
func (q QAM) RequiredEbN0(ber float64) float64 {
	checkBER(ber)
	k := float64(q.Bits)
	if q.Bits == 1 {
		x := mathx.QInv(ber)
		return x * x / 2
	}
	m := float64(q.M())
	coef := 4 / k * (1 - 1/math.Sqrt(m))
	target := ber / coef
	if target >= 0.5 {
		target = 0.499999
	}
	x := mathx.QInv(target)
	return x * x * (m - 1) / (3 * k)
}

func checkBER(ber float64) {
	if ber <= 0 || ber >= 0.5 {
		panic(fmt.Sprintf("comm: target BER %g outside (0, 0.5)", ber))
	}
}

// BitsPerSymbolFor returns the paper's Section 5.2 modulation staircase:
// for a transceiver sized for baseChannels, supporting n channels requires
// ⌈n / baseChannels⌉ bits per symbol (one extra bit per additional
// baseChannels block).
func BitsPerSymbolFor(n, baseChannels int) int {
	if n <= 0 || baseChannels <= 0 {
		panic("comm: channel counts must be positive")
	}
	return mathx.CeilDiv(n, baseChannels)
}
