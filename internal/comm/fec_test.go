package comm

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomBits(rng *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

func TestFECCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, depth := range []int{1, 2, 4, 8, 16} {
		f, err := NewFEC(depth)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{0, 1, 3, 4, 5, 8, 100, 321} {
			bits := randomBits(rng, n)
			coded := f.AppendEncode(nil, bits)
			if want := f.CodedBits(n); len(coded) != want {
				t.Fatalf("depth %d: %d data bits coded to %d bits, want %d", depth, n, len(coded), want)
			}
			back, fixed, err := f.AppendDecode(nil, coded)
			if err != nil {
				t.Fatalf("depth %d: decode: %v", depth, err)
			}
			if fixed != 0 {
				t.Fatalf("depth %d: clean stream reported %d corrections", depth, fixed)
			}
			if !bytes.Equal(back[:n], bits) {
				t.Fatalf("depth %d: %d-bit round trip mismatch", depth, n)
			}
			for _, pad := range back[n:] {
				if pad != 0 {
					t.Fatalf("depth %d: nonzero padding bit", depth)
				}
			}
		}
	}
}

// TestFECSingleErrorPerCodeword: every single-bit error in every codeword
// position must be corrected, for every depth.
func TestFECSingleErrorPerCodeword(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, depth := range []int{1, 3, 8} {
		f, err := NewFEC(depth)
		if err != nil {
			t.Fatal(err)
		}
		bits := randomBits(rng, 40) // 10 codewords
		coded := f.AppendEncode(nil, bits)
		for pos := range coded {
			corrupt := append([]byte(nil), coded...)
			corrupt[pos] ^= 1
			back, fixed, err := f.AppendDecode(nil, corrupt)
			if err != nil {
				t.Fatal(err)
			}
			if fixed != 1 {
				t.Fatalf("depth %d, flip at %d: %d corrections, want 1", depth, pos, fixed)
			}
			if !bytes.Equal(back[:len(bits)], bits) {
				t.Fatalf("depth %d: flip at %d not corrected", depth, pos)
			}
		}
	}
}

// TestFECBurstCorrection is the interleaver property the satellite task
// pins: any contiguous burst of up to Depth bit errors inside one
// interleave block lands at most one error per codeword and is fully
// corrected.
func TestFECBurstCorrection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, depth := range []int{2, 4, 8, 16} {
		f, err := NewFEC(depth)
		if err != nil {
			t.Fatal(err)
		}
		// Exactly one full interleave block: depth codewords.
		bits := randomBits(rng, depth*fecDataBits)
		coded := f.AppendEncode(nil, bits)
		for burst := 1; burst <= depth; burst++ {
			for start := 0; start+burst <= len(coded); start++ {
				corrupt := append([]byte(nil), coded...)
				for i := 0; i < burst; i++ {
					corrupt[start+i] ^= 1
				}
				back, fixed, err := f.AppendDecode(nil, corrupt)
				if err != nil {
					t.Fatal(err)
				}
				if fixed != burst {
					t.Fatalf("depth %d: burst %d at %d: %d corrections, want %d",
						depth, burst, start, fixed, burst)
				}
				if !bytes.Equal(back[:len(bits)], bits) {
					t.Fatalf("depth %d: burst %d at %d not corrected", depth, burst, start)
				}
			}
		}
		// A burst of depth+1 must defeat some placement — the guarantee
		// is tight, not vacuous.
		defeated := false
		for start := 0; start+depth+1 <= len(coded) && !defeated; start++ {
			corrupt := append([]byte(nil), coded...)
			for i := 0; i <= depth; i++ {
				corrupt[start+i] ^= 1
			}
			back, _, err := f.AppendDecode(nil, corrupt)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back[:len(bits)], bits) {
				defeated = true
			}
		}
		if !defeated {
			t.Errorf("depth %d: burst of depth+1 never defeated the code", depth)
		}
	}
}

func TestFECRejectsBadLength(t *testing.T) {
	f, err := NewFEC(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.AppendDecode(nil, make([]byte, 13)); err == nil {
		t.Fatal("decode accepted a length not divisible by 7")
	}
	if _, err := NewFEC(0); err == nil {
		t.Fatal("NewFEC accepted depth 0")
	}
}

func TestFECOverheadAndEnergy(t *testing.T) {
	f, err := NewFEC(4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Overhead() != 1.75 || f.Rate() != 4.0/7.0 {
		t.Fatalf("overhead %g rate %g", f.Overhead(), f.Rate())
	}
	lb := NominalBudget(0.15)
	plain, err := lb.TxEnergyPerBit(NewQAM(4), NominalBER)
	if err != nil {
		t.Fatal(err)
	}
	coded, err := lb.TxEnergyPerInfoBit(NewQAM(4), NominalBER, f.Rate())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := coded.Joules()/plain.Joules(), f.Overhead(); got < want*0.999 || got > want*1.001 {
		t.Errorf("coded energy ratio %g, want %g", got, want)
	}
	if _, err := lb.TxEnergyPerInfoBit(NewQAM(4), NominalBER, 0); err == nil {
		t.Error("code rate 0 accepted")
	}
	if _, err := lb.TxEnergyPerInfoBit(NewQAM(4), NominalBER, 1.5); err == nil {
		t.Error("code rate > 1 accepted")
	}
}

func TestFECCorrectedCounter(t *testing.T) {
	f, err := NewFEC(2)
	if err != nil {
		t.Fatal(err)
	}
	bits := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	coded := f.AppendEncode(nil, bits)
	coded[3] ^= 1
	if _, _, err := f.AppendDecode(nil, coded); err != nil {
		t.Fatal(err)
	}
	if f.Corrected() != 1 {
		t.Errorf("Corrected() = %d, want 1", f.Corrected())
	}
}
