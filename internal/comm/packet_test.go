package comm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPacketRoundTrip(t *testing.T) {
	p, err := NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	samples := []uint16{0, 1, 512, 1023, 700}
	buf, err := p.Encode(samples)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 0 || f.SampleBits != 10 || len(f.Samples) != len(samples) {
		t.Fatalf("frame header mismatch: %+v", f)
	}
	for i := range samples {
		if f.Samples[i] != samples[i] {
			t.Errorf("sample %d: got %d, want %d", i, f.Samples[i], samples[i])
		}
	}
	// Sequence counter advances.
	buf2, err := p.Encode(samples)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Decode(buf2)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Seq != 1 {
		t.Errorf("second frame seq = %d, want 1", f2.Seq)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, bitsRaw uint8) bool {
		bits := int(bitsRaw%16) + 1
		n := int(nRaw%512) + 1
		p, err := NewPacketizer(bits)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		max := 1<<bits - 1
		samples := make([]uint16, n)
		for i := range samples {
			samples[i] = uint16(rng.Intn(max + 1))
		}
		buf, err := p.Encode(samples)
		if err != nil {
			return false
		}
		fr, err := Decode(buf)
		if err != nil || len(fr.Samples) != n {
			return false
		}
		for i := range samples {
			if fr.Samples[i] != samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPacketCorruptionDetected(t *testing.T) {
	p, err := NewPacketizer(12)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := p.Encode([]uint16{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Flip every bit position one at a time; CRC (or magic/format checks)
	// must catch all single-bit errors.
	for pos := 0; pos < len(buf)*8; pos++ {
		c := make([]byte, len(buf))
		copy(c, buf)
		c[pos/8] ^= 1 << (pos % 8)
		if _, err := Decode(c); err == nil {
			t.Fatalf("single-bit corruption at bit %d not detected", pos)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrShortFrame {
		t.Errorf("nil frame: %v", err)
	}
	if _, err := Decode(make([]byte, 5)); err != ErrShortFrame {
		t.Errorf("short frame: %v", err)
	}
	p, _ := NewPacketizer(8)
	buf, _ := p.Encode([]uint16{1})
	bad := make([]byte, len(buf))
	copy(bad, buf)
	bad[0] = 0x00 // break magic
	if _, err := Decode(bad); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	copy(bad, buf)
	bad[len(bad)-1] ^= 0xFF // break CRC
	if _, err := Decode(bad); err != ErrBadCRC {
		t.Errorf("bad crc: %v", err)
	}
	// Truncated payload: drop a byte and re-checksum won't match either;
	// shorten to below header size instead.
	if _, err := Decode(buf[:8]); err == nil {
		t.Errorf("truncated frame should fail")
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := NewPacketizer(0); err == nil {
		t.Errorf("0-bit samples should be rejected")
	}
	if _, err := NewPacketizer(17); err == nil {
		t.Errorf("17-bit samples should be rejected")
	}
	p, err := NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Encode(nil); err == nil {
		t.Errorf("empty sample vector should fail")
	}
	if _, err := p.Encode([]uint16{1024}); err == nil {
		t.Errorf("out-of-range sample should fail")
	}
}

func TestPackUnpackSamples(t *testing.T) {
	samples := []uint16{0x3, 0x1, 0x0, 0x2, 0x3}
	packed := PackSamples(samples, 2)
	if len(packed) != 2 { // 10 bits → 2 bytes
		t.Fatalf("packed length = %d", len(packed))
	}
	got, err := UnpackSamples(packed, len(samples), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Errorf("sample %d: %d != %d", i, got[i], samples[i])
		}
	}
	if _, err := UnpackSamples(packed, 20, 2); err == nil {
		t.Errorf("unpack beyond data should fail")
	}
}

func TestFrameSizeBits(t *testing.T) {
	// 1024 channels × 10 bits = 1280 payload bytes + 10 header + 4 CRC.
	got := FrameSizeBits(1024, 10)
	want := (10 + 1280 + 4) * 8
	if got != want {
		t.Errorf("FrameSizeBits = %d, want %d", got, want)
	}
	// Overhead fraction at scale must be small (<1%), supporting the
	// paper's T_comm ≈ T_sensing approximation.
	overhead := float64(got-1024*10) / float64(1024*10)
	if overhead > 0.02 {
		t.Errorf("framing overhead %.2f%% too large", overhead*100)
	}
}
