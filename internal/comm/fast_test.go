package comm

import (
	"bytes"
	"math"
	mathbits "math/bits"
	"math/rand"
	"reflect"
	"testing"
)

// TestAppendEncodeFastIdentical pins the word-accumulator encoder
// against the reference encoder: identical frame bytes and sequence
// evolution at every sample width.
func TestAppendEncodeFastIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for bits := 1; bits <= 16; bits++ {
		ref, _ := NewPacketizer(bits)
		fast, _ := NewPacketizer(bits)
		for iter := 0; iter < 20; iter++ {
			n := 1 + rng.Intn(64)
			samples := make([]uint16, n)
			max := int(1)<<bits - 1
			for i := range samples {
				samples[i] = uint16(rng.Intn(max + 1))
			}
			want, err := ref.AppendEncode(nil, samples)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fast.AppendEncodeFast(nil, samples)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("bits=%d iter=%d: fast frame differs\n got %x\nwant %x", bits, iter, got, want)
			}
			if ref.Seq() != fast.Seq() {
				t.Fatalf("bits=%d: seq diverged %d vs %d", bits, ref.Seq(), fast.Seq())
			}
		}
	}
	// Error parity: empty vector and out-of-range samples must reject.
	p, _ := NewPacketizer(4)
	if _, err := p.AppendEncodeFast(nil, nil); err == nil {
		t.Error("empty sample vector accepted")
	}
	if _, err := p.AppendEncodeFast(nil, []uint16{16}); err == nil {
		t.Error("out-of-range sample accepted")
	}
}

// TestDecodeIntoIdentical pins DecodeInto against Decode on valid
// frames and on systematic corruptions: same accept/reject decision for
// every mutation, same decoded frame when accepted.
func TestDecodeIntoIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var scratch []uint16
	for bits := 1; bits <= 16; bits++ {
		p, _ := NewPacketizer(bits)
		samples := make([]uint16, 1+rng.Intn(48))
		for i := range samples {
			samples[i] = uint16(rng.Intn(int(1)<<bits)) & (1<<bits - 1)
		}
		frame, err := p.AppendEncode(nil, samples)
		if err != nil {
			t.Fatal(err)
		}
		check := func(buf []byte) {
			t.Helper()
			want, werr := Decode(buf)
			var got Frame
			var gerr error
			got, scratch, gerr = DecodeInto(scratch, buf)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("bits=%d: accept mismatch: Decode err=%v DecodeInto err=%v", bits, werr, gerr)
			}
			if werr == nil && !reflect.DeepEqual(want, got) {
				t.Fatalf("bits=%d: frame mismatch\n got %+v\nwant %+v", bits, got, want)
			}
		}
		check(frame)
		// Flip one bit in every byte position.
		for i := range frame {
			mut := append([]byte(nil), frame...)
			mut[i] ^= 1 << uint(rng.Intn(8))
			check(mut)
		}
		// Truncations.
		for _, cut := range []int{1, 4, len(frame) - 1, len(frame)} {
			if cut <= len(frame) {
				check(frame[:len(frame)-cut])
			}
		}
	}
}

// TestPackedModemIdentical pins the byte-oriented modem against the
// bit-level path for every k that divides 8: identical symbols
// (bit-for-bit), identical hard decisions after noise, and popcount
// bit-error counts equal to the per-bit comparison.
func TestPackedModemIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, qbits := range []int{2, 4, 8} {
		mod := NewQAM(qbits)
		pm, ok := NewPackedModem(mod)
		if !ok {
			t.Fatalf("QAM%d: packed modem unavailable", 1<<qbits)
		}
		bitModem, err := NewModem(mod)
		if err != nil {
			t.Fatal(err)
		}
		for iter := 0; iter < 50; iter++ {
			data := make([]byte, 1+rng.Intn(96))
			rng.Read(data)

			refBits := AppendBytesAsBits(nil, data)
			refSyms, err := bitModem.AppendModulate(nil, refBits)
			if err != nil {
				t.Fatal(err)
			}
			gotSyms := pm.AppendModulateBytes(nil, data)
			if len(refSyms) != len(gotSyms) {
				t.Fatalf("QAM%d: %d symbols vs %d", 1<<qbits, len(gotSyms), len(refSyms))
			}
			for i := range refSyms {
				if math.Float64bits(refSyms[i].I) != math.Float64bits(gotSyms[i].I) ||
					math.Float64bits(refSyms[i].Q) != math.Float64bits(gotSyms[i].Q) {
					t.Fatalf("QAM%d sym %d: %+v vs %+v", 1<<qbits, i, gotSyms[i], refSyms[i])
				}
			}

			// Same noise on both symbol streams (twin seeded channels), then
			// demodulate both ways.
			chA := NewAWGNChannel(4, int64(iter))
			chB := NewAWGNChannel(4, int64(iter))
			chA.TransmitInPlace(refSyms)
			chB.TransmitInPlaceFast(gotSyms)
			rxBits := bitModem.AppendDemodulate(nil, refSyms)
			rxBytes := AppendBitsAsBytes(nil, rxBits)
			gotBytes := pm.AppendDemodulateBytes(nil, gotSyms)
			if !bytes.Equal(rxBytes, gotBytes) {
				t.Fatalf("QAM%d: demodulated bytes differ\n got %x\nwant %x", 1<<qbits, gotBytes, rxBytes)
			}

			// Bit-error accounting: XOR+popcount over bytes must equal the
			// scalar per-bit comparison (k | 8 means no pad bits exist).
			perBit := 0
			for i := range refBits {
				if refBits[i] != rxBits[i] {
					perBit++
				}
			}
			pop := 0
			for i := range data {
				pop += mathbits.OnesCount8(data[i] ^ gotBytes[i])
			}
			if perBit != pop {
				t.Fatalf("QAM%d: popcount errors %d != per-bit %d", 1<<qbits, pop, perBit)
			}
		}
	}
	// Non-applicable modulations must be declined.
	for _, m := range []Modulation{OOK{}, NewQAM(1), NewQAM(6)} {
		if _, ok := NewPackedModem(m); ok {
			t.Errorf("%s: packed modem should not apply", m.Name())
		}
	}
}

// TestTransmitInPlaceFastIdentical pins the fast AWGN transmit against
// the stock one on twin channels.
func TestTransmitInPlaceFastIdentical(t *testing.T) {
	a := NewAWGNChannel(15.8, 77)
	b := NewAWGNChannel(15.8, 77)
	sa := make([]Symbol, 4096)
	sb := make([]Symbol, 4096)
	a.TransmitInPlace(sa)
	b.TransmitInPlaceFast(sb)
	for i := range sa {
		if math.Float64bits(sa[i].I) != math.Float64bits(sb[i].I) ||
			math.Float64bits(sa[i].Q) != math.Float64bits(sb[i].Q) {
			t.Fatalf("symbol %d: %+v vs %+v", i, sb[i], sa[i])
		}
	}
	if a.Snapshot() != b.Snapshot() {
		t.Fatal("noise-stream positions diverged")
	}
}

// TestFECFramesIdentical pins the frame-slab codec against per-frame
// scalar calls including the transport's modem-alignment padding.
func TestFECFramesIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, depth := range []int{1, 4} {
		for _, padTo := range []int{1, 4, 6} {
			ref, _ := NewFEC(depth)
			slab, _ := NewFEC(depth)
			const frameBits = 72
			const nFrames = 5
			src := make([]byte, frameBits*nFrames)
			for i := range src {
				src[i] = byte(rng.Intn(2))
			}
			// Reference: encode+pad each frame separately.
			var want []byte
			for f := 0; f < nFrames; f++ {
				enc := ref.AppendEncode(nil, src[f*frameBits:(f+1)*frameBits])
				if padTo > 1 {
					for len(enc)%padTo != 0 {
						enc = append(enc, 0)
					}
				}
				want = append(want, enc...)
			}
			got, err := slab.AppendEncodeFrames(nil, src, frameBits, padTo)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("depth=%d padTo=%d: coded slabs differ", depth, padTo)
			}

			// Corrupt a few bits, then decode both ways.
			airBits := len(got) / nFrames
			codedBits := ref.CodedBits(frameBits)
			for i := 0; i < 8; i++ {
				got[rng.Intn(len(got))] ^= 1
			}
			var wantDec []byte
			wantFixed := make([]int, nFrames)
			for f := 0; f < nFrames; f++ {
				var err error
				wantDec, wantFixed[f], err = ref.AppendDecode(wantDec, got[f*airBits:f*airBits+codedBits])
				if err != nil {
					t.Fatal(err)
				}
			}
			gotFixed := make([]int, nFrames)
			gotDec, err := slab.AppendDecodeFrames(nil, got, airBits, codedBits, gotFixed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantDec, gotDec) {
				t.Fatalf("depth=%d padTo=%d: decoded slabs differ", depth, padTo)
			}
			if !reflect.DeepEqual(wantFixed, gotFixed) {
				t.Fatalf("depth=%d padTo=%d: fixed counts %v vs %v", depth, padTo, gotFixed, wantFixed)
			}
		}
	}
}

func benchSamples(n, bits int) []uint16 {
	rng := rand.New(rand.NewSource(1))
	s := make([]uint16, n)
	for i := range s {
		s[i] = uint16(rng.Intn(int(1) << bits))
	}
	return s
}

func BenchmarkAppendEncode(b *testing.B) {
	p, _ := NewPacketizer(10)
	samples := benchSamples(32, 10)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = p.AppendEncode(buf[:0], samples)
	}
}

func BenchmarkAppendEncodeFast(b *testing.B) {
	p, _ := NewPacketizer(10)
	samples := benchSamples(32, 10)
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, _ = p.AppendEncodeFast(buf[:0], samples)
	}
}

func BenchmarkDecode(b *testing.B) {
	p, _ := NewPacketizer(10)
	frame, _ := p.AppendEncode(nil, benchSamples(32, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	p, _ := NewPacketizer(10)
	frame, _ := p.AppendEncode(nil, benchSamples(32, 10))
	scratch := make([]uint16, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		_, scratch, err = DecodeInto(scratch, frame)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModulateBits(b *testing.B) {
	m, _ := NewModem(NewQAM(4))
	data := make([]byte, 54)
	rand.New(rand.NewSource(1)).Read(data)
	bits := AppendBytesAsBits(nil, data)
	syms := make([]Symbol, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bb := AppendBytesAsBits(bits[:0], data)
		syms, _ = m.AppendModulate(syms[:0], bb)
	}
}

func BenchmarkModulatePacked(b *testing.B) {
	pm, _ := NewPackedModem(NewQAM(4))
	data := make([]byte, 54)
	rand.New(rand.NewSource(1)).Read(data)
	syms := make([]Symbol, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		syms = pm.AppendModulateBytes(syms[:0], data)
	}
}

func BenchmarkDemodulateBits(b *testing.B) {
	m, _ := NewModem(NewQAM(4))
	data := make([]byte, 54)
	rand.New(rand.NewSource(1)).Read(data)
	syms, _ := m.AppendModulate(nil, AppendBytesAsBits(nil, data))
	NewAWGNChannel(15.8, 1).TransmitInPlace(syms)
	bits := make([]byte, 0, 512)
	out := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bits = m.AppendDemodulate(bits[:0], syms)
		out = AppendBitsAsBytes(out[:0], bits)
	}
}

func BenchmarkDemodulatePacked(b *testing.B) {
	pm, _ := NewPackedModem(NewQAM(4))
	data := make([]byte, 54)
	rand.New(rand.NewSource(1)).Read(data)
	syms := pm.AppendModulateBytes(nil, data)
	NewAWGNChannel(15.8, 1).TransmitInPlace(syms)
	out := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out = pm.AppendDemodulateBytes(out[:0], syms)
	}
}

// TestTransmitSlabFastIdentical pins the slab AWGN path against the
// scalar channel: identical noisy symbols and identical serialized
// channel state (draw counts included).
func TestTransmitSlabFastIdentical(t *testing.T) {
	ref := NewAWGNChannel(10, 77)
	fast := NewAWGNChannel(10, 77)
	var scratch []float64
	rng := rand.New(rand.NewSource(5))
	for block := 0; block < 50; block++ {
		n := 1 + rng.Intn(200)
		a := make([]Symbol, n)
		for i := range a {
			a[i] = Symbol{I: rng.NormFloat64(), Q: rng.NormFloat64()}
		}
		b := append([]Symbol(nil), a...)
		ref.TransmitInPlace(a)
		scratch = fast.TransmitSlabFast(b, scratch)
		for i := range a {
			if math.Float64bits(a[i].I) != math.Float64bits(b[i].I) ||
				math.Float64bits(a[i].Q) != math.Float64bits(b[i].Q) {
				t.Fatalf("block %d symbol %d: %+v != %+v", block, i, b[i], a[i])
			}
		}
	}
	if ref.Snapshot() != fast.Snapshot() {
		t.Fatalf("channel states diverge: %+v vs %+v", fast.Snapshot(), ref.Snapshot())
	}
}
