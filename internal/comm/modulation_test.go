package comm

import (
	"math"
	"testing"
	"testing/quick"

	"mindful/internal/units"
)

func TestOOKRequiredEbN0(t *testing.T) {
	// OOK: Pb = Q(√(Eb/N0)); at 1e-6, √(Eb/N0) = QInv(1e-6) ≈ 4.753,
	// so Eb/N0 ≈ 22.6 (13.5 dB).
	got := OOK{}.RequiredEbN0(1e-6)
	if math.Abs(got-22.595) > 0.05 {
		t.Errorf("OOK Eb/N0 @1e-6 = %v, want ≈22.6", got)
	}
	// Round trip.
	if ber := (OOK{}).BER(got); math.Abs(ber-1e-6) > 1e-8 {
		t.Errorf("round trip BER = %v", ber)
	}
}

func TestBPSKKnownPoint(t *testing.T) {
	// BPSK @1e-6 requires ≈10.53 dB.
	got := units.ToDB(NewQAM(1).RequiredEbN0(1e-6))
	if math.Abs(got-10.53) > 0.05 {
		t.Errorf("BPSK Eb/N0 @1e-6 = %v dB, want ≈10.53", got)
	}
}

func TestQAM16KnownPoint(t *testing.T) {
	// Gray-coded 16-QAM @1e-6 requires ≈14.4 dB.
	got := units.ToDB(NewQAM(4).RequiredEbN0(1e-6))
	if math.Abs(got-14.4) > 0.1 {
		t.Errorf("16-QAM Eb/N0 @1e-6 = %v dB, want ≈14.4", got)
	}
}

func TestQAMRequiredEbN0MonotoneInBits(t *testing.T) {
	// Denser constellations need more energy per bit (this drives the
	// paper's Fig. 7 staircase).
	prev := 0.0
	for bits := 2; bits <= 10; bits++ {
		cur := NewQAM(bits).RequiredEbN0(NominalBER)
		if cur <= prev {
			t.Errorf("Eb/N0 not increasing at %d bits: %v <= %v", bits, cur, prev)
		}
		prev = cur
	}
}

func TestBERMonotoneInEbN0Property(t *testing.T) {
	mods := []Modulation{OOK{}, NewQAM(1), NewQAM(2), NewQAM(4), NewQAM(6)}
	f := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 40)) + 0.1
		y := x + math.Abs(math.Mod(b, 40)) + 0.1
		for _, m := range mods {
			if m.BER(x) < m.BER(y)-1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBERCeilingAndZeroSNR(t *testing.T) {
	for _, m := range []Modulation{OOK{}, NewQAM(2), NewQAM(4)} {
		if got := m.BER(0); got != 0.5 {
			t.Errorf("%s BER at 0 SNR = %v, want 0.5", m.Name(), got)
		}
		if got := m.BER(-3); got != 0.5 {
			t.Errorf("%s BER at negative SNR = %v, want 0.5", m.Name(), got)
		}
	}
}

func TestRequiredEbN0RoundTripProperty(t *testing.T) {
	// The Gray-coded approximation is only invertible where the clamped
	// coefficient does not bite: keep BER ≤ 0.1 (well above any practical
	// operating point).
	f := func(u float64) bool {
		ber := math.Abs(math.Mod(u, 0.1)) + 1e-9
		if ber >= 0.1 {
			return true
		}
		for _, bits := range []int{1, 2, 3, 4, 6, 8} {
			m := NewQAM(bits)
			e := m.RequiredEbN0(ber)
			if math.Abs(m.BER(e)-ber) > 1e-6*(1+ber) && math.Abs(m.BER(e)-ber) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadBERPanics(t *testing.T) {
	for _, ber := range []float64{0, 0.5, 1, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RequiredEbN0(%v) should panic", ber)
				}
			}()
			NewQAM(4).RequiredEbN0(ber)
		}()
	}
}

func TestNewQAMValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewQAM(0) should panic")
		}
	}()
	NewQAM(0)
}

func TestModulationNames(t *testing.T) {
	if got := (OOK{}).Name(); got != "OOK" {
		t.Errorf("OOK name = %q", got)
	}
	if got := NewQAM(1).Name(); got != "BPSK" {
		t.Errorf("1-bit QAM name = %q", got)
	}
	if got := NewQAM(4).Name(); got != "16-QAM" {
		t.Errorf("4-bit QAM name = %q", got)
	}
	if got := NewQAM(4).M(); got != 16 {
		t.Errorf("M = %d", got)
	}
}

func TestBitsPerSymbolStaircase(t *testing.T) {
	// The paper's rule: n ≤ 1024 → 1 bit; 1024 < n ≤ 2048 → 2 bits; …
	tests := []struct{ n, want int }{
		{1, 1}, {1024, 1}, {1025, 2}, {2048, 2}, {2049, 3}, {3072, 3}, {8192, 8},
	}
	for _, tt := range tests {
		if got := BitsPerSymbolFor(tt.n, 1024); got != tt.want {
			t.Errorf("BitsPerSymbolFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("non-positive channels should panic")
			}
		}()
		BitsPerSymbolFor(0, 1024)
	}()
}
