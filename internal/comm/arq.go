package comm

import (
	"fmt"
	"time"

	"mindful/internal/obs"
	"mindful/internal/units"
)

// Link-layer automatic repeat request. The wearable detects missing or
// corrupt frames (CRC failure, sequence gap) and NACKs them over the
// downlink; the implant retransmits from a bounded window. The model here
// is the implant-side loop with immediate receiver feedback: one Send
// drives attempts until the frame is accepted or the budget is exhausted.
// The reverse (NACK) channel is assumed reliable and is accounted only as
// a NACK count — its energy lives on the wearable, outside the implant's
// Section 3.2 envelope. Retransmissions, by contrast, cost real implant
// energy, surfaced through ARQStats.EnergyOverhead and the per-frame
// latency they add, bounded by the config so the power and latency
// envelope holds even under sustained loss.

// ARQConfig bounds the recovery loop.
type ARQConfig struct {
	// MaxRetries is the per-frame retransmission budget (0 disables ARQ:
	// every frame is sent exactly once).
	MaxRetries int
	// SlotTime is the latency cost of one transmission attempt (frame
	// airtime + NACK turnaround). Zero disables latency accounting.
	SlotTime time.Duration
	// LatencyBudget caps the per-frame recovery latency. With a non-zero
	// SlotTime the effective retry budget is the smaller of MaxRetries
	// and the retries that fit the budget.
	LatencyBudget time.Duration
}

// Enabled reports whether the config turns recovery on.
func (c ARQConfig) Enabled() bool { return c.MaxRetries > 0 }

// Validate checks the configuration.
func (c ARQConfig) Validate() error {
	if c.MaxRetries < 0 {
		return fmt.Errorf("comm: negative ARQ retry budget %d", c.MaxRetries)
	}
	if c.SlotTime < 0 || c.LatencyBudget < 0 {
		return fmt.Errorf("comm: negative ARQ timing")
	}
	return nil
}

// EffectiveRetries returns the retry budget after applying the latency
// cap: with slot time s and budget L, at most ⌊L/s⌋ total attempts fit,
// i.e. ⌊L/s⌋−1 retries.
func (c ARQConfig) EffectiveRetries() int {
	r := c.MaxRetries
	if c.SlotTime > 0 && c.LatencyBudget > 0 {
		if byLatency := int(c.LatencyBudget/c.SlotTime) - 1; byLatency < r {
			r = byLatency
		}
	}
	if r < 0 {
		r = 0
	}
	return r
}

// ARQStats accounts the recovery loop.
type ARQStats struct {
	// Sent counts frames offered to Send; Delivered and Failed its two
	// outcomes.
	Sent      int64
	Delivered int64
	Failed    int64
	// Recovered counts frames delivered only thanks to a retransmission.
	Recovered int64
	// Retransmits counts extra transmissions beyond the first attempt;
	// RetransmitBits the on-air bits they burned.
	Retransmits    int64
	RetransmitBits int64
	// NACKs counts receiver rejections that triggered a retransmission.
	NACKs int64
}

// EnergyOverhead returns the extra radio energy retransmissions cost at a
// constant energy per bit — the quantity that must stay inside the
// Section 3.2 power envelope.
func (s ARQStats) EnergyOverhead(eb units.Energy) units.Energy {
	return units.Joules(float64(s.RetransmitBits) * eb.Joules())
}

// RecoveryRate returns Delivered/Sent (0 when nothing was sent).
func (s ARQStats) RecoveryRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Sent)
}

// Attempt transmits one frame over the unreliable link and reports
// whether the receiver accepted it. The implementation typically runs the
// full modulate → channel → demodulate → decode chain.
type Attempt func(frame []byte) bool

// ARQ is one sender's bounded recovery loop.
type ARQ struct {
	cfg     ARQConfig
	retries int
	stats   ARQStats

	retransmits, recovered, failures *obs.Counter
}

// NewARQ returns a recovery loop for the config.
func NewARQ(cfg ARQConfig) (*ARQ, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &ARQ{cfg: cfg, retries: cfg.EffectiveRetries()}, nil
}

// SetObserver wires the loop to an observability sink: retransmission,
// recovery and failure counters. Pass nil to detach.
func (a *ARQ) SetObserver(o *obs.Observer) {
	if o == nil {
		a.retransmits, a.recovered, a.failures = nil, nil, nil
		return
	}
	m := o.Metrics
	a.retransmits = m.Counter("comm_arq_retransmits_total")
	a.recovered = m.Counter("comm_arq_frames_recovered_total")
	a.failures = m.Counter("comm_arq_frames_failed_total")
	m.Help("comm_arq_retransmits_total", "Extra transmissions beyond the first attempt.")
	m.Help("comm_arq_frames_recovered_total", "Frames delivered only via retransmission.")
	m.Help("comm_arq_frames_failed_total", "Frames abandoned after the retry budget.")
}

// Config returns the loop's configuration.
func (a *ARQ) Config() ARQConfig { return a.cfg }

// Stats returns the accounting so far.
func (a *ARQ) Stats() ARQStats { return a.stats }

// RestoreStats overwrites the accounting — used when a checkpointed
// sender is rebuilt so cumulative counters continue rather than reset.
func (a *ARQ) RestoreStats(st ARQStats) { a.stats = st }

// Send pushes one encoded frame through try until the receiver accepts it
// or the retry budget runs out. It returns the number of transmissions
// used and whether the frame was delivered. airBits is the on-air cost of
// one attempt (coded frame bits including padding), used for the
// retransmission energy accounting.
func (a *ARQ) Send(frame []byte, airBits int, try Attempt) (attempts int, delivered bool) {
	a.stats.Sent++
	for attempts = 1; ; attempts++ {
		if try(frame) {
			a.stats.Delivered++
			if attempts > 1 {
				a.stats.Recovered++
				a.recovered.Inc()
			}
			return attempts, true
		}
		if attempts > a.retries {
			a.stats.Failed++
			a.failures.Inc()
			return attempts, false
		}
		a.stats.NACKs++
		a.stats.Retransmits++
		a.stats.RetransmitBits += int64(airBits)
		a.retransmits.Inc()
	}
}

// Latency returns the recovery latency of a frame that took the given
// number of attempts (0 when SlotTime is unset).
func (a *ARQ) Latency(attempts int) time.Duration {
	return time.Duration(attempts) * a.cfg.SlotTime
}
