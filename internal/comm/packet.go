package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The communication-centric dataflow's only computation is digitizing and
// packetizing raw neural data (Section 3.1). Frame layout (big endian):
//
//	magic   uint16  0xB C 1 F
//	seq     uint32  frame sequence number
//	chans   uint16  number of channels in the frame
//	bits    uint8   sample bit width d (1..16)
//	flags   uint8   reserved
//	payload []byte  chans samples packed at d bits each, MSB first
//	crc     uint32  CRC-32 (IEEE) over everything above

// FrameMagic identifies a MINDFUL uplink frame.
const FrameMagic uint16 = 0xBC1F

// Frame flag bits.
const (
	// FlagConcealed marks a frame synthesized by the receiver's gap
	// concealment rather than received over the air; decoders should
	// discount its samples accordingly. It never appears on the wire.
	FlagConcealed byte = 0x01
)

const frameHeaderLen = 2 + 4 + 2 + 1 + 1

// Frame is one uplink packet of digitized neural samples.
type Frame struct {
	Seq        uint32
	SampleBits int
	Samples    []uint16
	Flags      byte
}

// Packetizer frames sample vectors for transmission, maintaining the frame
// sequence counter.
type Packetizer struct {
	// SampleBits is the digitized sample width d (Eq. 6); 1..16.
	SampleBits int
	seq        uint32
}

// NewPacketizer returns a packetizer for d-bit samples.
func NewPacketizer(sampleBits int) (*Packetizer, error) {
	if sampleBits < 1 || sampleBits > 16 {
		return nil, fmt.Errorf("comm: sample bits %d outside 1..16", sampleBits)
	}
	return &Packetizer{SampleBits: sampleBits}, nil
}

// Seq returns the next sequence number the packetizer will assign — its
// only mutable state, exposed for checkpointing.
func (p *Packetizer) Seq() uint32 { return p.seq }

// SetSeq positions the sequence counter, so a restored packetizer
// continues exactly where the snapshotted one stopped.
func (p *Packetizer) SetSeq(seq uint32) { p.seq = seq }

// Encode frames one sample vector (one sample per channel) and advances the
// sequence counter.
func (p *Packetizer) Encode(samples []uint16) ([]byte, error) {
	if len(samples) == 0 {
		return nil, errors.New("comm: empty sample vector")
	}
	return p.AppendEncode(make([]byte, 0, frameHeaderLen+(len(samples)*p.SampleBits+7)/8+4), samples)
}

// AppendEncode frames one sample vector, appending the encoded frame to
// dst, and advances the sequence counter. Passing a recycled buffer
// re-sliced to [:0] makes the steady-state encode path allocation-free.
func (p *Packetizer) AppendEncode(dst []byte, samples []uint16) ([]byte, error) {
	if len(samples) == 0 {
		return nil, errors.New("comm: empty sample vector")
	}
	if err := checkSamples(samples, p.SampleBits); err != nil {
		return nil, err
	}
	dst = appendFrame(dst, p.seq, p.SampleBits, 0, samples)
	p.seq++
	return dst, nil
}

// EncodeFrame canonically serializes a frame with an explicit sequence
// number and flags — the stateless counterpart of Packetizer.Encode.
// Unlike the packetizer it accepts an empty sample vector, so every frame
// Decode accepts re-encodes (the fuzzing round-trip invariant).
func EncodeFrame(fr Frame) ([]byte, error) {
	if fr.SampleBits < 1 || fr.SampleBits > 16 {
		return nil, fmt.Errorf("comm: sample bits %d outside 1..16", fr.SampleBits)
	}
	if err := checkSamples(fr.Samples, fr.SampleBits); err != nil {
		return nil, err
	}
	return appendFrame(nil, fr.Seq, fr.SampleBits, fr.Flags, fr.Samples), nil
}

// checkSamples verifies the channel count and per-sample range for a
// d-bit frame.
func checkSamples(samples []uint16, sampleBits int) error {
	if len(samples) > 0xFFFF {
		return fmt.Errorf("comm: %d channels exceeds frame limit", len(samples))
	}
	max := uint16(1)<<sampleBits - 1
	if sampleBits == 16 {
		max = 0xFFFF
	}
	for i, s := range samples {
		if s > max {
			return fmt.Errorf("comm: sample %d value %d exceeds %d bits", i, s, sampleBits)
		}
	}
	return nil
}

// appendFrame appends one wire-format frame to dst without intermediate
// buffers.
func appendFrame(dst []byte, seq uint32, sampleBits int, flags byte, samples []uint16) []byte {
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, FrameMagic)
	dst = binary.BigEndian.AppendUint32(dst, seq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(samples)))
	dst = append(dst, byte(sampleBits), flags)
	dst = AppendPackSamples(dst, samples, sampleBits)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// FrameSizeBits returns the on-air size in bits of a frame carrying the
// given number of channels at d bits per sample, including header and CRC.
// This is the per-frame overhead the throughput analysis can account for.
func FrameSizeBits(channels, sampleBits int) int {
	payload := (channels*sampleBits + 7) / 8
	return (frameHeaderLen + payload + 4) * 8
}

// Decoding errors.
var (
	ErrShortFrame = errors.New("comm: frame truncated")
	ErrBadMagic   = errors.New("comm: bad frame magic")
	ErrBadCRC     = errors.New("comm: frame CRC mismatch")
)

// Decode parses and verifies one frame produced by Encode.
func Decode(buf []byte) (Frame, error) {
	if len(buf) < frameHeaderLen+4 {
		return Frame{}, ErrShortFrame
	}
	if binary.BigEndian.Uint16(buf[0:2]) != FrameMagic {
		return Frame{}, ErrBadMagic
	}
	body, trailer := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return Frame{}, ErrBadCRC
	}
	seq := binary.BigEndian.Uint32(buf[2:6])
	chans := int(binary.BigEndian.Uint16(buf[6:8]))
	bits := int(buf[8])
	flags := buf[9]
	if bits < 1 || bits > 16 {
		return Frame{}, fmt.Errorf("comm: frame sample bits %d invalid", bits)
	}
	payload := body[frameHeaderLen:]
	if want := (chans*bits + 7) / 8; len(payload) != want {
		return Frame{}, fmt.Errorf("comm: payload %d bytes, want %d", len(payload), want)
	}
	// Enforce canonical encoding: the final byte's padding bits must be
	// zero, so every accepted frame re-encodes to the same bytes.
	if pad := len(payload)*8 - chans*bits; pad > 0 && payload[len(payload)-1]&(1<<pad-1) != 0 {
		return Frame{}, fmt.Errorf("comm: nonzero payload padding bits")
	}
	samples, err := UnpackSamples(payload, chans, bits)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Seq: seq, SampleBits: bits, Samples: samples, Flags: flags}, nil
}

// PackSamples packs values at the given bit width, MSB first, padding the
// final byte with zeros.
func PackSamples(samples []uint16, bits int) []byte {
	return AppendPackSamples(make([]byte, 0, (len(samples)*bits+7)/8), samples, bits)
}

// AppendPackSamples appends the packed representation of samples to dst.
func AppendPackSamples(dst []byte, samples []uint16, bits int) []byte {
	base := len(dst)
	for n := (len(samples)*bits + 7) / 8; n > 0; n-- {
		dst = append(dst, 0)
	}
	pos := 0
	for _, s := range samples {
		for b := bits - 1; b >= 0; b-- {
			if s>>b&1 != 0 {
				dst[base+pos/8] |= 1 << (7 - pos%8)
			}
			pos++
		}
	}
	return dst
}

// UnpackSamples reverses PackSamples for a known sample count.
func UnpackSamples(data []byte, count, bits int) ([]uint16, error) {
	if need := (count*bits + 7) / 8; len(data) < need {
		return nil, fmt.Errorf("comm: %d bytes too short for %d×%d-bit samples", len(data), count, bits)
	}
	out := make([]uint16, count)
	pos := 0
	for i := range out {
		var v uint16
		for b := 0; b < bits; b++ {
			v <<= 1
			if data[pos/8]>>(7-pos%8)&1 != 0 {
				v |= 1
			}
			pos++
		}
		out[i] = v
	}
	return out, nil
}
