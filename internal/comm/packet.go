package comm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The communication-centric dataflow's only computation is digitizing and
// packetizing raw neural data (Section 3.1). Frame layout (big endian):
//
//	magic   uint16  0xB C 1 F
//	seq     uint32  frame sequence number
//	chans   uint16  number of channels in the frame
//	bits    uint8   sample bit width d (1..16)
//	flags   uint8   reserved
//	payload []byte  chans samples packed at d bits each, MSB first
//	crc     uint32  CRC-32 (IEEE) over everything above

// FrameMagic identifies a MINDFUL uplink frame.
const FrameMagic uint16 = 0xBC1F

const frameHeaderLen = 2 + 4 + 2 + 1 + 1

// Frame is one uplink packet of digitized neural samples.
type Frame struct {
	Seq        uint32
	SampleBits int
	Samples    []uint16
	Flags      byte
}

// Packetizer frames sample vectors for transmission, maintaining the frame
// sequence counter.
type Packetizer struct {
	// SampleBits is the digitized sample width d (Eq. 6); 1..16.
	SampleBits int
	seq        uint32
}

// NewPacketizer returns a packetizer for d-bit samples.
func NewPacketizer(sampleBits int) (*Packetizer, error) {
	if sampleBits < 1 || sampleBits > 16 {
		return nil, fmt.Errorf("comm: sample bits %d outside 1..16", sampleBits)
	}
	return &Packetizer{SampleBits: sampleBits}, nil
}

// Encode frames one sample vector (one sample per channel) and advances the
// sequence counter.
func (p *Packetizer) Encode(samples []uint16) ([]byte, error) {
	if len(samples) == 0 {
		return nil, errors.New("comm: empty sample vector")
	}
	if len(samples) > 0xFFFF {
		return nil, fmt.Errorf("comm: %d channels exceeds frame limit", len(samples))
	}
	max := uint16(1)<<p.SampleBits - 1
	if p.SampleBits == 16 {
		max = 0xFFFF
	}
	for i, s := range samples {
		if s > max {
			return nil, fmt.Errorf("comm: sample %d value %d exceeds %d bits", i, s, p.SampleBits)
		}
	}
	payload := PackSamples(samples, p.SampleBits)
	buf := make([]byte, 0, frameHeaderLen+len(payload)+4)
	buf = binary.BigEndian.AppendUint16(buf, FrameMagic)
	buf = binary.BigEndian.AppendUint32(buf, p.seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(samples)))
	buf = append(buf, byte(p.SampleBits), 0)
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	p.seq++
	return buf, nil
}

// FrameSizeBits returns the on-air size in bits of a frame carrying the
// given number of channels at d bits per sample, including header and CRC.
// This is the per-frame overhead the throughput analysis can account for.
func FrameSizeBits(channels, sampleBits int) int {
	payload := (channels*sampleBits + 7) / 8
	return (frameHeaderLen + payload + 4) * 8
}

// Decoding errors.
var (
	ErrShortFrame = errors.New("comm: frame truncated")
	ErrBadMagic   = errors.New("comm: bad frame magic")
	ErrBadCRC     = errors.New("comm: frame CRC mismatch")
)

// Decode parses and verifies one frame produced by Encode.
func Decode(buf []byte) (Frame, error) {
	if len(buf) < frameHeaderLen+4 {
		return Frame{}, ErrShortFrame
	}
	if binary.BigEndian.Uint16(buf[0:2]) != FrameMagic {
		return Frame{}, ErrBadMagic
	}
	body, trailer := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return Frame{}, ErrBadCRC
	}
	seq := binary.BigEndian.Uint32(buf[2:6])
	chans := int(binary.BigEndian.Uint16(buf[6:8]))
	bits := int(buf[8])
	flags := buf[9]
	if bits < 1 || bits > 16 {
		return Frame{}, fmt.Errorf("comm: frame sample bits %d invalid", bits)
	}
	payload := body[frameHeaderLen:]
	if want := (chans*bits + 7) / 8; len(payload) != want {
		return Frame{}, fmt.Errorf("comm: payload %d bytes, want %d", len(payload), want)
	}
	samples, err := UnpackSamples(payload, chans, bits)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Seq: seq, SampleBits: bits, Samples: samples, Flags: flags}, nil
}

// PackSamples packs values at the given bit width, MSB first, padding the
// final byte with zeros.
func PackSamples(samples []uint16, bits int) []byte {
	out := make([]byte, (len(samples)*bits+7)/8)
	pos := 0
	for _, s := range samples {
		for b := bits - 1; b >= 0; b-- {
			if s>>b&1 != 0 {
				out[pos/8] |= 1 << (7 - pos%8)
			}
			pos++
		}
	}
	return out
}

// UnpackSamples reverses PackSamples for a known sample count.
func UnpackSamples(data []byte, count, bits int) ([]uint16, error) {
	if need := (count*bits + 7) / 8; len(data) < need {
		return nil, fmt.Errorf("comm: %d bytes too short for %d×%d-bit samples", len(data), count, bits)
	}
	out := make([]uint16, count)
	pos := 0
	for i := range out {
		var v uint16
		for b := 0; b < bits; b++ {
			v <<= 1
			if data[pos/8]>>(7-pos%8)&1 != 0 {
				v |= 1
			}
			pos++
		}
		out[i] = v
	}
	return out, nil
}
