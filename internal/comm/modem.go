package comm

import (
	"fmt"
	"math"
	"math/rand"

	"mindful/internal/detrand"
)

// Symbol is one complex baseband symbol.
type Symbol struct {
	I, Q float64
}

// Modem turns bit streams into baseband symbols and back. All modems are
// normalized to unit average energy per bit (Eb = 1), so an AWGN channel
// with noise density N0 = 1/(Eb/N0) reproduces a chosen operating point.
//
// Bits are represented as byte slices whose elements are 0 or 1.
//
// The Append variants write into a caller-supplied buffer and are the
// zero-allocation hot path: pass a recycled slice (e.g. from GetSymbolBuf
// / GetBitBuf) re-sliced to [:0] and no per-call allocation occurs once
// the buffer has grown to steady-state capacity.
type Modem interface {
	Modulation
	// Modulate maps bits to symbols. len(bits) must be a multiple of
	// BitsPerSymbol.
	Modulate(bits []byte) ([]Symbol, error)
	// AppendModulate appends the symbols for bits to dst and returns the
	// extended slice.
	AppendModulate(dst []Symbol, bits []byte) ([]Symbol, error)
	// Demodulate maps received symbols back to the most likely bits.
	Demodulate(syms []Symbol) []byte
	// AppendDemodulate appends the most likely bits for syms to dst and
	// returns the extended slice.
	AppendDemodulate(dst []byte, syms []Symbol) []byte
}

// NewModem returns a bit-accurate modem for the given modulation. OOK and
// QAM with an even number of bits per symbol (square constellations) plus
// BPSK are supported.
func NewModem(m Modulation) (Modem, error) {
	switch mod := m.(type) {
	case OOK:
		return ookModem{}, nil
	case QAM:
		if mod.Bits == 1 {
			return newBPSK(), nil
		}
		if mod.Bits%2 != 0 {
			return nil, fmt.Errorf("comm: bit-level modem supports square QAM only (even bits/symbol), got %d", mod.Bits)
		}
		return newQAMModem(mod.Bits), nil
	default:
		return nil, fmt.Errorf("comm: no modem for modulation %s", m.Name())
	}
}

type ookModem struct{ OOK }

func (m ookModem) Modulate(bits []byte) ([]Symbol, error) {
	return m.AppendModulate(make([]Symbol, 0, len(bits)), bits)
}

func (ookModem) AppendModulate(dst []Symbol, bits []byte) ([]Symbol, error) {
	if err := checkBits(bits, 1); err != nil {
		return nil, err
	}
	// Amplitudes {0, √2}: average symbol energy (0 + 2)/2 = 1 = Eb.
	amp := math.Sqrt2
	for _, b := range bits {
		if b != 0 {
			dst = append(dst, Symbol{I: amp})
		} else {
			dst = append(dst, Symbol{})
		}
	}
	return dst, nil
}

func (m ookModem) Demodulate(syms []Symbol) []byte {
	return m.AppendDemodulate(make([]byte, 0, len(syms)), syms)
}

func (ookModem) AppendDemodulate(dst []byte, syms []Symbol) []byte {
	thr := math.Sqrt2 / 2
	for _, s := range syms {
		if s.I > thr {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

type bpskModem struct{ QAM }

func newBPSK() bpskModem { return bpskModem{QAM{Bits: 1}} }

func (m bpskModem) Modulate(bits []byte) ([]Symbol, error) {
	return m.AppendModulate(make([]Symbol, 0, len(bits)), bits)
}

func (bpskModem) AppendModulate(dst []Symbol, bits []byte) ([]Symbol, error) {
	if err := checkBits(bits, 1); err != nil {
		return nil, err
	}
	for _, b := range bits {
		if b != 0 {
			dst = append(dst, Symbol{I: 1})
		} else {
			dst = append(dst, Symbol{I: -1})
		}
	}
	return dst, nil
}

func (m bpskModem) Demodulate(syms []Symbol) []byte {
	return m.AppendDemodulate(make([]byte, 0, len(syms)), syms)
}

func (bpskModem) AppendDemodulate(dst []byte, syms []Symbol) []byte {
	for _, s := range syms {
		if s.I > 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// qamModem is a square M-QAM modem with independent Gray-coded PAM on each
// axis, normalized to Eb = 1.
type qamModem struct {
	QAM
	levels    int       // per-axis levels L = 2^(Bits/2)
	scale     float64   // amplitude scale for Eb = 1
	grayToIdx []int     // gray code → level index
	idxToGray []int     // level index → gray code
	amps      []float64 // level index → amplitude
}

func newQAMModem(bits int) *qamModem {
	half := bits / 2
	l := 1 << half
	m := &qamModem{
		QAM:       QAM{Bits: bits},
		levels:    l,
		grayToIdx: make([]int, l),
		idxToGray: make([]int, l),
		amps:      make([]float64, l),
	}
	// Average symbol energy of the unscaled ±1, ±3, … grid is 2(M−1)/3;
	// scale so Es = Bits (i.e. Eb = 1).
	mSize := float64(int(1) << bits)
	m.scale = math.Sqrt(float64(bits) / (2 * (mSize - 1) / 3))
	for i := 0; i < l; i++ {
		g := i ^ (i >> 1)
		m.idxToGray[i] = g
		m.grayToIdx[g] = i
		m.amps[i] = m.scale * float64(2*i-(l-1))
	}
	return m
}

func (m *qamModem) Modulate(bits []byte) ([]Symbol, error) {
	return m.AppendModulate(make([]Symbol, 0, len(bits)/m.Bits), bits)
}

func (m *qamModem) AppendModulate(dst []Symbol, bits []byte) ([]Symbol, error) {
	if err := checkBits(bits, m.Bits); err != nil {
		return nil, err
	}
	half := m.Bits / 2
	nSym := len(bits) / m.Bits
	for s := 0; s < nSym; s++ {
		chunk := bits[s*m.Bits:]
		dst = append(dst, Symbol{
			I: m.amps[m.grayToIdx[bitsToInt(chunk[:half])]],
			Q: m.amps[m.grayToIdx[bitsToInt(chunk[half:m.Bits])]],
		})
	}
	return dst, nil
}

func (m *qamModem) Demodulate(syms []Symbol) []byte {
	return m.AppendDemodulate(make([]byte, 0, len(syms)*m.Bits), syms)
}

func (m *qamModem) AppendDemodulate(dst []byte, syms []Symbol) []byte {
	half := m.Bits / 2
	for _, s := range syms {
		dst = appendIntBits(dst, m.idxToGray[m.nearestLevel(s.I)], half)
		dst = appendIntBits(dst, m.idxToGray[m.nearestLevel(s.Q)], half)
	}
	return dst
}

func (m *qamModem) nearestLevel(x float64) int {
	// Levels are uniformly spaced at 2·scale starting at −(L−1)·scale.
	// Clamping happens on the float side so the function is total and
	// monotone for every input — an int() conversion of an
	// out-of-range float is implementation-defined, and monotonicity
	// is what lets the packed modem precompute decision thresholds
	// (see demodThresholds). Reachable symbol magnitudes sit far
	// inside the representable range, where this is the same
	// round-then-clamp as ever.
	r := math.Round((x/m.scale + float64(m.levels-1)) / 2)
	switch {
	case !(r > 0): // negative, zero, or NaN
		return 0
	case r >= float64(m.levels):
		return m.levels - 1
	}
	return int(r)
}

func checkBits(bits []byte, per int) error {
	if len(bits)%per != 0 {
		return fmt.Errorf("comm: %d bits not a multiple of %d bits/symbol", len(bits), per)
	}
	for i, b := range bits {
		if b > 1 {
			return fmt.Errorf("comm: bit %d has non-binary value %d", i, b)
		}
	}
	return nil
}

func bitsToInt(bits []byte) int {
	v := 0
	for _, b := range bits {
		v = v<<1 | int(b)
	}
	return v
}

func appendIntBits(dst []byte, v, n int) []byte {
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(v>>i)&1)
	}
	return dst
}

// AWGNChannel adds white Gaussian noise to symbols at a configured Eb/N0
// for a modem normalized to Eb = 1.
type AWGNChannel struct {
	rng *detrand.Rand
	// sigma is the per-dimension noise standard deviation √(N0/2).
	sigma float64
}

// NewAWGNChannel returns a channel at the given linear Eb/N0, seeded for
// reproducibility.
func NewAWGNChannel(ebN0 float64, seed int64) *AWGNChannel {
	if ebN0 <= 0 {
		panic("comm: Eb/N0 must be positive")
	}
	n0 := 1 / ebN0 // Eb = 1 by modem normalization
	return &AWGNChannel{
		rng:   detrand.New(seed),
		sigma: math.Sqrt(n0 / 2),
	}
}

// AWGNState is a channel's serializable noise-stream position.
type AWGNState struct {
	RNG detrand.State
}

// Snapshot captures the channel's noise-stream position.
func (c *AWGNChannel) Snapshot() AWGNState { return AWGNState{RNG: c.rng.State()} }

// RestoreAWGNChannel rebuilds a channel mid-stream: same operating point,
// noise sequence fast-forwarded to the recorded position.
func RestoreAWGNChannel(ebN0 float64, st AWGNState) *AWGNChannel {
	c := NewAWGNChannel(ebN0, st.RNG.Seed)
	c.rng = detrand.Restore(st.RNG)
	return c
}

// Transmit returns a noisy copy of the symbols.
func (c *AWGNChannel) Transmit(syms []Symbol) []Symbol {
	out := make([]Symbol, len(syms))
	copy(out, syms)
	c.TransmitInPlace(out)
	return out
}

// TransmitInPlace adds noise to the symbols in place — the allocation-free
// variant for pooled pipelines. The noise sequence is identical to
// Transmit's for the same channel state.
func (c *AWGNChannel) TransmitInPlace(syms []Symbol) {
	for i := range syms {
		syms[i].I += c.rng.NormFloat64() * c.sigma
		syms[i].Q += c.rng.NormFloat64() * c.sigma
	}
}

// MeasureBER runs nbits random bits through the modem and an AWGN channel
// at the given Eb/N0 and returns the measured bit error rate.
func MeasureBER(m Modem, ebN0 float64, nbits int, seed int64) (float64, error) {
	per := m.BitsPerSymbol()
	nbits -= nbits % per
	if nbits <= 0 {
		return 0, fmt.Errorf("comm: need at least %d bits", per)
	}
	rng := rand.New(rand.NewSource(seed))
	bits := make([]byte, nbits)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	syms, err := m.Modulate(bits)
	if err != nil {
		return 0, err
	}
	ch := NewAWGNChannel(ebN0, seed+1)
	got := m.Demodulate(ch.Transmit(syms))
	errs := 0
	for i := range bits {
		if bits[i] != got[i] {
			errs++
		}
	}
	return float64(errs) / float64(nbits), nil
}
