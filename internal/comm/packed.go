package comm

import "math"

// PackedModem is a byte-oriented fast path over the square-QAM modem:
// when the bits/symbol k divides 8, a frame's bytes map to symbols in
// whole k-bit groups with no padding, so modulation is a table lookup
// per group and demodulation packs hard decisions straight back into
// bytes — no intermediate one-byte-per-bit stream. The symbol values
// and the hard-decision math are the exact float64 expressions of the
// bit-level qamModem, so a packed round trip is bit-identical to
// AppendBytesAsBits → AppendModulate → AppendDemodulate →
// AppendBitsAsBytes (pinned by fast_test.go).
type PackedModem struct {
	qm      *qamModem
	group   int       // bits per symbol k
	perByte int       // symbols per byte, 8/k
	tbl     []Symbol  // k-bit group value → constellation point
	thr     []float64 // level decision thresholds; see demodThresholds
}

// NewPackedModem returns the packed fast path for the modulation, or
// (nil, false) when it does not apply (only square QAM with k ∈ {2, 4, 8}
// packs bytes without padding).
func NewPackedModem(m Modulation) (*PackedModem, bool) {
	q, ok := m.(QAM)
	if !ok || q.Bits < 2 || q.Bits%2 != 0 || 8%q.Bits != 0 {
		return nil, false
	}
	qm := newQAMModem(q.Bits)
	half := q.Bits / 2
	mask := 1<<half - 1
	pm := &PackedModem{
		qm:      qm,
		group:   q.Bits,
		perByte: 8 / q.Bits,
		tbl:     make([]Symbol, 1<<q.Bits),
	}
	for v := range pm.tbl {
		// An MSB-first k-bit group splits into I bits then Q bits —
		// exactly AppendModulate's chunk[:half] / chunk[half:] order.
		pm.tbl[v] = Symbol{
			I: qm.amps[qm.grayToIdx[v>>half]],
			Q: qm.amps[qm.grayToIdx[v&mask]],
		}
	}
	pm.thr = demodThresholds(qm)
	return pm, true
}

// demodThresholds returns, for each level n in 1..levels-1, the smallest
// float64 x with nearestLevel(x) >= n, so that for every finite x
//
//	nearestLevel(x) == #\{t in thr : x >= t\}
//
// This holds because nearestLevel is a monotone non-decreasing step
// function of its argument: it composes a correctly-rounded division by
// the positive scale, a correctly-rounded constant add, an exact
// halving, math.Round, and clamps — each monotone. The thresholds are
// found by bit-level binary search with nearestLevel itself as the
// oracle, so the equivalence is by construction, not by re-deriving the
// boundary arithmetic (packed_test.go probes every threshold ±1 ulp).
func demodThresholds(qm *qamModem) []float64 {
	// Order-preserving bijection between finite float64s and uint64s.
	ord := func(f float64) uint64 {
		u := math.Float64bits(f)
		if u>>63 != 0 {
			return ^u
		}
		return u | 1<<63
	}
	unord := func(o uint64) float64 {
		if o>>63 != 0 {
			return math.Float64frombits(o &^ (1 << 63))
		}
		return math.Float64frombits(^o)
	}
	thr := make([]float64, qm.levels-1)
	for n := 1; n < qm.levels; n++ {
		lo, hi := ord(math.Inf(-1)), ord(math.Inf(1))
		for lo < hi {
			mid := lo + (hi-lo)/2
			if qm.nearestLevel(unord(mid)) >= n {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		thr[n-1] = unord(lo)
	}
	return thr
}

// BitsPerSymbol returns k.
func (pm *PackedModem) BitsPerSymbol() int { return pm.group }

// SymbolsPerByte returns 8/k.
func (pm *PackedModem) SymbolsPerByte() int { return pm.perByte }

// AppendModulateBytes appends the len(data)*8/k symbols encoding data's
// bits MSB-first.
func (pm *PackedModem) AppendModulateBytes(dst []Symbol, data []byte) []Symbol {
	k := pm.group
	mask := byte(len(pm.tbl) - 1)
	tbl := pm.tbl
	n := len(dst)
	total := n + len(data)*pm.perByte
	if cap(dst) < total {
		grown := make([]Symbol, total, total+total/2)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:total]
	if k == 4 {
		// The common 16-QAM shape: two nibble lookups per byte, written by
		// index so the loop carries no append bookkeeping.
		for _, b := range data {
			dst[n] = tbl[b>>4]
			dst[n+1] = tbl[b&0x0F]
			n += 2
		}
		return dst
	}
	for _, b := range data {
		for shift := 8 - k; shift >= 0; shift -= k {
			dst[n] = tbl[b>>shift&mask]
			n++
		}
	}
	return dst
}

// AppendDemodulateBytes appends the hard-decision bytes for syms;
// len(syms) must be a multiple of 8/k (always true for symbols produced
// by AppendModulateBytes).
func (pm *PackedModem) AppendDemodulateBytes(dst []byte, syms []Symbol) []byte {
	qm := pm.qm
	half := pm.group / 2
	// Hard decisions by threshold count instead of nearestLevel's
	// divide-and-round: bit-identical for every finite input (see
	// demodThresholds), and a handful of compares beats two float
	// divisions per symbol.
	// The count is branch-free: signbit(x−t) ⟺ x < t for non-NaN x
	// (gradual underflow makes x−t round to zero exactly when x == t,
	// and correct rounding preserves the sign otherwise), so each
	// threshold contributes one subtract-and-shift instead of a
	// branch that mispredicts whenever noise lands near a boundary.
	thr := pm.thr
	idxToGray := qm.idxToGray
	var acc uint
	n := 0
	if len(thr) == 3 {
		// 16-QAM, the common fleet modulation, fully unrolled.
		t0, t1, t2 := thr[0], thr[1], thr[2]
		for _, s := range syms {
			ii := 3 -
				int(math.Float64bits(s.I-t0)>>63) -
				int(math.Float64bits(s.I-t1)>>63) -
				int(math.Float64bits(s.I-t2)>>63)
			qi := 3 -
				int(math.Float64bits(s.Q-t0)>>63) -
				int(math.Float64bits(s.Q-t1)>>63) -
				int(math.Float64bits(s.Q-t2)>>63)
			v := idxToGray[ii]<<half | idxToGray[qi]
			acc = acc<<pm.group | uint(v)
			if n++; n == pm.perByte {
				dst = append(dst, byte(acc))
				acc, n = 0, 0
			}
		}
		return dst
	}
	for _, s := range syms {
		ii, qi := len(thr), len(thr)
		for _, t := range thr {
			ii -= int(math.Float64bits(s.I-t) >> 63)
			qi -= int(math.Float64bits(s.Q-t) >> 63)
		}
		v := idxToGray[ii]<<half | idxToGray[qi]
		acc = acc<<pm.group | uint(v)
		if n++; n == pm.perByte {
			dst = append(dst, byte(acc))
			acc, n = 0, 0
		}
	}
	return dst
}
