package comm

import (
	"math/rand"
	"testing"
	"time"

	"mindful/internal/obs"
	"mindful/internal/units"
)

// TestARQRecoversUnderBudget is the satellite property test: for any loss
// pattern whose consecutive-failure runs stay within the retry budget,
// ARQ delivers 100% of frames.
func TestARQRecoversUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		budget := 1 + rng.Intn(4)
		a, err := NewARQ(ARQConfig{MaxRetries: budget})
		if err != nil {
			t.Fatal(err)
		}
		frames := 1 + rng.Intn(50)
		var delivered int
		for fr := 0; fr < frames; fr++ {
			// A failure run strictly shorter than attempts available.
			failures := rng.Intn(budget + 1)
			seen := 0
			attempts, ok := a.Send([]byte{byte(fr)}, 8, func([]byte) bool {
				seen++
				return seen > failures
			})
			if !ok {
				t.Fatalf("trial %d: frame %d lost with %d failures under budget %d", trial, fr, failures, budget)
			}
			if attempts != failures+1 {
				t.Fatalf("trial %d: %d attempts for %d failures", trial, attempts, failures)
			}
			delivered++
		}
		st := a.Stats()
		if st.Delivered != int64(delivered) || st.Failed != 0 || st.Sent != int64(frames) {
			t.Fatalf("trial %d: stats %+v for %d/%d delivered", trial, st, delivered, frames)
		}
		if st.RecoveryRate() != 1 {
			t.Fatalf("trial %d: recovery rate %g under budgeted loss", trial, st.RecoveryRate())
		}
	}
}

// TestARQBudgetExhaustion: a frame failing beyond the budget is abandoned
// after exactly MaxRetries+1 attempts and accounted as failed.
func TestARQBudgetExhaustion(t *testing.T) {
	a, err := NewARQ(ARQConfig{MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	attempts, ok := a.Send([]byte{1, 2}, 16, func([]byte) bool { return false })
	if ok {
		t.Fatal("undeliverable frame reported delivered")
	}
	if attempts != 4 {
		t.Fatalf("%d attempts, want 4 (1 + 3 retries)", attempts)
	}
	st := a.Stats()
	if st.Failed != 1 || st.Retransmits != 3 || st.RetransmitBits != 48 || st.NACKs != 3 {
		t.Fatalf("stats %+v", st)
	}
	if e := st.EnergyOverhead(units.PicojoulesPerBit(50)); e.Joules() != 48*50e-12 {
		t.Errorf("energy overhead %v", e)
	}
}

// TestARQLatencyBudget: the latency cap shrinks the effective retry
// budget so per-frame recovery latency stays inside the envelope.
func TestARQLatencyBudget(t *testing.T) {
	cfg := ARQConfig{
		MaxRetries:    10,
		SlotTime:      time.Millisecond,
		LatencyBudget: 4 * time.Millisecond, // 4 attempts fit: 3 retries
	}
	if got := cfg.EffectiveRetries(); got != 3 {
		t.Fatalf("effective retries %d, want 3", got)
	}
	a, err := NewARQ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attempts, ok := a.Send(nil, 8, func([]byte) bool { return false })
	if ok || attempts != 4 {
		t.Fatalf("attempts %d under 4ms budget, want 4", attempts)
	}
	if l := a.Latency(attempts); l != 4*time.Millisecond {
		t.Errorf("latency %v, want 4ms", l)
	}
	// Without timing, MaxRetries rules.
	if got := (ARQConfig{MaxRetries: 2}).EffectiveRetries(); got != 2 {
		t.Errorf("untimed effective retries %d, want 2", got)
	}
	// A budget shorter than one slot still permits the first attempt.
	tight := ARQConfig{MaxRetries: 5, SlotTime: time.Millisecond, LatencyBudget: time.Millisecond}
	if got := tight.EffectiveRetries(); got != 0 {
		t.Errorf("one-slot budget effective retries %d, want 0", got)
	}
}

func TestARQDisabled(t *testing.T) {
	a, err := NewARQ(ARQConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().Enabled() {
		t.Fatal("zero config reports enabled")
	}
	attempts, ok := a.Send(nil, 8, func([]byte) bool { return false })
	if ok || attempts != 1 {
		t.Fatalf("disabled ARQ made %d attempts", attempts)
	}
}

func TestARQValidate(t *testing.T) {
	if _, err := NewARQ(ARQConfig{MaxRetries: -1}); err == nil {
		t.Error("negative retries accepted")
	}
	if _, err := NewARQ(ARQConfig{SlotTime: -time.Second}); err == nil {
		t.Error("negative slot time accepted")
	}
}

func TestARQObserver(t *testing.T) {
	a, err := NewARQ(ARQConfig{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	a.SetObserver(o)
	calls := 0
	a.Send(nil, 8, func([]byte) bool { calls++; return calls == 2 }) // recovered on retry
	a.Send(nil, 8, func([]byte) bool { return false })               // fails
	m := o.Metrics
	if v := m.Counter("comm_arq_frames_recovered_total").Value(); v != 1 {
		t.Errorf("recovered counter %d, want 1", v)
	}
	if v := m.Counter("comm_arq_frames_failed_total").Value(); v != 1 {
		t.Errorf("failed counter %d, want 1", v)
	}
	if v := m.Counter("comm_arq_retransmits_total").Value(); v != 2 {
		t.Errorf("retransmit counter %d, want 2", v)
	}
	a.SetObserver(nil)
	a.Send(nil, 8, func([]byte) bool { return true }) // must not panic detached
}

// TestARQEndToEnd drives the recovery loop through the real frame path: a
// lossy transport that corrupts whole attempts, with the receiver side
// validating CRC — the integration the fleet pipeline uses.
func TestARQEndToEnd(t *testing.T) {
	p, err := NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewARQ(ARQConfig{MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var accepted int
	for i := 0; i < 100; i++ {
		frame, err := p.Encode([]uint16{uint16(i), 42, 7})
		if err != nil {
			t.Fatal(err)
		}
		_, ok := a.Send(frame, len(frame)*8, func(buf []byte) bool {
			if rng.Float64() < 0.4 { // corrupt this attempt
				bad := append([]byte(nil), buf...)
				bad[rng.Intn(len(bad))] ^= 0xFF
				_, err := Decode(bad)
				return err == nil
			}
			_, err := Decode(buf)
			return err == nil
		})
		if ok {
			accepted++
		}
	}
	st := a.Stats()
	if st.Delivered != int64(accepted) || st.Delivered+st.Failed != 100 {
		t.Fatalf("stats %+v vs %d accepted", st, accepted)
	}
	// 40% per-attempt loss with 2 retries → ~94% delivery expected.
	if accepted < 80 {
		t.Errorf("only %d/100 frames delivered through ARQ", accepted)
	}
	if st.Recovered == 0 {
		t.Error("no frames recovered by retransmission at 40% loss")
	}
}
