package comm

import "sync"

// Buffer pools for the modem hot path. A fleet-scale simulation pushes
// every frame through bits → symbols → bits → bytes conversions; doing
// that with per-call make() dominates the allocation profile, so the
// pools below recycle the three buffer shapes across pipelines and
// goroutines. Callers Get a buffer, re-slice it to [:0], append through
// the Append* APIs, and Put it back when the frame is done.

const (
	// defaultSymbolCap comfortably holds the symbols of a 1024-channel
	// 10-bit frame under OOK (the widest expansion: one symbol per bit).
	defaultSymbolCap = 16384
	// defaultBitCap holds the unpacked bits of the same frame.
	defaultBitCap = 16384
	// defaultByteCap holds the frame bytes themselves.
	defaultByteCap = 2048
)

var symbolPool = sync.Pool{New: func() any {
	buf := make([]Symbol, 0, defaultSymbolCap)
	return &buf
}}

var bitPool = sync.Pool{New: func() any {
	buf := make([]byte, 0, defaultBitCap)
	return &buf
}}

var bytePool = sync.Pool{New: func() any {
	buf := make([]byte, 0, defaultByteCap)
	return &buf
}}

// GetSymbolBuf returns a recycled symbol buffer (length 0). Release it
// with PutSymbolBuf when the symbols are no longer referenced.
func GetSymbolBuf() *[]Symbol { return symbolPool.Get().(*[]Symbol) }

// PutSymbolBuf returns a buffer obtained from GetSymbolBuf to the pool.
func PutSymbolBuf(buf *[]Symbol) {
	if buf == nil {
		return
	}
	*buf = (*buf)[:0]
	symbolPool.Put(buf)
}

// GetBitBuf returns a recycled bit buffer (length 0, elements 0/1 by
// convention). Release it with PutBitBuf.
func GetBitBuf() *[]byte { return bitPool.Get().(*[]byte) }

// PutBitBuf returns a buffer obtained from GetBitBuf to the pool.
func PutBitBuf(buf *[]byte) {
	if buf == nil {
		return
	}
	*buf = (*buf)[:0]
	bitPool.Put(buf)
}

// GetByteBuf returns a recycled byte buffer (length 0) for frame bytes.
// Release it with PutByteBuf.
func GetByteBuf() *[]byte { return bytePool.Get().(*[]byte) }

// PutByteBuf returns a buffer obtained from GetByteBuf to the pool.
func PutByteBuf(buf *[]byte) {
	if buf == nil {
		return
	}
	*buf = (*buf)[:0]
	bytePool.Put(buf)
}

// AppendBytesAsBits unpacks buf MSB-first into one 0/1 element per bit,
// appending to dst — the byte-frame → modem-bits conversion.
func AppendBytesAsBits(dst []byte, buf []byte) []byte {
	for _, b := range buf {
		for i := 7; i >= 0; i-- {
			dst = append(dst, (b>>i)&1)
		}
	}
	return dst
}

// AppendBitsAsBytes packs 0/1 elements MSB-first back into bytes,
// appending to dst. Trailing bits short of a full byte are dropped, so a
// stream padded to a symbol boundary collapses back to its byte length.
func AppendBitsAsBytes(dst []byte, bits []byte) []byte {
	for n := 0; n+8 <= len(bits); n += 8 {
		var b byte
		for i := 0; i < 8; i++ {
			if bits[n+i] != 0 {
				b |= 1 << (7 - i)
			}
		}
		dst = append(dst, b)
	}
	return dst
}
