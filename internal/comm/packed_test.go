package comm

import (
	"math"
	"math/rand"
	"testing"
)

// levelByThreshold is the decision rule AppendDemodulateBytes uses:
// the level index is the number of thresholds at or below x.
func levelByThreshold(thr []float64, x float64) int {
	idx := 0
	for _, t := range thr {
		if x >= t {
			idx++
		}
	}
	return idx
}

// TestDemodThresholdsExact proves the threshold decision rule equals
// nearestLevel everywhere it matters: exactly at every threshold, one
// ulp on either side of it, at extreme magnitudes, and across a dense
// random sweep of the amplitude range.
func TestDemodThresholdsExact(t *testing.T) {
	for _, bits := range []int{2, 4, 8} {
		pm, ok := NewPackedModem(NewQAM(bits))
		if !ok {
			t.Fatalf("QAM%d: expected packed modem", 1<<bits)
		}
		qm := pm.qm
		if len(pm.thr) != qm.levels-1 {
			t.Fatalf("QAM%d: %d thresholds for %d levels", 1<<bits, len(pm.thr), qm.levels)
		}
		check := func(x float64) {
			t.Helper()
			if got, want := levelByThreshold(pm.thr, x), qm.nearestLevel(x); got != want {
				t.Fatalf("QAM%d: x=%v threshold rule %d, nearestLevel %d", 1<<bits, x, got, want)
			}
		}
		for _, th := range pm.thr {
			check(th)
			check(math.Nextafter(th, math.Inf(-1)))
			check(math.Nextafter(th, math.Inf(1)))
		}
		for _, x := range []float64{0, math.Copysign(0, -1), 1e300, -1e300, 1e-300, -1e-300} {
			check(x)
		}
		rng := rand.New(rand.NewSource(int64(bits)))
		span := 4 * math.Abs(qm.amps[len(qm.amps)-1])
		for i := 0; i < 200_000; i++ {
			check((rng.Float64()*2 - 1) * span)
		}
	}
}

// TestDemodBoundarySymbols drives the production packed demodulator on
// symbols placed exactly at, and one ulp either side of, every decision
// threshold — the inputs where a branchless reformulation could slip —
// and pins its bytes against the bit-level scalar path.
func TestDemodBoundarySymbols(t *testing.T) {
	for _, bits := range []int{2, 4, 8} {
		mod := NewQAM(bits)
		pm, ok := NewPackedModem(mod)
		if !ok {
			t.Fatalf("QAM%d: expected packed modem", 1<<bits)
		}
		bitModem, err := NewModem(mod)
		if err != nil {
			t.Fatal(err)
		}
		var probes []float64
		for _, th := range pm.thr {
			probes = append(probes, th,
				math.Nextafter(th, math.Inf(-1)),
				math.Nextafter(th, math.Inf(1)))
		}
		probes = append(probes, 0, math.Copysign(0, -1), 1e300, -1e300)
		var syms []Symbol
		for _, i := range probes {
			for _, q := range probes {
				syms = append(syms, Symbol{I: i, Q: q})
			}
		}
		// Pad to a whole number of bytes.
		for len(syms)%pm.SymbolsPerByte() != 0 {
			syms = append(syms, Symbol{})
		}
		refBytes := AppendBitsAsBytes(nil, bitModem.AppendDemodulate(nil, syms))
		gotBytes := pm.AppendDemodulateBytes(nil, syms)
		if len(refBytes) != len(gotBytes) {
			t.Fatalf("QAM%d: %d bytes vs %d", 1<<bits, len(gotBytes), len(refBytes))
		}
		for i := range refBytes {
			if refBytes[i] != gotBytes[i] {
				t.Fatalf("QAM%d: byte %d: %#x vs %#x", 1<<bits, i, gotBytes[i], refBytes[i])
			}
		}
	}
}
