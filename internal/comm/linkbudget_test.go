package comm

import (
	"math"
	"testing"

	"mindful/internal/units"
)

func TestTxEnergyPerBitMagnitude(t *testing.T) {
	// 4-QAM at BER 1e-6 over the nominal 80 dB total loss at 15%
	// efficiency: Eb/N0 ≈ 11.3, N0 ≈ 4.28e-21 → Eb_tx ≈ 32 pJ/bit,
	// squarely in the tens-of-pJ/bit regime the BCI transceiver
	// literature reports.
	lb := NominalBudget(0.15)
	eb, err := lb.TxEnergyPerBit(NewQAM(2), NominalBER)
	if err != nil {
		t.Fatal(err)
	}
	if pj := eb.Picojoules(); pj < 10 || pj > 100 {
		t.Errorf("Eb_tx = %v pJ/bit, want tens of pJ", pj)
	}
}

func TestTxPowerScalesWithRate(t *testing.T) {
	lb := NominalBudget(0.2)
	m := NewQAM(2)
	p1, err := lb.TxPower(m, NominalBER, units.MegabitsPerSecond(82))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := lb.TxPower(m, NominalBER, units.MegabitsPerSecond(164))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2.Watts()-2*p1.Watts()) > 1e-12 {
		t.Errorf("power must be linear in rate: %v vs %v", p1, p2)
	}
}

func TestEfficiencyInverselyScalesPower(t *testing.T) {
	m := NewQAM(4)
	r := units.MegabitsPerSecond(100)
	p15, err := NominalBudget(0.15).TxPower(m, NominalBER, r)
	if err != nil {
		t.Fatal(err)
	}
	p30, err := NominalBudget(0.30).TxPower(m, NominalBER, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p15.Watts()-2*p30.Watts()) > 1e-12*p15.Watts() {
		t.Errorf("doubling efficiency must halve power: %v vs %v", p15, p30)
	}
}

func TestMinEfficiencyInversion(t *testing.T) {
	lb := NominalBudget(1)
	m := NewQAM(3)
	r := units.MegabitsPerSecond(200)
	budget := units.Milliwatts(20)
	eff, err := lb.MinEfficiency(m, NominalBER, r, budget)
	if err != nil {
		t.Fatal(err)
	}
	if eff <= 0 {
		t.Fatalf("min efficiency = %v", eff)
	}
	// At exactly that efficiency the power must equal the budget.
	lb.Efficiency = math.Min(eff, 1)
	if eff <= 1 {
		p, err := lb.TxPower(m, NominalBER, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Watts()-budget.Watts()) > 1e-9*budget.Watts() {
			t.Errorf("power at min efficiency = %v, want %v", p, budget)
		}
	}
	// Zero budget is infeasible.
	inf, err := lb.MinEfficiency(m, NominalBER, r, 0)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("zero budget: got %v, %v", inf, err)
	}
}

func TestLinkBudgetValidation(t *testing.T) {
	bad := NominalBudget(0)
	if _, err := bad.TxEnergyPerBit(OOK{}, NominalBER); err == nil {
		t.Errorf("zero efficiency should fail")
	}
	bad = NominalBudget(1.5)
	if _, err := bad.TxEnergyPerBit(OOK{}, NominalBER); err == nil {
		t.Errorf("efficiency > 1 should fail")
	}
	bad = NominalBudget(0.5)
	bad.NoiseTempK = -1
	if _, err := bad.TxEnergyPerBit(OOK{}, NominalBER); err == nil {
		t.Errorf("negative noise temperature should fail")
	}
}

func TestTotalLoss(t *testing.T) {
	lb := NominalBudget(0.15)
	// 60 + 20 dB = 1e8 linear.
	if got := lb.TotalLossLinear(); math.Abs(got-1e8) > 1 {
		t.Errorf("total loss = %v, want 1e8", got)
	}
}

func TestShannonCapacity(t *testing.T) {
	// 100 MHz at SNR 3 (linear) → 200 Mbps.
	c := ShannonCapacity(100e6, 3)
	if math.Abs(c.Mbps()-200) > 1e-9 {
		t.Errorf("capacity = %v Mbps, want 200", c.Mbps())
	}
	if got := ShannonCapacity(100e6, -1).BPS(); got != 0 {
		t.Errorf("negative SNR capacity = %v, want 0", got)
	}
}

func TestShannonLimits(t *testing.T) {
	if got := units.ToDB(ShannonMinEbN0()); math.Abs(got+1.59) > 0.01 {
		t.Errorf("Shannon limit = %v dB, want −1.59", got)
	}
	// η → 0 recovers the limit; higher efficiency demands more energy.
	if got := ShannonEbN0ForEfficiency(0); got != ShannonMinEbN0() {
		t.Errorf("η=0 should return the Shannon limit")
	}
	prev := ShannonMinEbN0()
	for _, eta := range []float64{0.5, 1, 2, 4, 8} {
		cur := ShannonEbN0ForEfficiency(eta)
		if cur <= prev {
			t.Errorf("Eb/N0 not increasing with spectral efficiency at η=%v", eta)
		}
		prev = cur
	}
}

func TestQAMAboveShannonProperty(t *testing.T) {
	// Any practical QAM operating point must exceed the Shannon minimum
	// Eb/N0 at its spectral efficiency (using 1 symbol/s/Hz).
	for bits := 1; bits <= 10; bits++ {
		req := NewQAM(bits).RequiredEbN0(NominalBER)
		min := ShannonEbN0ForEfficiency(float64(bits))
		if req <= min {
			t.Errorf("%d-bit QAM @1e-6 Eb/N0 %v below Shannon bound %v", bits, req, min)
		}
	}
}

func TestFixedEbTransmitter(t *testing.T) {
	rate := units.BitsPerSecond(1024 * 10 * 8000) // 81.92 Mbps
	tx := FixedEbTransmitter{Eb: units.PicojoulesPerBit(50), MaxRate: rate}
	p := tx.Power(rate)
	if math.Abs(p.Milliwatts()-4.096) > 1e-9 {
		t.Errorf("power = %v mW, want 4.096", p.Milliwatts())
	}
	if !tx.Supports(rate) {
		t.Errorf("rate at limit should be supported")
	}
	if tx.Supports(units.MegabitsPerSecond(83)) {
		t.Errorf("rate above limit should not be supported")
	}
	unbounded := FixedEbTransmitter{Eb: units.PicojoulesPerBit(50)}
	if !unbounded.Supports(units.MegabitsPerSecond(1e6)) {
		t.Errorf("high-margin transmitter supports any rate")
	}
}
