package comm

import (
	"bytes"
	"testing"
)

// FuzzParsePacket throws arbitrary bytes at the frame parser. Invariants:
// Decode never panics, and every frame it accepts re-encodes canonically
// to the exact input bytes (the parser accepts nothing it cannot
// round-trip).
func FuzzParsePacket(f *testing.F) {
	p, err := NewPacketizer(10)
	if err != nil {
		f.Fatal(err)
	}
	good, err := p.Encode([]uint16{1, 2, 3, 1023})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xBC, 0x1F})
	truncated := append([]byte(nil), good[:len(good)-1]...)
	f.Add(truncated)
	corrupted := append([]byte(nil), good...)
	corrupted[len(corrupted)/2] ^= 0x40
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		re, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzPackSamples checks the bit-packing round trip for every sample
// width: pack → unpack must be the identity on in-range samples, and the
// Append variant must agree with the allocating one.
func FuzzPackSamples(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0xFF, 0x00}, uint8(10))
	f.Add([]byte{1}, uint8(1))
	f.Add([]byte{0xAB, 0xCD, 0xEF}, uint8(16))

	f.Fuzz(func(t *testing.T, raw []byte, bitsRaw uint8) {
		bits := int(bitsRaw)%16 + 1
		// Interpret pairs of fuzz bytes as samples, masked into range.
		var samples []uint16
		for i := 0; i+1 < len(raw); i += 2 {
			s := uint16(raw[i])<<8 | uint16(raw[i+1])
			if bits < 16 {
				s &= 1<<bits - 1
			}
			samples = append(samples, s)
		}
		if len(samples) == 0 {
			return
		}
		packed := PackSamples(samples, bits)
		if got := AppendPackSamples(nil, samples, bits); !bytes.Equal(got, packed) {
			t.Fatalf("AppendPackSamples disagrees with PackSamples")
		}
		back, err := UnpackSamples(packed, len(samples), bits)
		if err != nil {
			t.Fatalf("unpack failed: %v", err)
		}
		for i := range samples {
			if back[i] != samples[i] {
				t.Fatalf("sample %d: packed %d, unpacked %d at %d bits", i, samples[i], back[i], bits)
			}
		}
	})
}

// FuzzBitsBytes checks the modem bit/byte conversions: unpacking bytes to
// bits and packing back is the identity.
func FuzzBitsBytes(f *testing.F) {
	f.Add([]byte{0xBC, 0x1F, 0x00, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		bits := AppendBytesAsBits(nil, data)
		if len(bits) != len(data)*8 {
			t.Fatalf("%d bytes unpacked to %d bits", len(data), len(bits))
		}
		back := AppendBitsAsBytes(nil, bits)
		if !bytes.Equal(back, data) {
			t.Fatalf("bit round-trip mismatch: %x -> %x", data, back)
		}
	})
}
