package comm

import (
	"bytes"
	"testing"
)

// FuzzParsePacket throws arbitrary bytes at the frame parser. Invariants:
// Decode never panics, and every frame it accepts re-encodes canonically
// to the exact input bytes (the parser accepts nothing it cannot
// round-trip).
func FuzzParsePacket(f *testing.F) {
	p, err := NewPacketizer(10)
	if err != nil {
		f.Fatal(err)
	}
	good, err := p.Encode([]uint16{1, 2, 3, 1023})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xBC, 0x1F})
	truncated := append([]byte(nil), good[:len(good)-1]...)
	f.Add(truncated)
	corrupted := append([]byte(nil), good...)
	corrupted[len(corrupted)/2] ^= 0x40
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		re, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzPackSamples checks the bit-packing round trip for every sample
// width: pack → unpack must be the identity on in-range samples, and the
// Append variant must agree with the allocating one.
func FuzzPackSamples(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0xFF, 0x00}, uint8(10))
	f.Add([]byte{1}, uint8(1))
	f.Add([]byte{0xAB, 0xCD, 0xEF}, uint8(16))

	f.Fuzz(func(t *testing.T, raw []byte, bitsRaw uint8) {
		bits := int(bitsRaw)%16 + 1
		// Interpret pairs of fuzz bytes as samples, masked into range.
		var samples []uint16
		for i := 0; i+1 < len(raw); i += 2 {
			s := uint16(raw[i])<<8 | uint16(raw[i+1])
			if bits < 16 {
				s &= 1<<bits - 1
			}
			samples = append(samples, s)
		}
		if len(samples) == 0 {
			return
		}
		packed := PackSamples(samples, bits)
		if got := AppendPackSamples(nil, samples, bits); !bytes.Equal(got, packed) {
			t.Fatalf("AppendPackSamples disagrees with PackSamples")
		}
		back, err := UnpackSamples(packed, len(samples), bits)
		if err != nil {
			t.Fatalf("unpack failed: %v", err)
		}
		for i := range samples {
			if back[i] != samples[i] {
				t.Fatalf("sample %d: packed %d, unpacked %d at %d bits", i, samples[i], back[i], bits)
			}
		}
	})
}

// FuzzFECDecode throws arbitrary coded streams at the Hamming(7,4)
// decoder. Invariants: decode never panics, output length is exactly
// 4 bits per 7 coded bits, corrections never exceed the codeword count,
// and re-encoding the decoded bits yields a stream the decoder maps back
// to the same data (decoding is a projection onto the code).
func FuzzFECDecode(f *testing.F) {
	enc, _ := NewFEC(4)
	clean := enc.AppendEncode(nil, []byte{1, 0, 1, 1, 0, 0, 1, 0})
	f.Add(clean, uint8(4))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9}, uint8(2))
	f.Add(make([]byte, 70), uint8(16))

	f.Fuzz(func(t *testing.T, coded []byte, depthRaw uint8) {
		depth := int(depthRaw)%32 + 1
		fec, err := NewFEC(depth)
		if err != nil {
			t.Fatal(err)
		}
		data, fixed, err := fec.AppendDecode(nil, coded)
		if len(coded)%7 != 0 {
			if err == nil {
				t.Fatalf("decoder accepted length %d", len(coded))
			}
			return
		}
		if err != nil {
			t.Fatalf("decode failed on aligned input: %v", err)
		}
		words := len(coded) / 7
		if len(data) != words*4 {
			t.Fatalf("%d codewords decoded to %d bits", words, len(data))
		}
		if fixed < 0 || fixed > words {
			t.Fatalf("%d corrections for %d codewords", fixed, words)
		}
		re := fec.AppendEncode(nil, data)
		again, fixed2, err := fec.AppendDecode(nil, re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fixed2 != 0 {
			t.Fatalf("re-encoded stream needed %d corrections", fixed2)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("decode not a projection: data changed on re-encode round trip")
		}
	})
}

// FuzzARQReorder drives the ARQ loop with a fuzzer-chosen schedule of
// drops, corruptions, duplicates and delayed (reordered) deliveries.
// Invariants: no panic, every frame delivered to the receiver decodes to
// a payload that was actually sent, attempts never exceed the budget, and
// the stats ledger balances.
func FuzzARQReorder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xFF, 0x80}, uint8(2))
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{0xAA}, 40), uint8(5))

	f.Fuzz(func(t *testing.T, schedule []byte, retriesRaw uint8) {
		retries := int(retriesRaw) % 6
		arq, err := NewARQ(ARQConfig{MaxRetries: retries})
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := NewPacketizer(8)
		if err != nil {
			t.Fatal(err)
		}
		sent := map[uint32]uint16{}
		var delayed [][]byte // frames the link held back, replayed later
		si := 0
		next := func() byte {
			if si >= len(schedule) {
				return 0
			}
			b := schedule[si]
			si++
			return b
		}
		deliver := func(buf []byte) bool {
			fr, err := Decode(buf)
			if err != nil {
				return false
			}
			want, known := sent[fr.Seq]
			if !known || len(fr.Samples) != 1 || fr.Samples[0] != want {
				t.Fatalf("receiver accepted a frame that was never sent: seq %d", fr.Seq)
			}
			return true
		}
		frames := 12
		for i := 0; i < frames; i++ {
			payload := uint16(i * 17 % 251)
			frame, err := pkt.Encode([]uint16{payload})
			if err != nil {
				t.Fatal(err)
			}
			sent[uint32(i)] = payload
			attempts, _ := arq.Send(frame, len(frame)*8, func(buf []byte) bool {
				switch next() % 4 {
				case 0: // clean delivery
					return deliver(buf)
				case 1: // dropped
					return false
				case 2: // corrupted in flight
					bad := append([]byte(nil), buf...)
					bad[int(next())%len(bad)] ^= 1 << (next() % 8)
					return deliver(bad)
				default: // held back: replay later, out of order
					delayed = append(delayed, append([]byte(nil), buf...))
					return false
				}
			})
			if attempts > retries+1 {
				t.Fatalf("%d attempts exceed budget %d", attempts, retries)
			}
			// Stale/reordered frames surface between sends; the receiver
			// must still only ever see frames that were sent.
			if len(delayed) > 0 && next()%2 == 0 {
				deliver(delayed[len(delayed)-1])
				delayed = delayed[:len(delayed)-1]
			}
		}
		st := arq.Stats()
		if st.Sent != int64(frames) || st.Delivered+st.Failed != st.Sent {
			t.Fatalf("ledger imbalance: %+v", st)
		}
		if st.Retransmits != st.NACKs {
			t.Fatalf("retransmits %d != NACKs %d", st.Retransmits, st.NACKs)
		}
		if st.Recovered > st.Delivered {
			t.Fatalf("recovered %d > delivered %d", st.Recovered, st.Delivered)
		}
	})
}

// FuzzBitsBytes checks the modem bit/byte conversions: unpacking bytes to
// bits and packing back is the identity.
func FuzzBitsBytes(f *testing.F) {
	f.Add([]byte{0xBC, 0x1F, 0x00, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		bits := AppendBytesAsBits(nil, data)
		if len(bits) != len(data)*8 {
			t.Fatalf("%d bytes unpacked to %d bits", len(data), len(bits))
		}
		back := AppendBitsAsBytes(nil, bits)
		if !bytes.Equal(back, data) {
			t.Fatalf("bit round-trip mismatch: %x -> %x", data, back)
		}
	})
}
