package comm

import "fmt"

// Forward error correction for the uplink: Hamming(7,4) with block
// interleaving. Each 4 data bits expand to a 7-bit codeword that corrects
// any single bit error; a depth-D block interleaver transmits D codewords
// column-wise, so a contiguous burst of up to D bit errors lands at most
// one error in each codeword — exactly the failure mode of the
// Gilbert–Elliott bad state. The price is a fixed 7/4 on-air expansion,
// surfaced to the power model through LinkBudget.TxEnergyPerInfoBit.

const (
	fecDataBits = 4
	fecCodeBits = 7
)

// FEC is a Hamming(7,4) codec with a depth-Depth block interleaver
// (Depth = 1 disables interleaving). The codec keeps internal scratch
// buffers, so one instance must not be shared across goroutines.
type FEC struct {
	// Depth is the interleaver depth in codewords.
	Depth int

	corrected int64
	scratch   []byte
}

// NewFEC returns a codec at the given interleaver depth.
func NewFEC(depth int) (*FEC, error) {
	if depth < 1 {
		return nil, fmt.Errorf("comm: FEC interleave depth %d < 1", depth)
	}
	return &FEC{Depth: depth}, nil
}

// Rate returns the code rate (data bits per coded bit): 4/7.
func (f *FEC) Rate() float64 { return float64(fecDataBits) / float64(fecCodeBits) }

// Overhead returns the on-air expansion factor: 7/4.
func (f *FEC) Overhead() float64 { return float64(fecCodeBits) / float64(fecDataBits) }

// CodedBits returns the on-air bit count for n data bits (which are
// zero-padded to a nibble boundary before coding).
func (f *FEC) CodedBits(dataBits int) int {
	return (dataBits + fecDataBits - 1) / fecDataBits * fecCodeBits
}

// Corrected returns the cumulative count of bit errors this codec has
// corrected while decoding.
func (f *FEC) Corrected() int64 { return f.corrected }

// RestoreCorrected overwrites the cumulative correction counter — used
// when a checkpointed codec is rebuilt. The codec is otherwise stateless
// between calls (scratch is transient).
func (f *FEC) RestoreCorrected(n int64) { f.corrected = n }

// hammingEncode maps 4 data bits to the codeword [p1 p2 d1 p3 d2 d3 d4].
func hammingEncode(d1, d2, d3, d4 byte) [fecCodeBits]byte {
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p3 := d2 ^ d3 ^ d4
	return [fecCodeBits]byte{p1, p2, d1, p3, d2, d3, d4}
}

// hammingDecode corrects a single-bit error in place and returns the four
// data bits plus whether a correction was applied.
func hammingDecode(w []byte) (d [fecDataBits]byte, corrected bool) {
	s1 := w[0] ^ w[2] ^ w[4] ^ w[6]
	s2 := w[1] ^ w[2] ^ w[5] ^ w[6]
	s3 := w[3] ^ w[4] ^ w[5] ^ w[6]
	if syndrome := int(s1) | int(s2)<<1 | int(s3)<<2; syndrome != 0 {
		w[syndrome-1] ^= 1
		corrected = true
	}
	return [fecDataBits]byte{w[2], w[4], w[5], w[6]}, corrected
}

// AppendEncode appends the coded, interleaved bit stream for the data
// bits (0/1 elements) to dst. Data is zero-padded to a multiple of 4
// bits, so decode returns ⌈len/4⌉·4 bits; callers framing byte payloads
// truncate to the known frame length. Passing a recycled dst[:0] keeps
// the steady-state path allocation-free.
func (f *FEC) AppendEncode(dst []byte, bits []byte) []byte {
	words := (len(bits) + fecDataBits - 1) / fecDataBits
	bit := func(i int) byte {
		if i < len(bits) {
			return bits[i] & 1
		}
		return 0
	}
	for w0 := 0; w0 < words; w0 += f.Depth {
		rows := f.Depth
		if words-w0 < rows {
			rows = words - w0
		}
		// Code the block's rows into scratch, then emit column-major.
		if need := rows * fecCodeBits; cap(f.scratch) < need {
			f.scratch = make([]byte, need)
		}
		block := f.scratch[:rows*fecCodeBits]
		for r := 0; r < rows; r++ {
			i := (w0 + r) * fecDataBits
			cw := hammingEncode(bit(i), bit(i+1), bit(i+2), bit(i+3))
			copy(block[r*fecCodeBits:], cw[:])
		}
		for col := 0; col < fecCodeBits; col++ {
			for r := 0; r < rows; r++ {
				dst = append(dst, block[r*fecCodeBits+col])
			}
		}
	}
	return dst
}

// AppendDecode deinterleaves and decodes a coded bit stream produced by
// AppendEncode, appending the recovered data bits to dst. It returns the
// extended slice and the number of bit errors corrected in this call.
// The coded length must be a multiple of 7.
func (f *FEC) AppendDecode(dst []byte, coded []byte) ([]byte, int, error) {
	if len(coded)%fecCodeBits != 0 {
		return dst, 0, fmt.Errorf("comm: coded length %d not a multiple of %d", len(coded), fecCodeBits)
	}
	words := len(coded) / fecCodeBits
	fixed := 0
	for w0 := 0; w0 < words; w0 += f.Depth {
		rows := f.Depth
		if words-w0 < rows {
			rows = words - w0
		}
		if need := rows * fecCodeBits; cap(f.scratch) < need {
			f.scratch = make([]byte, need)
		}
		block := f.scratch[:rows*fecCodeBits]
		base := w0 * fecCodeBits
		for col := 0; col < fecCodeBits; col++ {
			for r := 0; r < rows; r++ {
				block[r*fecCodeBits+col] = coded[base+col*rows+r] & 1
			}
		}
		for r := 0; r < rows; r++ {
			d, corrected := hammingDecode(block[r*fecCodeBits : (r+1)*fecCodeBits])
			if corrected {
				fixed++
			}
			dst = append(dst, d[:]...)
		}
	}
	f.corrected += int64(fixed)
	return dst, fixed, nil
}

// AppendEncodeFrames codes a batch of equal-length frames laid
// head-to-head in src (frameBits data bits each), appending each
// frame's coded stream zero-padded to a multiple of padTo bits
// (padTo ≤ 1 disables padding). Per-frame output is bit-identical to
// AppendEncode followed by the transport's modem-alignment padding; the
// batch call shares one scratch growth across all frames.
func (f *FEC) AppendEncodeFrames(dst, src []byte, frameBits, padTo int) ([]byte, error) {
	if frameBits <= 0 || len(src)%frameBits != 0 {
		return dst, fmt.Errorf("comm: slab of %d bits not a multiple of %d-bit frames", len(src), frameBits)
	}
	for off := 0; off < len(src); off += frameBits {
		start := len(dst)
		dst = f.AppendEncode(dst, src[off:off+frameBits])
		if padTo > 1 {
			for (len(dst)-start)%padTo != 0 {
				dst = append(dst, 0)
			}
		}
	}
	return dst, nil
}

// AppendDecodeFrames reverses AppendEncodeFrames: coded holds a batch
// of airBits-bit padded frames whose first codedBits bits are the
// interleaved code stream (trailing pad bits are discarded, as in the
// scalar transport). The recovered data bits are appended to dst and
// fixed[i] records frame i's corrected-bit count; len(fixed) must cover
// the batch.
func (f *FEC) AppendDecodeFrames(dst, coded []byte, airBits, codedBits int, fixed []int) ([]byte, error) {
	if airBits <= 0 || len(coded)%airBits != 0 {
		return dst, fmt.Errorf("comm: slab of %d bits not a multiple of %d-bit frames", len(coded), airBits)
	}
	if codedBits > airBits {
		return dst, fmt.Errorf("comm: coded bits %d exceed air bits %d", codedBits, airBits)
	}
	n := len(coded) / airBits
	if len(fixed) < n {
		return dst, fmt.Errorf("comm: fixed counts len %d < %d frames", len(fixed), n)
	}
	for i := 0; i < n; i++ {
		var err error
		dst, fixed[i], err = f.AppendDecode(dst, coded[i*airBits:i*airBits+codedBits])
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}
