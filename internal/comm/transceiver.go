package comm

import (
	"fmt"

	"mindful/internal/units"
)

// Antenna is the implant's radiating element, characterized by the
// bandwidth it offers the transceiver.
type Antenna struct {
	// Bandwidth is the usable RF bandwidth.
	Bandwidth units.Frequency
}

// IdealRate returns the highest raw rate a modulation can push through the
// antenna: bandwidth × bits-per-symbol (one symbol per hertz, the
// idealization of Section 5.1: "if the antenna supports a bandwidth of
// 100 MHz, an ideal OOK transceiver could theoretically transmit up to
// 100 Mbps").
func (a Antenna) IdealRate(m Modulation) units.DataRate {
	return units.BitsPerSecond(a.Bandwidth.Hz() * float64(m.BitsPerSymbol()))
}

// Transceiver is the Section 5.1 custom implant transmitter: a modulation
// scheme behind an antenna, customized for a constant energy per bit up to
// a practical fraction of the ideal rate.
type Transceiver struct {
	Antenna    Antenna
	Modulation Modulation
	// Eb is the constant DC energy per bit the design was customized for.
	Eb units.Energy
	// Utilization is the fraction of the antenna's ideal rate the
	// implementation actually achieves (the paper's worked example:
	// 82 Mbps of a 100 Mbps ideal → 0.82).
	Utilization float64
}

// BISCTransceiver reproduces the paper's Section 5.1 worked example: an
// OOK design customized for Eb = 50 pJ/b on a 100 MHz antenna, supporting
// exactly the 1024-channel × 10-bit × 8 kHz raw stream (82 Mbps).
func BISCTransceiver() Transceiver {
	return Transceiver{
		Antenna:     Antenna{Bandwidth: units.Megahertz(100)},
		Modulation:  OOK{},
		Eb:          units.PicojoulesPerBit(50),
		Utilization: 0.8192,
	}
}

// Validate checks the transceiver.
func (t Transceiver) Validate() error {
	if t.Antenna.Bandwidth <= 0 {
		return fmt.Errorf("comm: non-positive antenna bandwidth")
	}
	if t.Modulation == nil {
		return fmt.Errorf("comm: transceiver has no modulation")
	}
	if t.Eb <= 0 {
		return fmt.Errorf("comm: non-positive energy per bit")
	}
	if t.Utilization <= 0 || t.Utilization > 1 {
		return fmt.Errorf("comm: utilization %g outside (0, 1]", t.Utilization)
	}
	return nil
}

// MaxRate returns the design's supported transmission rate:
// utilization × ideal antenna rate.
func (t Transceiver) MaxRate() units.DataRate {
	return units.BitsPerSecond(t.Antenna.IdealRate(t.Modulation).BPS() * t.Utilization)
}

// Supports reports whether the design can carry rate r at its constant Eb.
func (t Transceiver) Supports(r units.DataRate) bool {
	return r <= t.MaxRate()
}

// Power returns the DC power at rate r (Eq. 9). It does not check
// Supports; beyond MaxRate the constant-Eb assumption no longer holds
// (Shannon pushes Eb up), which is exactly the Section 5.1 scaling wall.
func (t Transceiver) Power(r units.DataRate) units.Power {
	return r.TimesEnergyPerBit(t.Eb)
}

// MaxChannels returns the largest channel count whose raw stream
// (d bits × f) the design supports — where the naive/high-margin fork of
// Section 5.1 begins.
func (t Transceiver) MaxChannels(sampleBits int, f units.Frequency) int {
	if sampleBits <= 0 || f <= 0 {
		return 0
	}
	perChannel := float64(sampleBits) * f.Hz()
	return int(t.MaxRate().BPS() / perChannel)
}

// UpgradeModulation returns a copy using k-bit QAM on the same antenna —
// the Section 5.2 move. Energy per bit must be re-derived from a link
// budget; the rate ceiling scales with bits-per-symbol at the same symbol
// utilization.
func (t Transceiver) UpgradeModulation(bits int, newEb units.Energy) Transceiver {
	out := t
	out.Modulation = NewQAM(bits)
	out.Eb = newEb
	return out
}
