package comm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allModems(t *testing.T) []Modem {
	t.Helper()
	var out []Modem
	for _, m := range []Modulation{OOK{}, NewQAM(1), NewQAM(2), NewQAM(4), NewQAM(6)} {
		modem, err := NewModem(m)
		if err != nil {
			t.Fatalf("NewModem(%s): %v", m.Name(), err)
		}
		out = append(out, modem)
	}
	return out
}

func TestModemNoiselessRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range allModems(t) {
		n := m.BitsPerSymbol() * 256
		bits := make([]byte, n)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		syms, err := m.Modulate(bits)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(syms) != n/m.BitsPerSymbol() {
			t.Fatalf("%s: %d symbols for %d bits", m.Name(), len(syms), n)
		}
		got := m.Demodulate(syms)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%s: noiseless bit %d flipped", m.Name(), i)
			}
		}
	}
}

func TestModemUnitEnergyNormalization(t *testing.T) {
	// Every modem must average Eb = 1 over random data, so the AWGN
	// operating point is meaningful.
	rng := rand.New(rand.NewSource(11))
	for _, m := range allModems(t) {
		n := m.BitsPerSymbol() * 4096
		bits := make([]byte, n)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		syms, err := m.Modulate(bits)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for _, s := range syms {
			e += s.I*s.I + s.Q*s.Q
		}
		ebMeasured := e / float64(n)
		if math.Abs(ebMeasured-1) > 0.06 {
			t.Errorf("%s: measured Eb = %v, want ≈1", m.Name(), ebMeasured)
		}
	}
}

func TestMeasuredBERMatchesAnalytic(t *testing.T) {
	// The empirical modem must reproduce the analytic BER curves that the
	// whole Section 5 power analysis rests on. Operating points chosen so
	// expected error counts are large enough for a tight check.
	cases := []struct {
		mod  Modulation
		dB   float64
		nbit int
	}{
		{OOK{}, 7, 200000},
		{NewQAM(1), 4, 200000},
		{NewQAM(2), 4, 200000},
		{NewQAM(4), 8, 200000},
		{NewQAM(6), 12, 300000},
	}
	for _, c := range cases {
		modem, err := NewModem(c.mod)
		if err != nil {
			t.Fatal(err)
		}
		ebn0 := math.Pow(10, c.dB/10)
		want := c.mod.BER(ebn0)
		got, err := MeasureBER(modem, ebn0, c.nbit, 42)
		if err != nil {
			t.Fatal(err)
		}
		if want < 1e-4 {
			t.Fatalf("%s test point too deep for %d bits", c.mod.Name(), c.nbit)
		}
		rel := math.Abs(got-want) / want
		if rel > 0.25 {
			t.Errorf("%s @%v dB: measured %v vs analytic %v (%.0f%% off)",
				c.mod.Name(), c.dB, got, want, rel*100)
		}
	}
}

func TestBERMatchesAnalyticAllOrders(t *testing.T) {
	// Property over every constellation the bit-level modem supports —
	// OOK, BPSK and all square QAM orders through 256-QAM: at the Eb/N0
	// where the analytic curve predicts BER = 1e-2, the measured rate must
	// sit inside a tolerance band derived from the trial count.
	//
	// With p = 1e-2 over n trials the binomial standard deviation of the
	// measured rate is σ = √(p(1−p)/n); the band is ±4σ for sampling
	// noise plus a fixed model term, because the analytic M-QAM expression
	// is a nearest-neighbour Gray-coding approximation whose error is a
	// few percent at BER this high.
	const (
		targetBER  = 1e-2
		nbits      = 240000
		modelSlack = 0.15
	)
	mods := []Modulation{OOK{}, NewQAM(1), NewQAM(2), NewQAM(4), NewQAM(6), NewQAM(8)}
	sigma := math.Sqrt(targetBER * (1 - targetBER) / float64(nbits))
	tol := 4*sigma/targetBER + modelSlack
	for _, mod := range mods {
		modem, err := NewModem(mod)
		if err != nil {
			t.Fatalf("NewModem(%s): %v", mod.Name(), err)
		}
		ebn0 := mod.RequiredEbN0(targetBER)
		want := mod.BER(ebn0)
		if rel := math.Abs(want-targetBER) / targetBER; rel > 1e-6 {
			t.Fatalf("%s: RequiredEbN0 and BER disagree: %v vs %v", mod.Name(), want, targetBER)
		}
		got, err := MeasureBER(modem, ebn0, nbits, 17)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got-want) / want; rel > tol {
			t.Errorf("%s @Eb/N0=%.2f: measured BER %v vs analytic %v (%.1f%% off, tolerance %.1f%%)",
				mod.Name(), ebn0, got, want, rel*100, tol*100)
		}
	}
}

func TestMeasuredBERNeverBeatsShannonProperty(t *testing.T) {
	// Property: at any Eb/N0 below the scheme's requirement for 1e-3, the
	// measured BER stays above 1e-3 (no free lunch from the simulator).
	f := func(seed int64) bool {
		modem, err := NewModem(NewQAM(4))
		if err != nil {
			return false
		}
		req := NewQAM(4).RequiredEbN0(1e-3)
		got, err := MeasureBER(modem, req/4, 20000, seed)
		return err == nil && got > 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestNewModemRejectsOddQAM(t *testing.T) {
	if _, err := NewModem(NewQAM(3)); err == nil {
		t.Errorf("8-QAM modem should be rejected")
	}
	if _, err := NewModem(NewQAM(5)); err == nil {
		t.Errorf("32-QAM modem should be rejected")
	}
}

func TestModulateValidation(t *testing.T) {
	m, err := NewModem(NewQAM(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Modulate(make([]byte, 5)); err == nil {
		t.Errorf("non-multiple bit count should fail")
	}
	if _, err := m.Modulate([]byte{0, 1, 2, 1}); err == nil {
		t.Errorf("non-binary bit should fail")
	}
}

func TestAWGNChannelProperties(t *testing.T) {
	ch := NewAWGNChannel(10, 3)
	in := make([]Symbol, 10000)
	out := ch.Transmit(in)
	var mean, power float64
	for _, s := range out {
		mean += s.I + s.Q
		power += s.I*s.I + s.Q*s.Q
	}
	mean /= float64(2 * len(out))
	power /= float64(len(out))
	if math.Abs(mean) > 0.01 {
		t.Errorf("noise mean = %v, want ≈0", mean)
	}
	// Per-symbol noise power = N0 = 1/ebn0 = 0.1 (both dimensions).
	if math.Abs(power-0.1) > 0.01 {
		t.Errorf("noise power = %v, want ≈0.1", power)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("non-positive Eb/N0 should panic")
			}
		}()
		NewAWGNChannel(0, 1)
	}()
}

func TestMeasureBERValidation(t *testing.T) {
	m, err := NewModem(NewQAM(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureBER(m, 10, 3, 1); err == nil {
		t.Errorf("too few bits should fail")
	}
}
