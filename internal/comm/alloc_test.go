package comm

import (
	"math/rand"
	"testing"
)

// The Append* APIs exist so the fleet simulator's per-tick loop does not
// allocate. These tests pin that property: once a buffer has grown to
// steady-state capacity, reusing it must cost zero allocations per call.

func assertZeroAlloc(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm-up: grow buffers to steady state
	if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op at steady state, want 0", name, allocs)
	}
}

func TestModemAppendPathsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range allModems(t) {
		nbits := m.BitsPerSymbol() * 512
		bits := make([]byte, nbits)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		var syms []Symbol
		var back []byte
		assertZeroAlloc(t, m.Name()+"/AppendModulate", func() {
			var err error
			syms, err = m.AppendModulate(syms[:0], bits)
			if err != nil {
				t.Fatal(err)
			}
		})
		assertZeroAlloc(t, m.Name()+"/AppendDemodulate", func() {
			back = m.AppendDemodulate(back[:0], syms)
		})
	}
}

func TestAWGNTransmitInPlaceZeroAlloc(t *testing.T) {
	ch := NewAWGNChannel(10, 9)
	syms := make([]Symbol, 1024)
	assertZeroAlloc(t, "TransmitInPlace", func() {
		ch.TransmitInPlace(syms)
	})
}

func TestPacketizerAppendEncodeZeroAlloc(t *testing.T) {
	p, err := NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]uint16, 128)
	for i := range samples {
		samples[i] = uint16(i * 7 % 1024)
	}
	var frame []byte
	assertZeroAlloc(t, "AppendEncode", func() {
		var err error
		frame, err = p.AppendEncode(frame[:0], samples)
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestBitConversionsZeroAlloc(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	var bits, back []byte
	assertZeroAlloc(t, "AppendBytesAsBits", func() {
		bits = AppendBytesAsBits(bits[:0], data)
	})
	assertZeroAlloc(t, "AppendBitsAsBytes", func() {
		back = AppendBitsAsBytes(back[:0], bits)
	})
	var packed []byte
	samples := make([]uint16, 128)
	assertZeroAlloc(t, "AppendPackSamples", func() {
		packed = AppendPackSamples(packed[:0], samples, 10)
	})
}

func TestBufferPoolsRecycle(t *testing.T) {
	// A Get after a Put must not allocate a fresh backing array once the
	// pool is primed (run single-threaded this is deterministic enough to
	// assert on; the warm-up covers pool misses).
	assertZeroAlloc(t, "symbol pool round-trip", func() {
		buf := GetSymbolBuf()
		*buf = append(*buf, Symbol{I: 1})
		PutSymbolBuf(buf)
	})
	assertZeroAlloc(t, "bit pool round-trip", func() {
		buf := GetBitBuf()
		*buf = append(*buf, 1)
		PutBitBuf(buf)
	})
	assertZeroAlloc(t, "byte pool round-trip", func() {
		buf := GetByteBuf()
		*buf = append(*buf, 0xBC)
		PutByteBuf(buf)
	})
}
