package comm

import (
	"math"
	"testing"

	"mindful/internal/units"
)

func TestPaperWorkedExample(t *testing.T) {
	// Section 5.1: "a transceiver customized to a system targeting
	// exactly Eb = 50 pJ/b, n = 1024 channels, d = 10 bits per sample,
	// and f = 8 kHz would support a transmission rate of 82 Mbps, even if
	// the antenna bandwidth is 100 Mbps."
	tx := BISCTransceiver()
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tx.Antenna.IdealRate(OOK{}).Mbps(); math.Abs(got-100) > 1e-9 {
		t.Errorf("ideal OOK rate = %v Mbps, want 100", got)
	}
	if got := tx.MaxRate().Mbps(); math.Abs(got-81.92) > 1e-9 {
		t.Errorf("max rate = %v Mbps, want 81.92", got)
	}
	raw := units.BitsPerSecond(1024 * 10 * 8000)
	if !tx.Supports(raw) {
		t.Errorf("the design must support its own raw stream")
	}
	if tx.Supports(units.MegabitsPerSecond(82)) {
		t.Errorf("82 Mbps exceeds the customized 81.92 Mbps ceiling")
	}
	// Power at the ceiling: 81.92 Mbps × 50 pJ = 4.096 mW.
	if got := tx.Power(raw).Milliwatts(); math.Abs(got-4.096) > 1e-9 {
		t.Errorf("power = %v mW, want 4.096", got)
	}
	// Channel ceiling at d=10, f=8 kHz: exactly 1024.
	if got := tx.MaxChannels(10, units.Kilohertz(8)); got != 1024 {
		t.Errorf("max channels = %d, want 1024", got)
	}
}

func TestQAMUpgradeRaisesCeiling(t *testing.T) {
	// Section 5.2: more bits per symbol on the same antenna raises the
	// rate ceiling proportionally — at a higher per-bit energy.
	base := BISCTransceiver()
	lb := NominalBudget(0.15)
	eb2, err := lb.TxEnergyPerBit(NewQAM(2), NominalBER)
	if err != nil {
		t.Fatal(err)
	}
	up := base.UpgradeModulation(2, eb2)
	if err := up.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := up.MaxRate().BPS(), 2*base.MaxRate().BPS(); math.Abs(got-want) > 1e-6 {
		t.Errorf("2-bit ceiling = %v, want %v", got, want)
	}
	if got := up.MaxChannels(10, units.Kilohertz(8)); got != 2048 {
		t.Errorf("2-bit QAM channels = %d, want 2048", got)
	}
}

func TestTransceiverValidation(t *testing.T) {
	bad := []Transceiver{
		{Antenna: Antenna{}, Modulation: OOK{}, Eb: units.PicojoulesPerBit(50), Utilization: 0.8},
		{Antenna: Antenna{Bandwidth: units.Megahertz(100)}, Eb: units.PicojoulesPerBit(50), Utilization: 0.8},
		{Antenna: Antenna{Bandwidth: units.Megahertz(100)}, Modulation: OOK{}, Utilization: 0.8},
		{Antenna: Antenna{Bandwidth: units.Megahertz(100)}, Modulation: OOK{}, Eb: units.PicojoulesPerBit(50), Utilization: 0},
		{Antenna: Antenna{Bandwidth: units.Megahertz(100)}, Modulation: OOK{}, Eb: units.PicojoulesPerBit(50), Utilization: 1.5},
	}
	for i, tx := range bad {
		if err := tx.Validate(); err == nil {
			t.Errorf("transceiver %d should fail validation", i)
		}
	}
	if got := BISCTransceiver().MaxChannels(0, units.Kilohertz(8)); got != 0 {
		t.Errorf("degenerate channels = %d", got)
	}
}
