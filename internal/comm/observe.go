package comm

import (
	"time"

	"mindful/internal/obs"
)

// ObservedModem wraps a Modem with obs instrumentation: bit and symbol
// counters, per-call latency histograms, and an error counter fed by
// CountErrors when the harness knows the ground-truth bit stream. The
// wrapper satisfies Modem, so it drops into any path a bare modem serves.
type ObservedModem struct {
	Modem

	bitsModulated   *obs.Counter
	bitsDemodulated *obs.Counter
	symbols         *obs.Counter
	bitErrors       *obs.Counter
	latency         *obs.Histogram
}

// ObserveModem wraps m so its traffic is accounted in o's registry,
// labeled by modulation name. A nil observer returns a transparent
// wrapper whose instruments short-circuit.
func ObserveModem(m Modem, o *obs.Observer) *ObservedModem {
	om := &ObservedModem{Modem: m}
	if o == nil {
		return om
	}
	reg := o.Metrics
	lbl := obs.Label{Key: "modulation", Value: m.Name()}
	om.bitsModulated = reg.Counter("comm_modem_bits_modulated_total", lbl)
	om.bitsDemodulated = reg.Counter("comm_modem_bits_demodulated_total", lbl)
	om.symbols = reg.Counter("comm_modem_symbols_total", lbl)
	om.bitErrors = reg.Counter("comm_modem_bit_errors_total", lbl)
	om.latency = reg.Histogram("comm_modem_latency_seconds", obs.ExpBuckets(1e-7, 4, 12), lbl)
	reg.Help("comm_modem_bits_modulated_total", "Bits mapped to symbols.")
	reg.Help("comm_modem_bits_demodulated_total", "Bits recovered from symbols.")
	reg.Help("comm_modem_symbols_total", "Baseband symbols produced.")
	reg.Help("comm_modem_bit_errors_total", "Demodulated bits differing from the known transmitted stream.")
	reg.Help("comm_modem_latency_seconds", "Per-call modulate/demodulate latency.")
	return om
}

// Modulate maps bits to symbols, counting bits, symbols and latency.
func (om *ObservedModem) Modulate(bits []byte) ([]Symbol, error) {
	start := time.Now()
	syms, err := om.Modem.Modulate(bits)
	if err != nil {
		return nil, err
	}
	om.bitsModulated.Add(int64(len(bits)))
	om.symbols.Add(int64(len(syms)))
	om.latency.Observe(time.Since(start).Seconds())
	return syms, nil
}

// AppendModulate is the counted pass-through of the allocation-free
// modulate path.
func (om *ObservedModem) AppendModulate(dst []Symbol, bits []byte) ([]Symbol, error) {
	start := time.Now()
	n := len(dst)
	dst, err := om.Modem.AppendModulate(dst, bits)
	if err != nil {
		return dst, err
	}
	om.bitsModulated.Add(int64(len(bits)))
	om.symbols.Add(int64(len(dst) - n))
	om.latency.Observe(time.Since(start).Seconds())
	return dst, nil
}

// Demodulate maps symbols back to bits, counting bits and latency.
func (om *ObservedModem) Demodulate(syms []Symbol) []byte {
	start := time.Now()
	bits := om.Modem.Demodulate(syms)
	om.bitsDemodulated.Add(int64(len(bits)))
	om.latency.Observe(time.Since(start).Seconds())
	return bits
}

// AppendDemodulate is the counted pass-through of the allocation-free
// demodulate path.
func (om *ObservedModem) AppendDemodulate(dst []byte, syms []Symbol) []byte {
	start := time.Now()
	n := len(dst)
	dst = om.Modem.AppendDemodulate(dst, syms)
	om.bitsDemodulated.Add(int64(len(dst) - n))
	om.latency.Observe(time.Since(start).Seconds())
	return dst
}

// CountErrors compares a demodulated stream against the known transmitted
// bits, adds the mismatches to the modem's bit-error counter, and returns
// the mismatch count. Streams of unequal length compare up to the shorter
// one, with the length difference counted as errors.
func (om *ObservedModem) CountErrors(sent, got []byte) int64 {
	n := len(sent)
	if len(got) < n {
		n = len(got)
	}
	var errs int64
	for i := 0; i < n; i++ {
		if sent[i] != got[i] {
			errs++
		}
	}
	errs += int64(len(sent) - n + len(got) - n)
	om.bitErrors.Add(errs)
	return errs
}
