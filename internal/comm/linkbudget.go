package comm

import (
	"fmt"
	"math"

	"mindful/internal/units"
)

// LinkBudget captures the RF path between the implanted and wearable SoCs:
// the losses the transmit signal must overcome and how efficiently the
// transmitter converts DC power into radiated energy.
//
// The paper's Section 5.2 nominal values are PathLossDB = 60,
// MarginDB = 20 (biological tissue: skull, dura, skin), BER = 1e-6.
type LinkBudget struct {
	// PathLossDB is the free-space/tissue path loss in dB.
	PathLossDB float64
	// MarginDB is additional link margin for tissue variability in dB.
	MarginDB float64
	// NoiseFigureDB is the receiver noise figure in dB.
	NoiseFigureDB float64
	// NoiseTempK is the reference noise temperature in kelvin.
	NoiseTempK float64
	// Efficiency is the transmitter implementation efficiency in (0, 1]:
	// the ratio of radiated power to DC power drawn. The paper's "QAM
	// efficiency" parameter; biomedical implementations achieve ≈0.15.
	Efficiency float64
}

// NominalBudget returns the paper's Section 5.2 link assumptions at the
// given transmitter efficiency.
func NominalBudget(efficiency float64) LinkBudget {
	return LinkBudget{
		PathLossDB:    60,
		MarginDB:      20,
		NoiseFigureDB: 0,
		NoiseTempK:    units.BodyTemperature,
		Efficiency:    efficiency,
	}
}

// NominalBER is the paper's target bit error rate for the QAM analysis.
const NominalBER = 1e-6

func (lb LinkBudget) validate() error {
	if lb.Efficiency <= 0 || lb.Efficiency > 1 {
		return fmt.Errorf("comm: efficiency %g outside (0, 1]", lb.Efficiency)
	}
	if lb.NoiseTempK <= 0 {
		return fmt.Errorf("comm: non-positive noise temperature %g", lb.NoiseTempK)
	}
	return nil
}

// TotalLossLinear returns the combined path loss, margin and noise figure
// as a linear power ratio.
func (lb LinkBudget) TotalLossLinear() float64 {
	return units.FromDB(lb.PathLossDB + lb.MarginDB + lb.NoiseFigureDB)
}

// TxEnergyPerBit returns the DC energy the transmitter must spend per bit
// so that the receiver sees the Eb/N0 that modulation m needs for the
// target BER:
//
//	Eb_tx = (Eb/N0)_req · N0 · loss / efficiency
func (lb LinkBudget) TxEnergyPerBit(m Modulation, ber float64) (units.Energy, error) {
	if err := lb.validate(); err != nil {
		return 0, err
	}
	n0 := units.ThermalNoiseDensity(lb.NoiseTempK)
	req := m.RequiredEbN0(ber)
	eb := req * n0 * lb.TotalLossLinear() / lb.Efficiency
	return units.Joules(eb), nil
}

// TxEnergyPerInfoBit returns the DC energy per information bit when the
// payload is protected by a rate-R code (R in (0, 1], e.g. 4/7 for the
// Hamming(7,4) FEC): the transmitter radiates 1/R coded bits per data
// bit, so the per-information-bit energy inflates by the code overhead.
// This is how the FEC option's power cost enters the Section 3.2
// envelope; ARQ retransmissions are accounted separately through
// ARQStats.EnergyOverhead because their cost depends on the realized
// loss, not the configuration.
func (lb LinkBudget) TxEnergyPerInfoBit(m Modulation, ber, codeRate float64) (units.Energy, error) {
	if codeRate <= 0 || codeRate > 1 {
		return 0, fmt.Errorf("comm: code rate %g outside (0, 1]", codeRate)
	}
	eb, err := lb.TxEnergyPerBit(m, ber)
	if err != nil {
		return 0, err
	}
	return units.Joules(eb.Joules() / codeRate), nil
}

// TxPower returns the DC transmit power to sustain rate r with modulation m
// at the target BER: P = T · Eb (Eq. 9).
func (lb LinkBudget) TxPower(m Modulation, ber float64, r units.DataRate) (units.Power, error) {
	eb, err := lb.TxEnergyPerBit(m, ber)
	if err != nil {
		return 0, err
	}
	return r.TimesEnergyPerBit(eb), nil
}

// MinEfficiency returns the smallest transmitter efficiency for which the
// DC power of modulation m at rate r and target BER stays within maxPower.
// It returns efficiency > 1 (infeasible) when even a perfect transmitter
// exceeds the budget.
func (lb LinkBudget) MinEfficiency(m Modulation, ber float64, r units.DataRate, maxPower units.Power) (float64, error) {
	ideal := lb
	ideal.Efficiency = 1
	p, err := ideal.TxPower(m, ber, r)
	if err != nil {
		return 0, err
	}
	if maxPower <= 0 {
		return math.Inf(1), nil
	}
	// P scales as 1/efficiency, so the minimum efficiency is P_ideal / max.
	return p.Watts() / maxPower.Watts(), nil
}

// ShannonCapacity returns the AWGN channel capacity C = B·log2(1 + SNR) in
// bits per second for bandwidth b (Hz) and linear signal-to-noise ratio.
func ShannonCapacity(bandwidthHz, snr float64) units.DataRate {
	if snr < 0 {
		snr = 0
	}
	return units.BitsPerSecond(bandwidthHz * math.Log2(1+snr))
}

// ShannonMinEbN0 is the minimum Eb/N0 (linear) at which reliable
// communication is possible as spectral efficiency → 0: ln 2 ≈ −1.59 dB.
func ShannonMinEbN0() float64 { return math.Ln2 }

// ShannonEbN0ForEfficiency returns the minimum Eb/N0 (linear) for a given
// spectral efficiency η = R/B in bit/s/Hz: (2^η − 1)/η.
func ShannonEbN0ForEfficiency(eta float64) float64 {
	if eta <= 0 {
		return ShannonMinEbN0()
	}
	return (math.Pow(2, eta) - 1) / eta
}

// FixedEbTransmitter is the Section 5.1 transceiver model: a design
// customized for a constant energy per bit, whose power is simply
// P = T · Eb for any rate it is asked to carry.
type FixedEbTransmitter struct {
	// Eb is the constant DC energy per transmitted bit.
	Eb units.Energy
	// MaxRate is the highest rate the design was customized for; 0 means
	// unbounded (the paper's "high-margin" hypothesis).
	MaxRate units.DataRate
}

// Power returns the DC power at rate r.
func (t FixedEbTransmitter) Power(r units.DataRate) units.Power {
	return r.TimesEnergyPerBit(t.Eb)
}

// Supports reports whether the design can carry rate r.
func (t FixedEbTransmitter) Supports(r units.DataRate) bool {
	return t.MaxRate == 0 || r <= t.MaxRate
}
