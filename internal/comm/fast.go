package comm

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// This file holds the batched pipeline's allocation-free fast paths:
// word-accumulator sample packing/unpacking, a Decode variant with
// caller-owned scratch and static rejection errors, and the AWGN
// channel's inlined-sampler transmit. Each is bit-identical to its
// scalar counterpart (pinned by fast_test.go); the scalar APIs remain
// the reference implementations.

// Static rejection errors for DecodeInto. Decode reports the same
// conditions with formatted (allocating) errors; the fast path trades
// the detail for a zero-allocation corrupt-frame path.
var (
	ErrBadSampleBits = errors.New("comm: frame sample bits invalid")
	ErrBadPayloadLen = errors.New("comm: frame payload length mismatch")
	ErrBadPadding    = errors.New("comm: nonzero payload padding bits")
)

// AppendEncodeFast is AppendEncode with a word-accumulator sample
// packer: byte-identical frames, same errors, same sequence-counter
// behavior, no per-bit loop.
func (p *Packetizer) AppendEncodeFast(dst []byte, samples []uint16) ([]byte, error) {
	if len(samples) == 0 {
		return nil, errors.New("comm: empty sample vector")
	}
	if err := checkSamples(samples, p.SampleBits); err != nil {
		return nil, err
	}
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, FrameMagic)
	dst = binary.BigEndian.AppendUint32(dst, p.seq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(samples)))
	dst = append(dst, byte(p.SampleBits), 0)
	dst = appendPackSamplesFast(dst, samples, p.SampleBits)
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
	p.seq++
	return dst, nil
}

// appendPackSamplesFast packs MSB-first through a 64-bit accumulator —
// byte-identical to AppendPackSamples (bits ≤ 16, so the accumulator
// never holds more than 23 pending bits).
func appendPackSamplesFast(dst []byte, samples []uint16, bits int) []byte {
	var acc uint64
	nacc := 0
	for _, s := range samples {
		acc = acc<<bits | uint64(s)
		nacc += bits
		for nacc >= 8 {
			nacc -= 8
			dst = append(dst, byte(acc>>nacc))
		}
	}
	if nacc > 0 {
		// Final partial byte, left-aligned with zero padding bits (the
		// canonical-encoding invariant Decode enforces).
		dst = append(dst, byte(acc<<(8-nacc)))
	}
	return dst
}

// unpackSamplesFast reverses appendPackSamplesFast into dst. data must
// hold at least ceil(count*bits/8) bytes (DecodeInto has already
// validated this).
func unpackSamplesFast(dst []uint16, data []byte, count, bits int) []uint16 {
	var acc uint64
	nacc, di := 0, 0
	mask := uint64(1)<<bits - 1
	for i := 0; i < count; i++ {
		for nacc < bits {
			acc = acc<<8 | uint64(data[di])
			di++
			nacc += 8
		}
		nacc -= bits
		dst = append(dst, uint16(acc>>nacc&mask))
	}
	return dst
}

// DecodeInto is Decode with caller-owned sample scratch: it performs the
// same validation in the same order, rejects with static errors (so the
// corrupt-frame path allocates nothing), and unpacks into scratch
// instead of a fresh slice. The returned Frame's Samples alias the
// returned scratch and are only valid until the next DecodeInto call
// reusing it; callers that retain samples must copy.
func DecodeInto(scratch []uint16, buf []byte) (Frame, []uint16, error) {
	if len(buf) < frameHeaderLen+4 {
		return Frame{}, scratch, ErrShortFrame
	}
	if binary.BigEndian.Uint16(buf[0:2]) != FrameMagic {
		return Frame{}, scratch, ErrBadMagic
	}
	body, trailer := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(trailer) {
		return Frame{}, scratch, ErrBadCRC
	}
	seq := binary.BigEndian.Uint32(buf[2:6])
	chans := int(binary.BigEndian.Uint16(buf[6:8]))
	bits := int(buf[8])
	flags := buf[9]
	if bits < 1 || bits > 16 {
		return Frame{}, scratch, ErrBadSampleBits
	}
	payload := body[frameHeaderLen:]
	if want := (chans*bits + 7) / 8; len(payload) != want {
		return Frame{}, scratch, ErrBadPayloadLen
	}
	if pad := len(payload)*8 - chans*bits; pad > 0 && payload[len(payload)-1]&(1<<pad-1) != 0 {
		return Frame{}, scratch, ErrBadPadding
	}
	scratch = unpackSamplesFast(scratch[:0], payload, chans, bits)
	return Frame{Seq: seq, SampleBits: bits, Samples: scratch, Flags: flags}, scratch, nil
}

// TransmitInPlaceFast is TransmitInPlace through the detrand fast
// sampler: identical noise sequence and draw count, without the
// math/rand wrapper dispatch per draw.
func (c *AWGNChannel) TransmitInPlaceFast(syms []Symbol) {
	sigma := c.sigma
	for i := range syms {
		syms[i].I += c.rng.FastNormFloat64() * sigma
		syms[i].Q += c.rng.FastNormFloat64() * sigma
	}
}

// TransmitSlabFast is TransmitInPlace through the bulk sampler: the
// frame's whole noise vector is drawn into the caller-owned scratch
// (grown as needed and returned) in one FillNorm pass, then applied.
// The draw order is identical — TransmitInPlace consumes I then Q per
// symbol sequentially, which is exactly scratch order — so the noisy
// symbols and the channel's draw count are bit-identical to the scalar
// path.
func (c *AWGNChannel) TransmitSlabFast(syms []Symbol, scratch []float64) []float64 {
	need := 2 * len(syms)
	if cap(scratch) < need {
		scratch = make([]float64, need)
	}
	scratch = scratch[:need]
	c.rng.FillNorm(scratch)
	sigma := c.sigma
	for i := range syms {
		syms[i].I += scratch[2*i] * sigma
		syms[i].Q += scratch[2*i+1] * sigma
	}
	return scratch
}
