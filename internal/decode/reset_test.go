package decode

import (
	"math/rand"
	"testing"

	"mindful/internal/fixed"
	"mindful/internal/nn"
)

// allDecoders builds one of every Decoder implementation from the same
// fitted linear system.
func allDecoders(t *testing.T) (map[string]Decoder, [][]float64) {
	t.Helper()
	states, obs := synthLinearSystem(t, 240, 8, 0.2, 9)
	k, err := FitKalman(states[:160], obs[:160])
	if err != nil {
		t.Fatal(err)
	}
	fg, err := k.SteadyStateGain(500, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	qfg, err := NewQuantizedFixedGain(fg, fixed.Q4_3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FitWiener(states[:160], obs[:160], 3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	net, err := nn.NewNetwork(1, 8,
		nn.RandDense(rng, 8, 16, nn.ReLU),
		nn.RandDense(rng, 16, 2, nn.Identity))
	if err != nil {
		t.Fatal(err)
	}
	nnd, err := NewNNDecoder(net, fixed.Format{})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Decoder{
		"Kalman":             k,
		"FixedGain":          fg,
		"QuantizedFixedGain": qfg,
		"Wiener":             w,
		"NNDecoder":          nnd,
	}, obs
}

// TestResetEqualsFresh: for every decoder implementation, Reset after an
// arbitrary history must reproduce the just-constructed decoder's full
// trajectory bit for bit — not merely the first step. A Reset that
// forgets any temporal state (the Kalman covariance, a Wiener lag slot,
// a fill cursor) diverges somewhere in the trajectory even when step
// zero matches.
func TestResetEqualsFresh(t *testing.T) {
	decs, obs := allDecoders(t)
	for name, d := range decs {
		t.Run(name, func(t *testing.T) {
			fresh, err := Run(d, obs[160:220])
			if err != nil {
				t.Fatal(err)
			}
			// Pollute the temporal state with a different segment, then Reset.
			if _, err := Run(d, obs[:40]); err != nil {
				t.Fatal(err)
			}
			d.Reset()
			again, err := Run(d, obs[160:220])
			if err != nil {
				t.Fatal(err)
			}
			for i := range fresh {
				for j := range fresh[i] {
					if fresh[i][j] != again[i][j] {
						t.Fatalf("step %d dim %d: fresh %v != post-Reset %v",
							i, j, fresh[i][j], again[i][j])
					}
				}
			}
		})
	}
}

// TestDoubleResetIsIdempotent: Reset on an already-fresh decoder must be
// a no-op, including on a decoder that has never stepped (scratch not
// yet built).
func TestDoubleResetIsIdempotent(t *testing.T) {
	decs, obs := allDecoders(t)
	for name, d := range decs {
		t.Run(name, func(t *testing.T) {
			d.Reset() // never stepped
			first, err := d.Step(obs[160])
			if err != nil {
				t.Fatal(err)
			}
			got := append([]float64(nil), first...)
			d.Reset()
			d.Reset()
			again, err := d.Step(obs[160])
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != again[i] {
					t.Fatalf("dim %d: %v != %v after double Reset", i, got[i], again[i])
				}
			}
		})
	}
}
