package decode

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"mindful/internal/fixed"
	"mindful/internal/nn"
)

// rotatedSystem generates a test stream whose observation model rotates
// away from the one the decoders were fitted on — the nonstationarity a
// recalibrating decoder must track and a frozen decoder cannot.
func rotatedSystem(t *testing.T, bins, channels int, angle, noise float64, seed int64) (states, obs [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := make([][]float64, channels)
	for c := range h {
		h[c] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	cosA, sinA := math.Cos(angle), math.Sin(angle)
	states = make([][]float64, bins)
	obs = make([][]float64, bins)
	for i := range states {
		phase := float64(i) * 0.05
		states[i] = []float64{math.Sin(phase), math.Cos(phase * 0.7)}
		// Rotate each unit's preferred direction by angle.
		row := make([]float64, channels)
		for c := range row {
			h0 := h[c][0]*cosA - h[c][1]*sinA
			h1 := h[c][0]*sinA + h[c][1]*cosA
			row[c] = h0*states[i][0] + h1*states[i][1] + rng.NormFloat64()*noise
		}
		obs[i] = row
	}
	return states, obs
}

func trajRMSE(t *testing.T, d Decoder, states, obs [][]float64) float64 {
	t.Helper()
	var s float64
	var n int
	for i := range obs {
		x, err := d.Step(obs[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range x {
			dd := x[j] - states[i][j]
			s += dd * dd
			n++
		}
	}
	return math.Sqrt(s / float64(n))
}

// fitAll fits one of each linear decoder kind from a day-0 (unrotated)
// training segment drawn with the same unit directions as seed.
func fitAll(t *testing.T) map[string]func() Decoder {
	t.Helper()
	states, obs := rotatedSystem(t, 300, 12, 0, 0.1, 21)
	return map[string]func() Decoder{
		"Kalman": func() Decoder {
			k, err := FitKalman(states, obs)
			if err != nil {
				t.Fatal(err)
			}
			return k
		},
		"FixedGain": func() Decoder {
			k, err := FitKalman(states, obs)
			if err != nil {
				t.Fatal(err)
			}
			fg, err := k.SteadyStateGain(500, 1e-9)
			if err != nil {
				t.Fatal(err)
			}
			return fg
		},
		"Wiener": func() Decoder {
			w, err := FitWiener(states, obs, 3, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			return w
		},
	}
}

// TestRecalibratorTracksRotation: after the observation model rotates,
// an adapted decoder of every kind must beat its frozen twin — the core
// CLDA claim the drift sweep quantifies end to end.
func TestRecalibratorTracksRotation(t *testing.T) {
	// Day-1 stream: units rotated 50° from the fitted model.
	states, obs := rotatedSystem(t, 600, 12, 0.9, 0.1, 21)
	for name, build := range fitAll(t) {
		t.Run(name, func(t *testing.T) {
			frozen := build()
			frozenErr := trajRMSE(t, frozen, states[300:], obs[300:])

			adapted := build()
			r, err := NewRecalibrator(adapted, RecalConfig{Buffer: 64, Every: 16})
			if err != nil {
				t.Fatal(err)
			}
			// Closed-loop phase: step and feed supervision on bins 0–299.
			for i := 0; i < 300; i++ {
				if _, err := adapted.Step(obs[i]); err != nil {
					t.Fatal(err)
				}
				if _, err := r.Feed(obs[i], states[i]); err != nil {
					t.Fatal(err)
				}
			}
			if r.Refits() == 0 {
				t.Fatal("no refits applied during the closed-loop phase")
			}
			adaptedErr := trajRMSE(t, adapted, states[300:], obs[300:])
			if adaptedErr >= frozenErr {
				t.Fatalf("adaptation did not help: adapted RMSE %.4f >= frozen %.4f", adaptedErr, frozenErr)
			}
		})
	}
}

// TestRecalibratorDeterministic: identical feed sequences must produce
// bit-identical adapted models — the property the fleet determinism wall
// depends on.
func TestRecalibratorDeterministic(t *testing.T) {
	states, obs := rotatedSystem(t, 200, 8, 0.6, 0.1, 5)
	run := func() ModelState {
		k, err := FitKalman(states[:50], obs[:50])
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRecalibrator(k, RecalConfig{Buffer: 32, Every: 8})
		if err != nil {
			t.Fatal(err)
		}
		for i := range obs {
			if _, err := r.Feed(obs[i], states[i]); err != nil {
				t.Fatal(err)
			}
		}
		return r.ModelState()
	}
	a, b := run(), run()
	for i := range a.H {
		if a.H[i] != b.H[i] || a.Q[i%len(a.Q)] != b.Q[i%len(b.Q)] {
			t.Fatalf("adapted models diverge at %d", i)
		}
	}
}

// TestRecalibratorStateRoundTrip: RecalState+ModelState snapshots must
// resume bit-identically — restore at feed K, continue, and match the
// uninterrupted run's model and estimates.
func TestRecalibratorStateRoundTrip(t *testing.T) {
	states, obs := rotatedSystem(t, 240, 12, 0.6, 0.1, 11)
	for name, build := range fitAll(t) {
		if name == "FixedGain" && testing.Short() {
			continue
		}
		t.Run(name, func(t *testing.T) {
			cfg := RecalConfig{Buffer: 32, Every: 8}
			d1 := build()
			r1, err := NewRecalibrator(d1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			const snapAt = 120
			var recalSt RecalState
			var modelSt ModelState
			for i := range obs {
				if i == snapAt {
					recalSt = r1.State()
					modelSt = r1.ModelState()
				}
				if _, err := r1.Feed(obs[i], states[i]); err != nil {
					t.Fatal(err)
				}
			}
			want := r1.ModelState()

			d2 := build()
			r2, err := NewRecalibrator(d2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := r2.RestoreState(recalSt); err != nil {
				t.Fatal(err)
			}
			if err := r2.RestoreModel(modelSt); err != nil {
				t.Fatal(err)
			}
			for i := snapAt; i < len(obs); i++ {
				if _, err := r2.Feed(obs[i], states[i]); err != nil {
					t.Fatal(err)
				}
			}
			got := r2.ModelState()
			if r1.Refits() != r2.Refits() {
				t.Fatalf("refit counts diverge: %d vs %d", r1.Refits(), r2.Refits())
			}
			for _, pair := range [][2][]float64{{want.H, got.H}, {want.Q, got.Q}, {want.W, got.W}, {want.K, got.K}} {
				if len(pair[0]) != len(pair[1]) {
					t.Fatalf("model field lengths diverge: %d vs %d", len(pair[0]), len(pair[1]))
				}
				for i := range pair[0] {
					if pair[0][i] != pair[1][i] {
						t.Fatalf("restored model diverges at element %d: %v vs %v", i, pair[0][i], pair[1][i])
					}
				}
			}
		})
	}
}

// TestAdaptedResetEqualsFresh: Reset on an adapted decoder must clear
// only temporal state — a fresh decoder given the same adapted model via
// RestoreModel must reproduce its trajectory bit for bit.
func TestAdaptedResetEqualsFresh(t *testing.T) {
	states, obs := rotatedSystem(t, 300, 12, 0.6, 0.1, 13)
	for name, build := range fitAll(t) {
		t.Run(name, func(t *testing.T) {
			d1 := build()
			r1, err := NewRecalibrator(d1, RecalConfig{Buffer: 32, Every: 8})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				if _, err := d1.Step(obs[i]); err != nil {
					t.Fatal(err)
				}
				if _, err := r1.Feed(obs[i], states[i]); err != nil {
					t.Fatal(err)
				}
			}
			d1.Reset()
			fresh1, err := Run(d1, obs[200:])
			if err != nil {
				t.Fatal(err)
			}

			d2 := build()
			r2, err := NewRecalibrator(d2, RecalConfig{Buffer: 32, Every: 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := r2.RestoreModel(r1.ModelState()); err != nil {
				t.Fatal(err)
			}
			fresh2, err := Run(d2, obs[200:])
			if err != nil {
				t.Fatal(err)
			}
			for i := range fresh1 {
				for j := range fresh1[i] {
					if fresh1[i][j] != fresh2[i][j] {
						t.Fatalf("step %d dim %d: post-Reset %v != fresh-with-model %v",
							i, j, fresh1[i][j], fresh2[i][j])
					}
				}
			}
		})
	}
}

// TestRecalibratorRejects covers construction and feed-time validation.
func TestRecalibratorRejects(t *testing.T) {
	states, obs := rotatedSystem(t, 100, 8, 0, 0.1, 2)
	k, err := FitKalman(states, obs)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	net, err := nn.NewNetwork(1, 8,
		nn.RandDense(rng, 8, 16, nn.ReLU),
		nn.RandDense(rng, 16, 2, nn.Identity))
	if err != nil {
		t.Fatal(err)
	}
	nnd, err := NewNNDecoder(net, fixed.Format{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecalibrator(nnd, RecalConfig{}); !errors.Is(err, ErrUnsupportedDecoder) {
		t.Fatalf("DNN decoder accepted for recalibration: %v", err)
	}

	for _, bad := range []RecalConfig{
		{Buffer: 2},
		{Every: 100, Buffer: 8},
		{Blend: 1.5},
		{Blend: math.NaN()},
		{Ridge: -1},
		{ProcessNoise: -0.1},
	} {
		if _, err := NewRecalibrator(k, bad); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}

	r, err := NewRecalibrator(k, RecalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Feed(obs[0][:3], states[0]); err == nil {
		t.Fatal("short observation accepted")
	}
	if _, err := r.Feed(obs[0], []float64{math.NaN(), 0}); err == nil {
		t.Fatal("NaN intent accepted")
	}

	st := r.State()
	st.Head = 999
	if err := r.RestoreState(st); err == nil {
		t.Fatal("out-of-range head accepted")
	}
	var m ModelState
	m.H = []float64{1}
	if err := r.RestoreModel(m); err == nil {
		t.Fatal("mis-sized model accepted")
	}
}
