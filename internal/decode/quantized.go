package decode

import (
	"errors"
	"fmt"
	"math"

	"mindful/internal/fixed"
	"mindful/internal/linalg"
)

// QuantizedFixedGain is a fixed-point implementation of the steady-state
// Kalman decoder: all matrices are quantized to a Q-format and every
// multiply-accumulate runs through the datapath model in internal/fixed.
// This is the form an implanted ASIC implements — constant coefficients in
// ROM, narrow MACs — and mirrors the tunable accuracy/energy trade-off of
// the paper's companion Kalman-architecture work (its references [31, 32]):
// fewer bits, less energy, more decoding error.
type QuantizedFixedGain struct {
	Format fixed.Format

	// Quantized matrices with per-matrix scale factors (value = q·scale).
	a, h, k          [][]fixed.Value
	aScale           float64
	hScale, kScale   float64
	stateDim, obsDim int

	x []float64
}

// NewQuantizedFixedGain quantizes a float fixed-gain decoder into the
// given format.
func NewQuantizedFixedGain(fg *FixedGain, f fixed.Format) (*QuantizedFixedGain, error) {
	if fg == nil {
		return nil, errors.New("decode: nil fixed-gain decoder")
	}
	if !f.Valid() {
		return nil, fmt.Errorf("decode: invalid format %v", f)
	}
	q := &QuantizedFixedGain{
		Format:   f,
		stateDim: fg.A.Rows,
		obsDim:   fg.H.Rows,
		x:        make([]float64, fg.A.Rows),
	}
	q.a, q.aScale = quantizeMatrix(fg.A, f)
	q.h, q.hScale = quantizeMatrix(fg.H, f)
	q.k, q.kScale = quantizeMatrix(fg.K, f)
	return q, nil
}

// quantizeMatrix maps a matrix into format f with a per-matrix max-abs
// scale, returning rows of fixed values and the scale.
func quantizeMatrix(m linalg.Matrix, f fixed.Format) ([][]fixed.Value, float64) {
	scale := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	rows := make([][]fixed.Value, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := make([]fixed.Value, m.Cols)
		for c := 0; c < m.Cols; c++ {
			row[c] = fixed.FromFloat(m.At(r, c)/scale, f)
		}
		rows[r] = row
	}
	return rows, scale
}

// mulQuantized computes (q·scale)·vec through the fixed-point datapath:
// the vector is quantized against its own max-abs scale, each output is an
// exact fixed accumulation, and the result is rescaled to float.
func mulQuantized(rows [][]fixed.Value, scale float64, vec []float64, f fixed.Format) []float64 {
	vScale := 0.0
	for _, v := range vec {
		if a := math.Abs(v); a > vScale {
			vScale = a
		}
	}
	if vScale == 0 {
		vScale = 1
	}
	qv := make([]fixed.Value, len(vec))
	for i, v := range vec {
		qv[i] = fixed.FromFloat(v/vScale, f)
	}
	out := make([]float64, len(rows))
	for r, row := range rows {
		acc := fixed.NewAcc(f)
		for c := range row {
			acc.MAC(row[c], qv[c])
		}
		out[r] = acc.Float() * scale * vScale
	}
	return out
}

// Step implements Decoder: x ← A·x + K·(z − H·A·x), entirely in the
// quantized datapath.
func (q *QuantizedFixedGain) Step(z []float64) ([]float64, error) {
	if err := checkObservation(z, q.obsDim); err != nil {
		return nil, err
	}
	xPred := mulQuantized(q.a, q.aScale, q.x, q.Format)
	zPred := mulQuantized(q.h, q.hScale, xPred, q.Format)
	innov := make([]float64, len(z))
	for i := range z {
		innov[i] = z[i] - zPred[i]
	}
	corr := mulQuantized(q.k, q.kScale, innov, q.Format)
	for i := range q.x {
		q.x[i] = xPred[i] + corr[i]
	}
	out := make([]float64, len(q.x))
	copy(out, q.x)
	return out, nil
}

// Reset implements Decoder.
func (q *QuantizedFixedGain) Reset() {
	for i := range q.x {
		q.x[i] = 0
	}
}

// MACsPerStep implements Decoder (same structure as the float decoder).
func (q *QuantizedFixedGain) MACsPerStep() int {
	ds, do := q.stateDim, q.obsDim
	return ds*ds + do*ds + ds*do
}

// EnergyPerStepJ returns the datapath energy of one step given a per-MAC
// energy that scales quadratically with datapath width relative to 8 bits
// (multiplier area/energy ∝ bits²) — the knob behind the tunable
// accuracy/energy trade-off.
func (q *QuantizedFixedGain) EnergyPerStepJ(macStep8bitJ float64) float64 {
	widthFactor := float64(q.Format.Bits) * float64(q.Format.Bits) / 64
	return float64(q.MACsPerStep()) * macStep8bitJ * widthFactor
}

// AccuracyStudy compares the quantized decoder against its float reference
// on a trajectory, returning the RMSE between the two state estimates per
// dimension.
func AccuracyStudy(fg *FixedGain, f fixed.Format, obs [][]float64) ([]float64, error) {
	q, err := NewQuantizedFixedGain(fg, f)
	if err != nil {
		return nil, err
	}
	fg.Reset()
	defer fg.Reset()
	refTraj, err := Run(fg, obs)
	if err != nil {
		return nil, err
	}
	qTraj, err := Run(q, obs)
	if err != nil {
		return nil, err
	}
	dims := len(refTraj[0])
	out := make([]float64, dims)
	for d := 0; d < dims; d++ {
		out[d] = RMSE(Column(refTraj, d), Column(qTraj, d))
	}
	return out, nil
}
