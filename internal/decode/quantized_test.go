package decode

import (
	"math"
	"testing"

	"mindful/internal/fixed"
)

func trainedFixedGain(t *testing.T) (*FixedGain, [][]float64, [][]float64) {
	t.Helper()
	states, obs := synthLinearSystem(t, 600, 16, 0.3, 21)
	k, err := FitKalman(states[:400], obs[:400])
	if err != nil {
		t.Fatal(err)
	}
	fg, err := k.SteadyStateGain(500, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	return fg, states[400:], obs[400:]
}

func TestQuantizedTracksFloatAt16Bits(t *testing.T) {
	fg, states, obs := trainedFixedGain(t)
	q, err := NewQuantizedFixedGain(fg, fixed.Q15)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Run(q, obs)
	if err != nil {
		t.Fatal(err)
	}
	for dim := 0; dim < 2; dim++ {
		r := Correlation(Column(states, dim), Column(est, dim))
		if r < 0.85 {
			t.Errorf("16-bit quantized decoder dim %d correlation = %.3f", dim, r)
		}
	}
}

func TestAccuracyDegradesGracefullyWithBits(t *testing.T) {
	// The tunable accuracy/energy trade-off: fewer datapath bits, larger
	// deviation from the float reference — monotonically.
	fg, _, obs := trainedFixedGain(t)
	formats := []fixed.Format{
		{Bits: 16, Frac: 15},
		{Bits: 12, Frac: 11},
		{Bits: 8, Frac: 7},
		{Bits: 6, Frac: 5},
	}
	prev := -1.0
	for _, f := range formats {
		rmse, err := AccuracyStudy(fg, f, obs)
		if err != nil {
			t.Fatal(err)
		}
		worst := math.Max(rmse[0], rmse[1])
		if prev >= 0 && worst < prev*0.5 {
			t.Errorf("error did not grow when shrinking to %v: %v after %v", f, worst, prev)
		}
		prev = worst
	}
	// 16-bit error is small in absolute terms (states are O(1)).
	rmse16, err := AccuracyStudy(fg, fixed.Q15, obs)
	if err != nil {
		t.Fatal(err)
	}
	if rmse16[0] > 0.05 || rmse16[1] > 0.05 {
		t.Errorf("16-bit RMSE vs float = %v, want < 0.05", rmse16)
	}
}

func TestEnergyScalesWithWidth(t *testing.T) {
	fg, _, _ := trainedFixedGain(t)
	q16, err := NewQuantizedFixedGain(fg, fixed.Q15)
	if err != nil {
		t.Fatal(err)
	}
	q8, err := NewQuantizedFixedGain(fg, fixed.Q7)
	if err != nil {
		t.Fatal(err)
	}
	const macJ = 1e-13 // 0.1 pJ per 8-bit MAC
	e16 := q16.EnergyPerStepJ(macJ)
	e8 := q8.EnergyPerStepJ(macJ)
	if math.Abs(e16/e8-4) > 1e-9 {
		t.Errorf("16-bit/8-bit energy ratio = %v, want 4 (quadratic in width)", e16/e8)
	}
	if q8.MACsPerStep() != fg.MACsPerStep() {
		t.Errorf("quantized MAC count %d != float %d", q8.MACsPerStep(), fg.MACsPerStep())
	}
}

func TestQuantizedValidation(t *testing.T) {
	if _, err := NewQuantizedFixedGain(nil, fixed.Q7); err == nil {
		t.Errorf("nil decoder should fail")
	}
	fg, _, _ := trainedFixedGain(t)
	if _, err := NewQuantizedFixedGain(fg, fixed.Format{Bits: 1, Frac: 0}); err == nil {
		t.Errorf("invalid format should fail")
	}
	q, err := NewQuantizedFixedGain(fg, fixed.Q15)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Step(make([]float64, 3)); err == nil {
		t.Errorf("wrong observation size should fail")
	}
}

func TestQuantizedReset(t *testing.T) {
	fg, _, obs := trainedFixedGain(t)
	q, err := NewQuantizedFixedGain(fg, fixed.Q15)
	if err != nil {
		t.Fatal(err)
	}
	first, err := q.Step(obs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Step(obs[1]); err != nil {
		t.Fatal(err)
	}
	q.Reset()
	again, err := q.Step(obs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("Reset did not restore initial state")
		}
	}
}

func TestZeroMatrixQuantization(t *testing.T) {
	// A decoder with an all-zero gain must survive quantization (scale
	// fallback) and behave like pure prediction.
	fg, _, obs := trainedFixedGain(t)
	zeroK := fg.K.Scale(0)
	z := &FixedGain{A: fg.A, H: fg.H, K: zeroK, x: fg.x}
	z.Reset()
	q, err := NewQuantizedFixedGain(z, fixed.Q15)
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Step(obs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Errorf("zero-gain decoder from zero state should stay at zero, got %v", out)
			break
		}
	}
}
