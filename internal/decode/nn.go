package decode

import (
	"errors"
	"fmt"

	"mindful/internal/fixed"
	"mindful/internal/nn"
)

// NNDecoder adapts a feed-forward network from internal/nn to the Decoder
// interface: one observation vector in, one state estimate out. It is the
// DNN arm of the paper's control-algorithm comparison (Section 2.3 vs
// Section 5) — the same serving loop that steps a Kalman or Wiener
// baseline can step a neural decoder and compare MAC budgets on equal
// terms.
//
// With a fixed-point format set, every dense layer runs through
// nn.QuantizedDense — the accelerator's 8-bit datapath model — instead of
// the float engine, mirroring what an implanted inference ASIC computes.
// The network is stateless between steps (its temporal context, if any,
// lives in the caller's binning), so Reset has nothing to clear and
// checkpointing needs no NN-side state.
type NNDecoder struct {
	net    *nn.Network
	dense  []*nn.Dense // non-nil when the fixed-point path is usable
	format fixed.Format
	quant  bool
	macs   int
	in     int
	out    []float64
}

// NewNNDecoder wraps a network whose input is a flat 1×n vector. A valid
// fixed-point format routes inference through the quantized datapath;
// the zero Format runs float64. The quantized path requires an all-dense
// network (the MLP family BuildFromSpec produces).
func NewNNDecoder(net *nn.Network, f fixed.Format) (*NNDecoder, error) {
	if net == nil {
		return nil, errors.New("decode: nil network")
	}
	if net.InCh != 1 {
		return nil, fmt.Errorf("decode: NN decoder needs a flat input, got %d channels", net.InCh)
	}
	macs, err := net.TotalMACs()
	if err != nil {
		return nil, err
	}
	d := &NNDecoder{net: net, format: f, macs: macs, in: net.InLen}
	if f != (fixed.Format{}) {
		if !f.Valid() {
			return nil, fmt.Errorf("decode: invalid fixed-point format %v", f)
		}
		for i, l := range net.Layers {
			dl, ok := l.(*nn.Dense)
			if !ok {
				return nil, fmt.Errorf("decode: quantized NN decoder needs dense layers; layer %d is not", i)
			}
			d.dense = append(d.dense, dl)
		}
		d.quant = true
	}
	return d, nil
}

// Step implements Decoder.
func (d *NNDecoder) Step(z []float64) ([]float64, error) {
	if err := checkObservation(z, d.in); err != nil {
		return nil, err
	}
	if d.quant {
		cur := z
		for i, l := range d.dense {
			next, err := nn.QuantizedDense(l, cur, d.format)
			if err != nil {
				return nil, fmt.Errorf("decode: quantized layer %d: %w", i, err)
			}
			cur = next
		}
		d.out = append(d.out[:0], cur...)
		return d.out, nil
	}
	res, err := d.net.Forward(nn.FromVector(z))
	if err != nil {
		return nil, err
	}
	d.out = append(d.out[:0], res.Data...)
	return d.out, nil
}

// Reset implements Decoder; the network carries no temporal state.
func (d *NNDecoder) Reset() {}

// MACsPerStep implements Decoder.
func (d *NNDecoder) MACsPerStep() int { return d.macs }
