package decode

import (
	"errors"
	"fmt"
	"math"

	"mindful/internal/linalg"
)

// This file implements closed-loop decoder adaptation (CLDA) in the
// smoothbatch style: a bounded ring buffer collects (observation,
// intended-kinematics) pairs during use, and every RecalConfig.Every
// feeds the readout model is refit by ridge least squares over the
// buffer and blended into the live decoder,
//
//	θ ← (1−λ)·θ_old + λ·θ_batch
//
// so the decoder tracks tuning rotation, unit turnover and baseline
// walk (internal/drift) without ever pausing for an open-loop
// recalibration session. The refit path is allocation-free at steady
// state — every Gram matrix, inverse and scratch product is
// preallocated at construction and pinned by alloc_test.go — because it
// runs inside the serving tick loop.

// ErrUnsupportedDecoder is returned when a Recalibrator is asked to
// adapt a decoder kind it has no refit rule for (e.g. the DNN decoder).
var ErrUnsupportedDecoder = errors.New("decode: decoder kind does not support recalibration")

// RecalConfig parameterizes closed-loop recalibration.
type RecalConfig struct {
	// Buffer is the ring capacity in bins (default 64).
	Buffer int
	// Every refits after this many feeds (default 16).
	Every int
	// Blend is the smoothbatch λ in (0, 1]: the weight of the fresh
	// batch fit against the running model (default 0.5).
	Blend float64
	// Ridge regularizes the batch least squares (default 1e-6).
	Ridge float64
	// ProcessNoise is the diagonal state-noise prior used when the
	// steady-state gain of a FixedGain decoder is recomputed after a
	// readout refit (default 0.01).
	ProcessNoise float64
}

func (c RecalConfig) withDefaults() RecalConfig {
	if c.Buffer == 0 {
		c.Buffer = 64
	}
	if c.Every == 0 {
		c.Every = 16
	}
	if c.Blend == 0 {
		c.Blend = 0.5
	}
	if c.Ridge == 0 {
		c.Ridge = 1e-6
	}
	if c.ProcessNoise == 0 {
		c.ProcessNoise = 0.01
	}
	return c
}

// Validate rejects unusable recalibration parameters.
func (c RecalConfig) Validate() error {
	c = c.withDefaults()
	if c.Buffer < 4 {
		return fmt.Errorf("decode: recal buffer %d too small (need ≥ 4)", c.Buffer)
	}
	if c.Every < 1 {
		return fmt.Errorf("decode: recal period %d must be positive", c.Every)
	}
	if c.Every > c.Buffer {
		return fmt.Errorf("decode: recal period %d exceeds buffer %d", c.Every, c.Buffer)
	}
	if !(c.Blend > 0 && c.Blend <= 1) || math.IsNaN(c.Blend) {
		return fmt.Errorf("decode: recal blend %g outside (0, 1]", c.Blend)
	}
	if c.Ridge < 0 || math.IsNaN(c.Ridge) || math.IsInf(c.Ridge, 0) {
		return fmt.Errorf("decode: recal ridge %g invalid", c.Ridge)
	}
	if c.ProcessNoise <= 0 || math.IsNaN(c.ProcessNoise) || math.IsInf(c.ProcessNoise, 0) {
		return fmt.Errorf("decode: recal process noise %g must be positive", c.ProcessNoise)
	}
	return nil
}

// Recalibrator adapts a linear decoder (Kalman, FixedGain or Wiener)
// online from a bounded buffer of supervised pairs.
type Recalibrator struct {
	cfg RecalConfig
	dec Decoder

	ds, do int // state and observation dimensions
	minFit int // feeds required before the first refit

	// Supervision rings, cap rows each; head is the next write slot.
	obsRing []float64 // cap × do
	intRing []float64 // cap × ds
	count   int
	head    int

	sinceRefit int
	refits     int64

	// Readout-fit scratch: Hᵀ = (XᵀX + λI)⁻¹·XᵀZ over the buffer.
	gram, gramInv, gramWork linalg.Matrix // ds×ds
	xz, hNewT               linalg.Matrix // ds×do
	qNew                    linalg.Matrix // do×do
	zHat                    []float64     // do

	// FixedGain extras: blended-H candidate, running Q estimate and the
	// in-place Riccati recursion that recomputes the steady-state gain.
	hBlend   linalg.Matrix // do×ds
	qEst     linalg.Matrix // do×do
	wPrior   linalg.Matrix // ds×ds
	aT, hT   linalg.Matrix
	ricP     linalg.Matrix // ds×ds
	ricPPred linalg.Matrix // ds×ds
	ricT1    linalg.Matrix // ds×ds
	ricT2    linalg.Matrix // ds×ds
	ricS     linalg.Matrix // do×do
	ricSInv  linalg.Matrix // do×do
	ricWork  linalg.Matrix // do×do
	ricDsdo  linalg.Matrix // ds×do
	ricG     linalg.Matrix // ds×do
	ricGPrev linalg.Matrix // ds×do
	ricDods  linalg.Matrix // do×ds

	// Wiener extras: chronological unroll of the rings plus the
	// lag-stacked design and its Gram system (doL = do·Lags).
	seqObs, seqInt  []float64
	design, designT linalg.Matrix // rows×doL / doL×rows (max shapes)
	target          linalg.Matrix // rows×ds
	wGram, wGramInv linalg.Matrix // doL×doL
	wGramWork       linalg.Matrix // doL×doL
	wxz, wNewT      linalg.Matrix // doL×ds
}

// NewRecalibrator wraps d with closed-loop adaptation. The decoder is
// mutated in place by refits; d must be one of the linear decoder types.
func NewRecalibrator(d Decoder, cfg RecalConfig) (*Recalibrator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := &Recalibrator{cfg: cfg, dec: d}
	switch dd := d.(type) {
	case *Kalman:
		r.ds, r.do = dd.A.Rows, dd.H.Rows
		r.minFit = maxInt(4, r.ds+2)
	case *FixedGain:
		r.ds, r.do = dd.A.Rows, dd.H.Rows
		r.minFit = maxInt(4, r.ds+2)
	case *Wiener:
		r.ds, r.do = dd.W.Rows, dd.obsDim()
		r.minFit = maxInt(4, dd.Lags+2)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedDecoder, d)
	}
	if r.minFit > cfg.Buffer {
		return nil, fmt.Errorf("decode: recal buffer %d below minimum fit size %d", cfg.Buffer, r.minFit)
	}
	cap := cfg.Buffer
	r.obsRing = make([]float64, cap*r.do)
	r.intRing = make([]float64, cap*r.ds)

	switch dd := d.(type) {
	case *Kalman, *FixedGain:
		r.gram = linalg.NewMatrix(r.ds, r.ds)
		r.gramInv = linalg.NewMatrix(r.ds, r.ds)
		r.gramWork = linalg.NewMatrix(r.ds, r.ds)
		r.xz = linalg.NewMatrix(r.ds, r.do)
		r.hNewT = linalg.NewMatrix(r.ds, r.do)
		r.qNew = linalg.NewMatrix(r.do, r.do)
		r.zHat = make([]float64, r.do)
		if fg, ok := dd.(*FixedGain); ok {
			r.hBlend = linalg.NewMatrix(r.do, r.ds)
			// qEst starts at the same floor FitKalman applies to Q, so
			// the first Riccati recursion is well-posed before any batch
			// residuals have been blended in.
			r.qEst = linalg.NewMatrix(r.do, r.do)
			for i := 0; i < r.do; i++ {
				r.qEst.Set(i, i, 1e-6)
			}
			r.wPrior = linalg.NewMatrix(r.ds, r.ds)
			for i := 0; i < r.ds; i++ {
				r.wPrior.Set(i, i, cfg.ProcessNoise)
			}
			r.aT = fg.A.T()
			r.hT = linalg.NewMatrix(r.ds, r.do)
			linalg.TInto(r.hT, fg.H)
			r.ricP = linalg.NewMatrix(r.ds, r.ds)
			r.ricPPred = linalg.NewMatrix(r.ds, r.ds)
			r.ricT1 = linalg.NewMatrix(r.ds, r.ds)
			r.ricT2 = linalg.NewMatrix(r.ds, r.ds)
			r.ricS = linalg.NewMatrix(r.do, r.do)
			r.ricSInv = linalg.NewMatrix(r.do, r.do)
			r.ricWork = linalg.NewMatrix(r.do, r.do)
			r.ricDsdo = linalg.NewMatrix(r.ds, r.do)
			r.ricG = linalg.NewMatrix(r.ds, r.do)
			r.ricGPrev = linalg.NewMatrix(r.ds, r.do)
			r.ricDods = linalg.NewMatrix(r.do, r.ds)
		}
	case *Wiener:
		doL := r.do * dd.Lags
		maxRows := cap - dd.Lags + 1
		r.seqObs = make([]float64, cap*r.do)
		r.seqInt = make([]float64, cap*r.ds)
		r.design = linalg.NewMatrix(maxRows, doL)
		r.designT = linalg.NewMatrix(doL, maxRows)
		r.target = linalg.NewMatrix(maxRows, r.ds)
		r.wGram = linalg.NewMatrix(doL, doL)
		r.wGramInv = linalg.NewMatrix(doL, doL)
		r.wGramWork = linalg.NewMatrix(doL, doL)
		r.wxz = linalg.NewMatrix(doL, r.ds)
		r.wNewT = linalg.NewMatrix(doL, r.ds)
	}
	return r, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Decoder returns the adapted decoder.
func (r *Recalibrator) Decoder() Decoder { return r.dec }

// Refits returns the number of refits applied so far.
func (r *Recalibrator) Refits() int64 { return r.refits }

// Feed records one supervised pair and refits the decoder when the
// period elapses. It reports whether a refit was applied. A refit that
// fails (singular system, diverging gain recursion) leaves the decoder
// untouched and surfaces the error; the buffer keeps accumulating.
func (r *Recalibrator) Feed(obs, intent []float64) (bool, error) {
	if err := checkObservation(obs, r.do); err != nil {
		return false, err
	}
	if err := checkObservation(intent, r.ds); err != nil {
		return false, fmt.Errorf("decode: recal intent: %w", err)
	}
	cap := r.cfg.Buffer
	copy(r.obsRing[r.head*r.do:(r.head+1)*r.do], obs)
	copy(r.intRing[r.head*r.ds:(r.head+1)*r.ds], intent)
	r.head = (r.head + 1) % cap
	if r.count < cap {
		r.count++
	}
	r.sinceRefit++
	if r.sinceRefit < r.cfg.Every || r.count < r.minFit {
		return false, nil
	}
	r.sinceRefit = 0
	if err := r.refit(); err != nil {
		return false, err
	}
	r.refits++
	return true, nil
}

func (r *Recalibrator) refit() error {
	switch d := r.dec.(type) {
	case *Kalman:
		return r.refitKalman(d)
	case *FixedGain:
		return r.refitFixedGain(d)
	case *Wiener:
		return r.refitWiener(d)
	}
	return ErrUnsupportedDecoder
}

// fitReadout solves Hᵀ_batch = (XᵀX + λI)⁻¹·XᵀZ over the buffer into
// r.hNewT and the batch residual covariance into r.qNew. The Gram
// accumulation is order-invariant, so the rings are consumed in place.
func (r *Recalibrator) fitReadout() error {
	for i := range r.gram.Data {
		r.gram.Data[i] = 0
	}
	for i := range r.xz.Data {
		r.xz.Data[i] = 0
	}
	for t := 0; t < r.count; t++ {
		x := r.intRing[t*r.ds : (t+1)*r.ds]
		z := r.obsRing[t*r.do : (t+1)*r.do]
		for i, xi := range x {
			for j, xj := range x {
				r.gram.Data[i*r.ds+j] += xi * xj
			}
			for j, zj := range z {
				r.xz.Data[i*r.do+j] += xi * zj
			}
		}
	}
	for i := 0; i < r.ds; i++ {
		r.gram.Data[i*r.ds+i] += r.cfg.Ridge
	}
	if err := linalg.InverseInto(r.gramInv, r.gramWork, r.gram); err != nil {
		return fmt.Errorf("decode: recal readout fit: %w", err)
	}
	linalg.MulInto(r.hNewT, r.gramInv, r.xz)

	for i := range r.qNew.Data {
		r.qNew.Data[i] = 0
	}
	for t := 0; t < r.count; t++ {
		x := r.intRing[t*r.ds : (t+1)*r.ds]
		z := r.obsRing[t*r.do : (t+1)*r.do]
		for j := 0; j < r.do; j++ {
			s := 0.0
			for i, xi := range x {
				s += xi * r.hNewT.Data[i*r.do+j]
			}
			r.zHat[j] = z[j] - s
		}
		for i, ri := range r.zHat {
			for j, rj := range r.zHat {
				r.qNew.Data[i*r.do+j] += ri * rj
			}
		}
	}
	n := float64(r.count)
	for i := range r.qNew.Data {
		r.qNew.Data[i] /= n
	}
	for i := 0; i < r.do; i++ {
		r.qNew.Data[i*r.do+i] += 1e-6
	}
	return nil
}

func (r *Recalibrator) refitKalman(k *Kalman) error {
	if err := r.fitReadout(); err != nil {
		return err
	}
	l := r.cfg.Blend
	for i := 0; i < r.do; i++ {
		for j := 0; j < r.ds; j++ {
			k.H.Data[i*r.ds+j] = (1-l)*k.H.Data[i*r.ds+j] + l*r.hNewT.Data[j*r.do+i]
		}
	}
	for i := range k.Q.Data {
		k.Q.Data[i] = (1-l)*k.Q.Data[i] + l*r.qNew.Data[i]
	}
	// The Step scratch caches Hᵀ; it must track the blended H.
	k.ensureScratch()
	linalg.TInto(k.s.hT, k.H)
	return nil
}

func (r *Recalibrator) refitFixedGain(f *FixedGain) error {
	if err := r.fitReadout(); err != nil {
		return err
	}
	l := r.cfg.Blend
	for i := 0; i < r.do; i++ {
		for j := 0; j < r.ds; j++ {
			r.hBlend.Data[i*r.ds+j] = (1-l)*f.H.Data[i*r.ds+j] + l*r.hNewT.Data[j*r.do+i]
		}
	}
	// Candidate Q: the running estimate blended toward the batch
	// residual covariance. Committed only if the gain recursion converges.
	for i := range r.qNew.Data {
		r.qNew.Data[i] = (1-l)*r.qEst.Data[i] + l*r.qNew.Data[i]
	}
	linalg.TInto(r.hT, r.hBlend)
	// In-place Riccati recursion to the steady-state gain for the
	// blended readout, mirroring Kalman.SteadyStateGain.
	linalg.IdentityInto(r.ricP)
	const maxIter, tol = 500, 1e-9
	converged := false
	for it := 0; it < maxIter; it++ {
		linalg.MulInto(r.ricT1, f.A, r.ricP)
		linalg.MulInto(r.ricPPred, r.ricT1, r.aT)
		linalg.AddInto(r.ricPPred, r.ricPPred, r.wPrior)
		linalg.MulInto(r.ricDods, r.hBlend, r.ricPPred)
		linalg.MulInto(r.ricS, r.ricDods, r.hT)
		linalg.AddInto(r.ricS, r.ricS, r.qNew)
		if err := linalg.InverseInto(r.ricSInv, r.ricWork, r.ricS); err != nil {
			return fmt.Errorf("decode: recal gain recursion: %w", err)
		}
		linalg.MulInto(r.ricDsdo, r.ricPPred, r.hT)
		linalg.MulInto(r.ricG, r.ricDsdo, r.ricSInv)
		linalg.MulInto(r.ricT1, r.ricG, r.hBlend)
		linalg.IdentityInto(r.ricT2)
		linalg.SubInto(r.ricT2, r.ricT2, r.ricT1)
		linalg.MulInto(r.ricP, r.ricT2, r.ricPPred)
		if it > 0 && linalg.MaxAbsDiff(r.ricG, r.ricGPrev) < tol {
			converged = true
			break
		}
		linalg.CopyInto(r.ricGPrev, r.ricG)
	}
	if !converged {
		return errors.New("decode: recal gain recursion did not converge")
	}
	linalg.CopyInto(f.H, r.hBlend)
	linalg.CopyInto(f.K, r.ricG)
	linalg.CopyInto(r.qEst, r.qNew)
	return nil
}

func (r *Recalibrator) refitWiener(w *Wiener) error {
	// Unroll the rings oldest-first: lag stacking needs chronology.
	start := 0
	if r.count == r.cfg.Buffer {
		start = r.head
	}
	for t := 0; t < r.count; t++ {
		src := (start + t) % r.cfg.Buffer
		copy(r.seqObs[t*r.do:(t+1)*r.do], r.obsRing[src*r.do:(src+1)*r.do])
		copy(r.seqInt[t*r.ds:(t+1)*r.ds], r.intRing[src*r.ds:(src+1)*r.ds])
	}
	lags := w.Lags
	rows := r.count - lags + 1
	if rows < 2 {
		return fmt.Errorf("decode: recal buffer %d too short for %d lags", r.count, lags)
	}
	doL := r.do * lags
	design := linalg.Matrix{Rows: rows, Cols: doL, Data: r.design.Data[:rows*doL]}
	target := linalg.Matrix{Rows: rows, Cols: r.ds, Data: r.target.Data[:rows*r.ds]}
	for t := 0; t < rows; t++ {
		at := t + lags - 1
		for lag := 0; lag < lags; lag++ {
			copy(design.Data[t*doL+lag*r.do:t*doL+(lag+1)*r.do],
				r.seqObs[(at-lag)*r.do:(at-lag+1)*r.do])
		}
		copy(target.Data[t*r.ds:(t+1)*r.ds], r.seqInt[at*r.ds:(at+1)*r.ds])
	}
	designT := linalg.Matrix{Rows: doL, Cols: rows, Data: r.designT.Data[:doL*rows]}
	linalg.TInto(designT, design)
	linalg.MulInto(r.wGram, designT, design)
	for i := 0; i < doL; i++ {
		r.wGram.Data[i*doL+i] += r.cfg.Ridge
	}
	if err := linalg.InverseInto(r.wGramInv, r.wGramWork, r.wGram); err != nil {
		return fmt.Errorf("decode: recal Wiener fit: %w", err)
	}
	linalg.MulInto(r.wxz, designT, target)
	linalg.MulInto(r.wNewT, r.wGramInv, r.wxz)
	l := r.cfg.Blend
	for i := 0; i < r.ds; i++ {
		for j := 0; j < doL; j++ {
			w.W.Data[i*doL+j] = (1-l)*w.W.Data[i*doL+j] + l*r.wNewT.Data[j*r.ds+i]
		}
	}
	return nil
}

// ModelState is the refit-mutated model of an adapted decoder, the part
// of decoder state a fresh construction cannot reproduce. Fields not
// applicable to the decoder kind are nil.
type ModelState struct {
	H []float64 // Kalman/FixedGain readout, do×ds row-major
	Q []float64 // Kalman observation noise / FixedGain running estimate, do×do
	W []float64 // Wiener weights, ds×(do·Lags)
	K []float64 // FixedGain steady-state gain, ds×do
}

// ModelState captures the decoder matrices refits mutate.
func (r *Recalibrator) ModelState() ModelState {
	var st ModelState
	switch d := r.dec.(type) {
	case *Kalman:
		st.H = append([]float64(nil), d.H.Data...)
		st.Q = append([]float64(nil), d.Q.Data...)
	case *FixedGain:
		st.H = append([]float64(nil), d.H.Data...)
		st.Q = append([]float64(nil), r.qEst.Data...)
		st.K = append([]float64(nil), d.K.Data...)
	case *Wiener:
		st.W = append([]float64(nil), d.W.Data...)
	}
	return st
}

// RestoreModel overwrites the decoder's refit-mutated matrices (and the
// caches derived from them) from a snapshot.
func (r *Recalibrator) RestoreModel(st ModelState) error {
	for name, vals := range map[string][]float64{"H": st.H, "Q": st.Q, "W": st.W, "K": st.K} {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("decode: non-finite model state %s[%d] = %v", name, i, v)
			}
		}
	}
	switch d := r.dec.(type) {
	case *Kalman:
		if len(st.H) != r.do*r.ds || len(st.Q) != r.do*r.do {
			return fmt.Errorf("decode: Kalman model state dims %d/%d != %d/%d",
				len(st.H), len(st.Q), r.do*r.ds, r.do*r.do)
		}
		copy(d.H.Data, st.H)
		copy(d.Q.Data, st.Q)
		d.ensureScratch()
		linalg.TInto(d.s.hT, d.H)
	case *FixedGain:
		if len(st.H) != r.do*r.ds || len(st.Q) != r.do*r.do || len(st.K) != r.ds*r.do {
			return fmt.Errorf("decode: FixedGain model state dims %d/%d/%d != %d/%d/%d",
				len(st.H), len(st.Q), len(st.K), r.do*r.ds, r.do*r.do, r.ds*r.do)
		}
		copy(d.H.Data, st.H)
		copy(r.qEst.Data, st.Q)
		copy(d.K.Data, st.K)
		linalg.TInto(r.hT, d.H)
	case *Wiener:
		if len(st.W) != len(d.W.Data) {
			return fmt.Errorf("decode: Wiener model state dim %d != %d", len(st.W), len(d.W.Data))
		}
		copy(d.W.Data, st.W)
	}
	return nil
}

// RecalState is the recalibrator's serializable mid-run state: the
// supervision rings and refit counters. The decoder model itself is
// captured separately by ModelState.
type RecalState struct {
	Obs        []float64
	Intent     []float64
	Count      int
	Head       int
	SinceRefit int
	Refits     int64
}

// State captures the recalibrator's mid-run state.
func (r *Recalibrator) State() RecalState {
	return RecalState{
		Obs:        append([]float64(nil), r.obsRing...),
		Intent:     append([]float64(nil), r.intRing...),
		Count:      r.count,
		Head:       r.head,
		SinceRefit: r.sinceRefit,
		Refits:     r.refits,
	}
}

// RestoreState overwrites the recalibrator's mid-run state.
func (r *Recalibrator) RestoreState(st RecalState) error {
	cap := r.cfg.Buffer
	if len(st.Obs) != cap*r.do || len(st.Intent) != cap*r.ds {
		return fmt.Errorf("decode: recal state rings %d/%d != %d/%d",
			len(st.Obs), len(st.Intent), cap*r.do, cap*r.ds)
	}
	if st.Count < 0 || st.Count > cap || st.Head < 0 || st.Head >= cap {
		return fmt.Errorf("decode: recal state cursor %d/%d outside buffer %d", st.Count, st.Head, cap)
	}
	if st.SinceRefit < 0 || st.SinceRefit > r.cfg.Every || st.Refits < 0 {
		return fmt.Errorf("decode: recal state counters %d/%d invalid", st.SinceRefit, st.Refits)
	}
	for _, v := range st.Obs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("decode: non-finite recal observation ring value %v", v)
		}
	}
	for _, v := range st.Intent {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("decode: non-finite recal intent ring value %v", v)
		}
	}
	copy(r.obsRing, st.Obs)
	copy(r.intRing, st.Intent)
	r.count = st.Count
	r.head = st.Head
	r.sinceRefit = st.SinceRefit
	r.refits = st.Refits
	return nil
}
