// Package decode implements the traditional linear BCI decoders the paper
// positions as the baseline for on-implant computation (Section 2.3):
// a Kalman filter, a Wiener (lagged linear) filter, and the shared feature
// extraction and accuracy metrics. Each decoder reports its per-step
// multiply-accumulate count so the power framework can compare linear
// control algorithms against DNNs on equal terms.
//
// Decoders are built to run in the serving loop: Step is allocation-free
// at steady state (scratch matrices are reused across calls, pinned by
// alloc_test.go), rejects non-finite or mis-sized observations instead of
// propagating NaNs, and the temporal state every decoder carries between
// steps (Kalman x/P, Wiener lag ring) is exposed through State/RestoreState
// pairs so a mid-stream decoder can be checkpointed and resumed
// bit-identically.
package decode

import (
	"errors"
	"fmt"
	"math"

	"mindful/internal/linalg"
)

// BinSpikeCounts converts per-channel spike sample indices into binned
// firing-rate features: result[t][c] is the spike count of channel c in bin
// t. nSamples is the length of the recording and binSamples the bin width,
// both in samples.
func BinSpikeCounts(spikeLog [][]int, nSamples, binSamples int) ([][]float64, error) {
	if binSamples <= 0 {
		return nil, errors.New("decode: bin width must be positive")
	}
	if nSamples <= 0 {
		return nil, errors.New("decode: recording length must be positive")
	}
	bins := nSamples / binSamples
	out := make([][]float64, bins)
	flat := make([]float64, bins*len(spikeLog))
	for t := range out {
		out[t] = flat[t*len(spikeLog) : (t+1)*len(spikeLog)]
	}
	for c, log := range spikeLog {
		for _, idx := range log {
			b := idx / binSamples
			if b >= 0 && b < bins {
				out[b][c]++
			}
		}
	}
	return out, nil
}

// Decoder maps one observation vector to one state estimate.
type Decoder interface {
	// Step consumes one observation and returns the state estimate. The
	// returned slice is owned by the decoder and overwritten by the next
	// Step or Reset — callers that keep estimates must copy them.
	Step(z []float64) ([]float64, error)
	// Reset clears temporal state.
	Reset()
	// MACsPerStep returns the multiply-accumulate operations one Step
	// executes, the quantity the power framework prices.
	MACsPerStep() int
}

// checkObservation rejects mis-sized or non-finite observation vectors:
// a NaN or Inf fed into a recursive filter poisons every later estimate,
// so it must surface as an error at the boundary, never propagate.
func checkObservation(z []float64, want int) error {
	if len(z) != want {
		return fmt.Errorf("decode: observation length %d != %d", len(z), want)
	}
	for i, v := range z {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("decode: non-finite observation[%d] = %v", i, v)
		}
	}
	return nil
}

// Kalman is the standard BCI Kalman filter decoder: a linear-Gaussian
// state-space model
//
//	x_t = A·x_{t−1} + w,  w ~ N(0, W)
//	z_t = H·x_t + q,      q ~ N(0, Q)
//
// with the usual predict/update recursion.
type Kalman struct {
	A, W, H, Q linalg.Matrix

	x linalg.Matrix // ds×1 state estimate
	p linalg.Matrix // ds×ds covariance

	s kalmanScratch
}

// kalmanScratch holds every intermediate of one predict/update cycle so
// Step allocates nothing at steady state.
type kalmanScratch struct {
	ready              bool
	aT, hT             linalg.Matrix // cached transposes
	xPred              linalg.Matrix // ds×1
	pPred, dsds, imkh  linalg.Matrix // ds×ds
	zm, innov, hxp     linalg.Matrix // do×1
	sMat, sInv, doWork linalg.Matrix // do×do
	dsdo, gain         linalg.Matrix // ds×do
	dods               linalg.Matrix // do×ds
	out                []float64
}

func (k *Kalman) ensureScratch() {
	if k.s.ready {
		return
	}
	ds, do := k.A.Rows, k.H.Rows
	if k.x.Rows == 0 {
		k.x = linalg.NewMatrix(ds, 1)
		k.p = linalg.Identity(ds)
	}
	k.s = kalmanScratch{
		ready:  true,
		aT:     k.A.T(),
		hT:     k.H.T(),
		xPred:  linalg.NewMatrix(ds, 1),
		pPred:  linalg.NewMatrix(ds, ds),
		dsds:   linalg.NewMatrix(ds, ds),
		imkh:   linalg.NewMatrix(ds, ds),
		zm:     linalg.NewMatrix(do, 1),
		innov:  linalg.NewMatrix(do, 1),
		hxp:    linalg.NewMatrix(do, 1),
		sMat:   linalg.NewMatrix(do, do),
		sInv:   linalg.NewMatrix(do, do),
		doWork: linalg.NewMatrix(do, do),
		dsdo:   linalg.NewMatrix(ds, do),
		gain:   linalg.NewMatrix(ds, do),
		dods:   linalg.NewMatrix(do, ds),
		out:    make([]float64, ds),
	}
}

// FitKalman estimates the model matrices from training pairs: states[t] is
// the true latent state (e.g. cursor velocity) and obs[t] the observation
// (binned rates) at bin t. Fits use least squares with a small ridge.
func FitKalman(states, obs [][]float64) (*Kalman, error) {
	if len(states) != len(obs) {
		return nil, fmt.Errorf("decode: %d states vs %d observations", len(states), len(obs))
	}
	if len(states) < 3 {
		return nil, errors.New("decode: need at least 3 training bins")
	}
	ds := len(states[0])
	xAll := linalg.FromRows(states)
	zAll := linalg.FromRows(obs)

	// A: states[1:] ≈ states[:-1]·Aᵀ.
	xPrev := linalg.FromRows(states[:len(states)-1])
	xNext := linalg.FromRows(states[1:])
	aT, err := linalg.LeastSquares(xPrev, xNext, 1e-6)
	if err != nil {
		return nil, fmt.Errorf("decode: fitting A: %w", err)
	}
	a := aT.T()
	w := residualCovariance(xNext, xPrev.Mul(aT))

	// H: obs ≈ states·Hᵀ.
	hT, err := linalg.LeastSquares(xAll, zAll, 1e-6)
	if err != nil {
		return nil, fmt.Errorf("decode: fitting H: %w", err)
	}
	h := hT.T()
	q := residualCovariance(zAll, xAll.Mul(hT))
	// Regularize Q so the innovation covariance stays invertible even for
	// silent channels.
	for i := 0; i < q.Rows; i++ {
		q.Set(i, i, q.At(i, i)+1e-6)
	}

	k := &Kalman{A: a, W: w, H: h, Q: q}
	k.x = linalg.NewMatrix(ds, 1)
	k.p = linalg.Identity(ds)
	return k, nil
}

// residualCovariance returns cov of (y − ŷ) rows.
func residualCovariance(y, yHat linalg.Matrix) linalg.Matrix {
	diff := y.Sub(yHat)
	n := float64(diff.Rows)
	return diff.T().Mul(diff).Scale(1 / n)
}

// Step implements Decoder with one predict/update cycle. All
// intermediates live in reusable scratch, so a steady-state call
// allocates nothing.
func (k *Kalman) Step(z []float64) ([]float64, error) {
	if err := checkObservation(z, k.H.Rows); err != nil {
		return nil, err
	}
	k.ensureScratch()
	s := &k.s
	// Predict.
	linalg.MulInto(s.xPred, k.A, k.x)
	linalg.MulInto(s.dsds, k.A, k.p)
	linalg.MulInto(s.pPred, s.dsds, s.aT)
	linalg.AddInto(s.pPred, s.pPred, k.W)
	// Update.
	copy(s.zm.Data, z)
	linalg.MulInto(s.hxp, k.H, s.xPred)
	linalg.SubInto(s.innov, s.zm, s.hxp)
	linalg.MulInto(s.dods, k.H, s.pPred)
	linalg.MulInto(s.sMat, s.dods, s.hT)
	linalg.AddInto(s.sMat, s.sMat, k.Q)
	if err := linalg.InverseInto(s.sInv, s.doWork, s.sMat); err != nil {
		return nil, fmt.Errorf("decode: innovation covariance singular: %w", err)
	}
	linalg.MulInto(s.dsdo, s.pPred, s.hT)
	linalg.MulInto(s.gain, s.dsdo, s.sInv)
	linalg.MulInto(k.x, s.gain, s.innov)
	linalg.AddInto(k.x, k.x, s.xPred)
	linalg.MulInto(s.dsds, s.gain, k.H)
	linalg.IdentityInto(s.imkh)
	linalg.SubInto(s.imkh, s.imkh, s.dsds)
	linalg.MulInto(k.p, s.imkh, s.pPred)
	copy(s.out, k.x.Data)
	return s.out, nil
}

// Reset implements Decoder: the state estimate returns to zero and the
// covariance to the identity prior — exactly the fresh-decoder state, the
// property the Reset-equals-fresh regression test pins.
func (k *Kalman) Reset() {
	if k.x.Rows == 0 {
		k.x = linalg.NewMatrix(k.A.Rows, 1)
		k.p = linalg.Identity(k.A.Rows)
		return
	}
	for i := range k.x.Data {
		k.x.Data[i] = 0
	}
	linalg.IdentityInto(k.p)
}

// KalmanState is the filter's serializable temporal state: the estimate
// and the error covariance (row-major).
type KalmanState struct {
	X []float64
	P []float64
}

// State captures the filter's temporal state.
func (k *Kalman) State() KalmanState {
	k.ensureScratch()
	return KalmanState{
		X: append([]float64(nil), k.x.Data...),
		P: append([]float64(nil), k.p.Data...),
	}
}

// RestoreState overwrites the filter's temporal state.
func (k *Kalman) RestoreState(st KalmanState) error {
	ds := k.A.Rows
	if len(st.X) != ds || len(st.P) != ds*ds {
		return fmt.Errorf("decode: Kalman state dims %d/%d != %d/%d", len(st.X), len(st.P), ds, ds*ds)
	}
	k.ensureScratch()
	copy(k.x.Data, st.X)
	copy(k.p.Data, st.P)
	return nil
}

// MACsPerStep implements Decoder: the dominant matrix products of one
// predict/update cycle (ignoring the cubic-in-do inversion, which real
// implementations hoist to a steady-state gain).
func (k *Kalman) MACsPerStep() int {
	ds, do := k.A.Rows, k.H.Rows
	return 2*ds*ds + // A·x, plus A·P·Aᵀ amortized per column
		2*ds*ds*ds + // covariance products
		2*ds*do + // H·x, Kᵀ·innovation
		ds*ds*do // gain application
}

// SteadyStateGain runs the covariance recursion until the Kalman gain
// converges and returns a fixed-gain decoder, the form implanted hardware
// implements (constant-coefficient MACs, no inversion in the loop).
func (k *Kalman) SteadyStateGain(maxIter int, tol float64) (*FixedGain, error) {
	p := linalg.Identity(k.A.Rows)
	var gain linalg.Matrix
	for i := 0; i < maxIter; i++ {
		pPred := k.A.Mul(p).Mul(k.A.T()).Add(k.W)
		s := k.H.Mul(pPred).Mul(k.H.T()).Add(k.Q)
		sInv, err := s.Inverse()
		if err != nil {
			return nil, err
		}
		g := pPred.Mul(k.H.T()).Mul(sInv)
		pNew := linalg.Identity(p.Rows).Sub(g.Mul(k.H)).Mul(pPred)
		if i > 0 && linalg.MaxAbsDiff(g, gain) < tol {
			return &FixedGain{A: k.A, H: k.H, K: g, x: linalg.NewMatrix(k.A.Rows, 1)}, nil
		}
		gain, p = g, pNew
	}
	return nil, errors.New("decode: steady-state gain did not converge")
}

// FixedGain is a steady-state Kalman decoder: x ← A·x + K·(z − H·A·x).
type FixedGain struct {
	A, H, K linalg.Matrix
	x       linalg.Matrix

	s fixedGainScratch
}

type fixedGainScratch struct {
	ready             bool
	xPred, corr       linalg.Matrix // ds×1
	zm, innov, hxPred linalg.Matrix // do×1
	out               []float64
}

func (f *FixedGain) ensureScratch() {
	if f.s.ready {
		return
	}
	ds, do := f.A.Rows, f.H.Rows
	if f.x.Rows == 0 {
		f.x = linalg.NewMatrix(ds, 1)
	}
	f.s = fixedGainScratch{
		ready:  true,
		xPred:  linalg.NewMatrix(ds, 1),
		corr:   linalg.NewMatrix(ds, 1),
		zm:     linalg.NewMatrix(do, 1),
		innov:  linalg.NewMatrix(do, 1),
		hxPred: linalg.NewMatrix(do, 1),
		out:    make([]float64, ds),
	}
}

// Step implements Decoder.
func (f *FixedGain) Step(z []float64) ([]float64, error) {
	if err := checkObservation(z, f.H.Rows); err != nil {
		return nil, err
	}
	f.ensureScratch()
	s := &f.s
	linalg.MulInto(s.xPred, f.A, f.x)
	copy(s.zm.Data, z)
	linalg.MulInto(s.hxPred, f.H, s.xPred)
	linalg.SubInto(s.innov, s.zm, s.hxPred)
	linalg.MulInto(s.corr, f.K, s.innov)
	linalg.AddInto(f.x, s.xPred, s.corr)
	copy(s.out, f.x.Data)
	return s.out, nil
}

// Reset implements Decoder.
func (f *FixedGain) Reset() {
	if f.x.Rows == 0 {
		f.x = linalg.NewMatrix(f.A.Rows, 1)
		return
	}
	for i := range f.x.Data {
		f.x.Data[i] = 0
	}
}

// State captures the decoder's temporal state (the estimate vector).
func (f *FixedGain) State() []float64 {
	f.ensureScratch()
	return append([]float64(nil), f.x.Data...)
}

// RestoreState overwrites the decoder's temporal state.
func (f *FixedGain) RestoreState(x []float64) error {
	if len(x) != f.A.Rows {
		return fmt.Errorf("decode: FixedGain state dim %d != %d", len(x), f.A.Rows)
	}
	f.ensureScratch()
	copy(f.x.Data, x)
	return nil
}

// MACsPerStep implements Decoder: A·x + H·x̂ + K·innovation.
func (f *FixedGain) MACsPerStep() int {
	ds, do := f.A.Rows, f.H.Rows
	return ds*ds + do*ds + ds*do
}

// Wiener is a lagged linear (FIR) decoder: x_t = Σ_{l=0}^{L−1} W_l·z_{t−l}.
type Wiener struct {
	// W maps the stacked lag vector (do·L) to the state (ds).
	W    linalg.Matrix
	Lags int

	// ring is the lag history, newest-first from head: slot
	// (head+l) mod Lags holds z_{t−l}. Unfilled slots are zero, matching
	// the implicit zero-padding of a cold filter.
	ring    []float64
	head    int
	filled  int
	stacked []float64
	out     []float64
}

// FitWiener fits a Wiener filter with the given number of lags by ridge
// regression over the training pairs.
func FitWiener(states, obs [][]float64, lags int, ridge float64) (*Wiener, error) {
	if lags <= 0 {
		return nil, errors.New("decode: lags must be positive")
	}
	if len(states) != len(obs) {
		return nil, fmt.Errorf("decode: %d states vs %d observations", len(states), len(obs))
	}
	if len(obs) <= lags {
		return nil, errors.New("decode: not enough training bins for lag depth")
	}
	do := len(obs[0])
	rows := len(obs) - lags + 1
	design := linalg.NewMatrix(rows, do*lags)
	target := linalg.NewMatrix(rows, len(states[0]))
	for t := 0; t < rows; t++ {
		at := t + lags - 1 // current bin index
		for l := 0; l < lags; l++ {
			for c := 0; c < do; c++ {
				design.Set(t, l*do+c, obs[at-l][c])
			}
		}
		copy(target.Data[t*target.Cols:(t+1)*target.Cols], states[at])
	}
	wT, err := linalg.LeastSquares(design, target, ridge)
	if err != nil {
		return nil, fmt.Errorf("decode: fitting Wiener: %w", err)
	}
	return &Wiener{W: wT.T(), Lags: lags}, nil
}

func (w *Wiener) obsDim() int { return w.W.Cols / w.Lags }

func (w *Wiener) ensureScratch() {
	if w.ring == nil {
		w.ring = make([]float64, w.W.Cols)
		w.stacked = make([]float64, w.W.Cols)
		w.out = make([]float64, w.W.Rows)
	}
}

// Step implements Decoder. The lag history lives in a fixed ring buffer,
// so a steady-state call allocates nothing.
func (w *Wiener) Step(z []float64) ([]float64, error) {
	do := w.obsDim()
	if err := checkObservation(z, do); err != nil {
		return nil, err
	}
	w.ensureScratch()
	// Rotate the ring back one slot and write the newest vector at head.
	w.head = (w.head + w.Lags - 1) % w.Lags
	copy(w.ring[w.head*do:(w.head+1)*do], z)
	if w.filled < w.Lags {
		w.filled++
	}
	for l := 0; l < w.Lags; l++ {
		slot := (w.head + l) % w.Lags
		copy(w.stacked[l*do:(l+1)*do], w.ring[slot*do:(slot+1)*do])
	}
	linalg.MulVecInto(w.out, w.W, w.stacked)
	return w.out, nil
}

// Reset implements Decoder: the lag ring is zeroed and the fill cursor
// rewound, so the next Step behaves exactly like a fresh decoder's first.
func (w *Wiener) Reset() {
	for i := range w.ring {
		w.ring[i] = 0
	}
	w.head = 0
	w.filled = 0
}

// WienerState is the filter's serializable temporal state: the lag
// vectors, newest first (length ≤ Lags · obsDim).
type WienerState struct {
	// Lagged holds the filled history, newest vector first, flattened.
	Lagged []float64
}

// State captures the lag history, newest vector first.
func (w *Wiener) State() WienerState {
	w.ensureScratch()
	do := w.obsDim()
	out := make([]float64, w.filled*do)
	for l := 0; l < w.filled; l++ {
		slot := (w.head + l) % w.Lags
		copy(out[l*do:(l+1)*do], w.ring[slot*do:(slot+1)*do])
	}
	return WienerState{Lagged: out}
}

// RestoreState overwrites the lag history from a snapshot.
func (w *Wiener) RestoreState(st WienerState) error {
	do := w.obsDim()
	if len(st.Lagged)%do != 0 || len(st.Lagged) > w.Lags*do {
		return fmt.Errorf("decode: Wiener lag state length %d not a multiple of %d within %d lags",
			len(st.Lagged), do, w.Lags)
	}
	w.ensureScratch()
	w.Reset()
	w.filled = len(st.Lagged) / do
	copy(w.ring, st.Lagged)
	return nil
}

// MACsPerStep implements Decoder.
func (w *Wiener) MACsPerStep() int { return w.W.Rows * w.W.Cols }

// Run feeds every observation through a decoder, returning the estimate
// trajectory. Each returned row is a private copy (Step reuses its output
// buffer).
func Run(d Decoder, obs [][]float64) ([][]float64, error) {
	out := make([][]float64, len(obs))
	for i, z := range obs {
		x, err := d.Step(z)
		if err != nil {
			return nil, err
		}
		out[i] = append([]float64(nil), x...)
	}
	return out, nil
}

// Correlation returns the Pearson correlation between two equal-length
// scalar series; 0 if degenerate.
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := mean(a), mean(b)
	var num, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		num += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return num / math.Sqrt(va*vb)
}

// RMSE returns the root-mean-square error between two scalar series.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// Column extracts component j from a trajectory.
func Column(traj [][]float64, j int) []float64 {
	out := make([]float64, len(traj))
	for i, row := range traj {
		out[i] = row[j]
	}
	return out
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
