// Package decode implements the traditional linear BCI decoders the paper
// positions as the baseline for on-implant computation (Section 2.3):
// a Kalman filter, a Wiener (lagged linear) filter, and the shared feature
// extraction and accuracy metrics. Each decoder reports its per-step
// multiply-accumulate count so the power framework can compare linear
// control algorithms against DNNs on equal terms.
package decode

import (
	"errors"
	"fmt"
	"math"

	"mindful/internal/linalg"
)

// BinSpikeCounts converts per-channel spike sample indices into binned
// firing-rate features: result[t][c] is the spike count of channel c in bin
// t. nSamples is the length of the recording and binSamples the bin width,
// both in samples.
func BinSpikeCounts(spikeLog [][]int, nSamples, binSamples int) ([][]float64, error) {
	if binSamples <= 0 {
		return nil, errors.New("decode: bin width must be positive")
	}
	if nSamples <= 0 {
		return nil, errors.New("decode: recording length must be positive")
	}
	bins := nSamples / binSamples
	out := make([][]float64, bins)
	flat := make([]float64, bins*len(spikeLog))
	for t := range out {
		out[t] = flat[t*len(spikeLog) : (t+1)*len(spikeLog)]
	}
	for c, log := range spikeLog {
		for _, idx := range log {
			b := idx / binSamples
			if b >= 0 && b < bins {
				out[b][c]++
			}
		}
	}
	return out, nil
}

// Decoder maps one observation vector to one state estimate.
type Decoder interface {
	// Step consumes one observation and returns the state estimate.
	Step(z []float64) ([]float64, error)
	// Reset clears temporal state.
	Reset()
	// MACsPerStep returns the multiply-accumulate operations one Step
	// executes, the quantity the power framework prices.
	MACsPerStep() int
}

// Kalman is the standard BCI Kalman filter decoder: a linear-Gaussian
// state-space model
//
//	x_t = A·x_{t−1} + w,  w ~ N(0, W)
//	z_t = H·x_t + q,      q ~ N(0, Q)
//
// with the usual predict/update recursion.
type Kalman struct {
	A, W, H, Q linalg.Matrix

	x linalg.Matrix // ds×1 state estimate
	p linalg.Matrix // ds×ds covariance
}

// FitKalman estimates the model matrices from training pairs: states[t] is
// the true latent state (e.g. cursor velocity) and obs[t] the observation
// (binned rates) at bin t. Fits use least squares with a small ridge.
func FitKalman(states, obs [][]float64) (*Kalman, error) {
	if len(states) != len(obs) {
		return nil, fmt.Errorf("decode: %d states vs %d observations", len(states), len(obs))
	}
	if len(states) < 3 {
		return nil, errors.New("decode: need at least 3 training bins")
	}
	ds := len(states[0])
	xAll := linalg.FromRows(states)
	zAll := linalg.FromRows(obs)

	// A: states[1:] ≈ states[:-1]·Aᵀ.
	xPrev := linalg.FromRows(states[:len(states)-1])
	xNext := linalg.FromRows(states[1:])
	aT, err := linalg.LeastSquares(xPrev, xNext, 1e-6)
	if err != nil {
		return nil, fmt.Errorf("decode: fitting A: %w", err)
	}
	a := aT.T()
	w := residualCovariance(xNext, xPrev.Mul(aT))

	// H: obs ≈ states·Hᵀ.
	hT, err := linalg.LeastSquares(xAll, zAll, 1e-6)
	if err != nil {
		return nil, fmt.Errorf("decode: fitting H: %w", err)
	}
	h := hT.T()
	q := residualCovariance(zAll, xAll.Mul(hT))
	// Regularize Q so the innovation covariance stays invertible even for
	// silent channels.
	for i := 0; i < q.Rows; i++ {
		q.Set(i, i, q.At(i, i)+1e-6)
	}

	k := &Kalman{A: a, W: w, H: h, Q: q}
	k.x = linalg.NewMatrix(ds, 1)
	k.p = linalg.Identity(ds)
	return k, nil
}

// residualCovariance returns cov of (y − ŷ) rows.
func residualCovariance(y, yHat linalg.Matrix) linalg.Matrix {
	diff := y.Sub(yHat)
	n := float64(diff.Rows)
	return diff.T().Mul(diff).Scale(1 / n)
}

// Step implements Decoder with one predict/update cycle.
func (k *Kalman) Step(z []float64) ([]float64, error) {
	if len(z) != k.H.Rows {
		return nil, fmt.Errorf("decode: observation length %d != %d", len(z), k.H.Rows)
	}
	// Predict.
	xPred := k.A.Mul(k.x)
	pPred := k.A.Mul(k.p).Mul(k.A.T()).Add(k.W)
	// Update.
	zm := linalg.NewMatrix(len(z), 1)
	copy(zm.Data, z)
	innov := zm.Sub(k.H.Mul(xPred))
	s := k.H.Mul(pPred).Mul(k.H.T()).Add(k.Q)
	sInv, err := s.Inverse()
	if err != nil {
		return nil, fmt.Errorf("decode: innovation covariance singular: %w", err)
	}
	gain := pPred.Mul(k.H.T()).Mul(sInv)
	k.x = xPred.Add(gain.Mul(innov))
	k.p = linalg.Identity(pPred.Rows).Sub(gain.Mul(k.H)).Mul(pPred)
	out := make([]float64, k.x.Rows)
	copy(out, k.x.Data)
	return out, nil
}

// Reset implements Decoder.
func (k *Kalman) Reset() {
	k.x = linalg.NewMatrix(k.A.Rows, 1)
	k.p = linalg.Identity(k.A.Rows)
}

// MACsPerStep implements Decoder: the dominant matrix products of one
// predict/update cycle (ignoring the cubic-in-do inversion, which real
// implementations hoist to a steady-state gain).
func (k *Kalman) MACsPerStep() int {
	ds, do := k.A.Rows, k.H.Rows
	return 2*ds*ds + // A·x, plus A·P·Aᵀ amortized per column
		2*ds*ds*ds + // covariance products
		2*ds*do + // H·x, Kᵀ·innovation
		ds*ds*do // gain application
}

// SteadyStateGain runs the covariance recursion until the Kalman gain
// converges and returns a fixed-gain decoder, the form implanted hardware
// implements (constant-coefficient MACs, no inversion in the loop).
func (k *Kalman) SteadyStateGain(maxIter int, tol float64) (*FixedGain, error) {
	p := linalg.Identity(k.A.Rows)
	var gain linalg.Matrix
	for i := 0; i < maxIter; i++ {
		pPred := k.A.Mul(p).Mul(k.A.T()).Add(k.W)
		s := k.H.Mul(pPred).Mul(k.H.T()).Add(k.Q)
		sInv, err := s.Inverse()
		if err != nil {
			return nil, err
		}
		g := pPred.Mul(k.H.T()).Mul(sInv)
		pNew := linalg.Identity(p.Rows).Sub(g.Mul(k.H)).Mul(pPred)
		if i > 0 && linalg.MaxAbsDiff(g, gain) < tol {
			return &FixedGain{A: k.A, H: k.H, K: g, x: linalg.NewMatrix(k.A.Rows, 1)}, nil
		}
		gain, p = g, pNew
	}
	return nil, errors.New("decode: steady-state gain did not converge")
}

// FixedGain is a steady-state Kalman decoder: x ← A·x + K·(z − H·A·x).
type FixedGain struct {
	A, H, K linalg.Matrix
	x       linalg.Matrix
}

// Step implements Decoder.
func (f *FixedGain) Step(z []float64) ([]float64, error) {
	if len(z) != f.H.Rows {
		return nil, fmt.Errorf("decode: observation length %d != %d", len(z), f.H.Rows)
	}
	xPred := f.A.Mul(f.x)
	zm := linalg.NewMatrix(len(z), 1)
	copy(zm.Data, z)
	f.x = xPred.Add(f.K.Mul(zm.Sub(f.H.Mul(xPred))))
	out := make([]float64, f.x.Rows)
	copy(out, f.x.Data)
	return out, nil
}

// Reset implements Decoder.
func (f *FixedGain) Reset() { f.x = linalg.NewMatrix(f.A.Rows, 1) }

// MACsPerStep implements Decoder: A·x + H·x̂ + K·innovation.
func (f *FixedGain) MACsPerStep() int {
	ds, do := f.A.Rows, f.H.Rows
	return ds*ds + do*ds + ds*do
}

// Wiener is a lagged linear (FIR) decoder: x_t = Σ_{l=0}^{L−1} W_l·z_{t−l}.
type Wiener struct {
	// W maps the stacked lag vector (do·L) to the state (ds).
	W    linalg.Matrix
	Lags int

	hist [][]float64
}

// FitWiener fits a Wiener filter with the given number of lags by ridge
// regression over the training pairs.
func FitWiener(states, obs [][]float64, lags int, ridge float64) (*Wiener, error) {
	if lags <= 0 {
		return nil, errors.New("decode: lags must be positive")
	}
	if len(states) != len(obs) {
		return nil, fmt.Errorf("decode: %d states vs %d observations", len(states), len(obs))
	}
	if len(obs) <= lags {
		return nil, errors.New("decode: not enough training bins for lag depth")
	}
	do := len(obs[0])
	rows := len(obs) - lags + 1
	design := linalg.NewMatrix(rows, do*lags)
	target := linalg.NewMatrix(rows, len(states[0]))
	for t := 0; t < rows; t++ {
		at := t + lags - 1 // current bin index
		for l := 0; l < lags; l++ {
			for c := 0; c < do; c++ {
				design.Set(t, l*do+c, obs[at-l][c])
			}
		}
		copy(target.Data[t*target.Cols:(t+1)*target.Cols], states[at])
	}
	wT, err := linalg.LeastSquares(design, target, ridge)
	if err != nil {
		return nil, fmt.Errorf("decode: fitting Wiener: %w", err)
	}
	return &Wiener{W: wT.T(), Lags: lags}, nil
}

// Step implements Decoder.
func (w *Wiener) Step(z []float64) ([]float64, error) {
	do := w.W.Cols / w.Lags
	if len(z) != do {
		return nil, fmt.Errorf("decode: observation length %d != %d", len(z), do)
	}
	zc := make([]float64, len(z))
	copy(zc, z)
	w.hist = append([][]float64{zc}, w.hist...)
	if len(w.hist) > w.Lags {
		w.hist = w.hist[:w.Lags]
	}
	stacked := make([]float64, w.W.Cols)
	for l, h := range w.hist {
		copy(stacked[l*do:(l+1)*do], h)
	}
	return w.W.MulVec(stacked), nil
}

// Reset implements Decoder.
func (w *Wiener) Reset() { w.hist = nil }

// MACsPerStep implements Decoder.
func (w *Wiener) MACsPerStep() int { return w.W.Rows * w.W.Cols }

// Run feeds every observation through a decoder, returning the estimate
// trajectory.
func Run(d Decoder, obs [][]float64) ([][]float64, error) {
	out := make([][]float64, len(obs))
	for i, z := range obs {
		x, err := d.Step(z)
		if err != nil {
			return nil, err
		}
		out[i] = x
	}
	return out, nil
}

// Correlation returns the Pearson correlation between two equal-length
// scalar series; 0 if degenerate.
func Correlation(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ma, mb := mean(a), mean(b)
	var num, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		num += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return num / math.Sqrt(va*vb)
}

// RMSE returns the root-mean-square error between two scalar series.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// Column extracts component j from a trajectory.
func Column(traj [][]float64, j int) []float64 {
	out := make([]float64, len(traj))
	for i, row := range traj {
		out[i] = row[j]
	}
	return out
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
