package decode

import (
	"testing"
)

// Decoders run inside the serving tick loop, so Step must be
// allocation-free at steady state: every intermediate lives in scratch
// reused across calls. These tests pin that property the same way the
// comm and dsp Append* paths are pinned.

func assertZeroAlloc(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm-up: build scratch to steady state
	if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op at steady state, want 0", name, allocs)
	}
}

// TestRecalibratorFeedZeroAlloc pins the closed-loop adaptation path:
// Feed with Every=1 runs a full refit (Gram accumulation, inversion,
// blend, and for FixedGain the Riccati gain recursion) on every call,
// and none of it may allocate at steady state.
func TestRecalibratorFeedZeroAlloc(t *testing.T) {
	states, obs := synthLinearSystem(t, 200, 8, 0.2, 10)
	k, err := FitKalman(states, obs)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := k.SteadyStateGain(500, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FitWiener(states, obs, 3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]Decoder{
		"Kalman": k, "FixedGain": fg, "Wiener": w,
	} {
		r, err := NewRecalibrator(d, RecalConfig{Buffer: 32, Every: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Warm past the minimum fit size so every measured Feed refits.
		for i := 0; i < 12; i++ {
			if _, err := r.Feed(obs[i], states[i]); err != nil {
				t.Fatal(err)
			}
		}
		i := 12
		assertZeroAlloc(t, name+".Feed+refit", func() {
			refit, err := r.Feed(obs[i%len(obs)], states[i%len(states)])
			if err != nil {
				t.Fatal(err)
			}
			if !refit {
				t.Fatal("warm Feed did not refit")
			}
			i++
		})
	}
}

func TestDecoderStepZeroAlloc(t *testing.T) {
	states, obs := synthLinearSystem(t, 200, 8, 0.2, 10)
	k, err := FitKalman(states, obs)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := k.SteadyStateGain(500, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	w, err := FitWiener(states, obs, 3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]Decoder{
		"Kalman": k, "FixedGain": fg, "Wiener": w,
	} {
		i := 0
		assertZeroAlloc(t, name+".Step", func() {
			if _, err := d.Step(obs[i%len(obs)]); err != nil {
				t.Fatal(err)
			}
			i++
		})
	}
}
