package decode

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"mindful/internal/fixed"
	"mindful/internal/nn"
)

// fuzzLinearSystem mirrors synthLinearSystem without a *testing.T so the
// fuzz setup can use it.
func fuzzLinearSystem(bins, channels int, noise float64, seed int64) (states, obs [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	h := make([][]float64, channels)
	for c := range h {
		h[c] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	states = make([][]float64, bins)
	obs = make([][]float64, bins)
	for t := range states {
		phase := float64(t) * 0.05
		states[t] = []float64{math.Sin(phase), math.Cos(phase * 0.7)}
		row := make([]float64, channels)
		for c := range row {
			row[c] = h[c][0]*states[t][0] + h[c][1]*states[t][1] + rng.NormFloat64()*noise
		}
		obs[t] = row
	}
	return states, obs
}

// packObservation serializes an observation vector as the fuzz corpus
// byte form (little-endian float64s).
func packObservation(z []float64) []byte {
	out := make([]byte, 0, 8*len(z))
	for _, v := range z {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out
}

// FuzzDecoderStep: arbitrary observation vectors — NaN, Inf, subnormal,
// mis-sized, empty — must never panic any decoder implementation, and
// every invalid vector (wrong length or non-finite entry) must return an
// error at the boundary rather than poisoning the filter state.
func FuzzDecoderStep(f *testing.F) {
	const channels = 8
	states, obs := fuzzLinearSystem(200, channels, 0.2, 11)
	k, err := FitKalman(states, obs)
	if err != nil {
		f.Fatal(err)
	}
	fg, err := k.SteadyStateGain(500, 1e-9)
	if err != nil {
		f.Fatal(err)
	}
	qfg, err := NewQuantizedFixedGain(fg, fixed.Q4_3)
	if err != nil {
		f.Fatal(err)
	}
	w, err := FitWiener(states, obs, 3, 1e-3)
	if err != nil {
		f.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	net, err := nn.NewNetwork(1, channels,
		nn.RandDense(rng, channels, 16, nn.ReLU),
		nn.RandDense(rng, 16, 2, nn.Identity))
	if err != nil {
		f.Fatal(err)
	}
	nnd, err := NewNNDecoder(net, fixed.Format{})
	if err != nil {
		f.Fatal(err)
	}
	decs := map[string]Decoder{
		"Kalman": k, "FixedGain": fg, "QuantizedFixedGain": qfg,
		"Wiener": w, "NNDecoder": nnd,
	}

	f.Add(packObservation(obs[0]))
	f.Add(packObservation(make([]float64, channels))) // all zero
	f.Add(packObservation([]float64{math.NaN(), 1, 2, 3, 4, 5, 6, 7}))
	f.Add(packObservation([]float64{math.Inf(1), 0, 0, 0, 0, 0, 0, math.Inf(-1)}))
	f.Add(packObservation(obs[0][:3])) // short
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3}) // trailing partial float is dropped

	f.Fuzz(func(t *testing.T, data []byte) {
		z := make([]float64, len(data)/8)
		for i := range z {
			z[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		invalid := len(z) != channels
		for _, v := range z {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				invalid = true
			}
		}
		for name, d := range decs {
			d.Reset()
			_, err := d.Step(z) // must never panic
			if invalid && err == nil {
				t.Fatalf("%s accepted invalid observation (len %d)", name, len(z))
			}
		}
	})
}
