package decode

import (
	"math"
	"math/rand"
	"testing"

	"mindful/internal/neural"
	"mindful/internal/units"
)

// synthLinearSystem generates a smooth 2-D latent trajectory and noisy
// linear observations of it.
func synthLinearSystem(t *testing.T, bins, channels int, noise float64, seed int64) (states, obs [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := make([][]float64, channels)
	for c := range h {
		h[c] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	states = make([][]float64, bins)
	obs = make([][]float64, bins)
	for t := range states {
		phase := float64(t) * 0.05
		states[t] = []float64{math.Sin(phase), math.Cos(phase * 0.7)}
		row := make([]float64, channels)
		for c := range row {
			row[c] = h[c][0]*states[t][0] + h[c][1]*states[t][1] + rng.NormFloat64()*noise
		}
		obs[t] = row
	}
	return states, obs
}

func TestKalmanDecodesLinearSystem(t *testing.T) {
	states, obs := synthLinearSystem(t, 600, 24, 0.3, 4)
	split := 400
	k, err := FitKalman(states[:split], obs[:split])
	if err != nil {
		t.Fatal(err)
	}
	est, err := Run(k, obs[split:])
	if err != nil {
		t.Fatal(err)
	}
	for dim := 0; dim < 2; dim++ {
		r := Correlation(Column(states[split:], dim), Column(est, dim))
		if r < 0.85 {
			t.Errorf("dim %d correlation = %.3f, want ≥0.85", dim, r)
		}
	}
}

func TestFixedGainMatchesFullKalman(t *testing.T) {
	states, obs := synthLinearSystem(t, 600, 16, 0.3, 5)
	k, err := FitKalman(states[:400], obs[:400])
	if err != nil {
		t.Fatal(err)
	}
	fg, err := k.SteadyStateGain(500, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(k, obs[400:])
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Run(fg, obs[400:])
	if err != nil {
		t.Fatal(err)
	}
	// After burn-in the two must agree closely.
	for dim := 0; dim < 2; dim++ {
		a := Column(full[50:], dim)
		b := Column(fixed[50:], dim)
		if rm := RMSE(a, b); rm > 0.1 {
			t.Errorf("dim %d fixed-gain RMSE vs full = %v", dim, rm)
		}
	}
	// And the fixed-gain decoder must be far cheaper.
	if fg.MACsPerStep() >= k.MACsPerStep() {
		t.Errorf("fixed gain MACs %d not below full Kalman %d", fg.MACsPerStep(), k.MACsPerStep())
	}
}

func TestWienerDecodesLinearSystem(t *testing.T) {
	states, obs := synthLinearSystem(t, 600, 24, 0.3, 6)
	split := 400
	w, err := FitWiener(states[:split], obs[:split], 3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Run(w, obs[split:])
	if err != nil {
		t.Fatal(err)
	}
	for dim := 0; dim < 2; dim++ {
		r := Correlation(Column(states[split:], dim), Column(est, dim))
		if r < 0.85 {
			t.Errorf("dim %d correlation = %.3f, want ≥0.85", dim, r)
		}
	}
	if got := w.MACsPerStep(); got != 2*24*3 {
		t.Errorf("Wiener MACs = %d, want %d", got, 2*24*3)
	}
}

func TestKalmanOnSyntheticNeuralData(t *testing.T) {
	// Full-substrate integration: spiking generator → binned counts →
	// Kalman → decoded intent.
	cfg := neural.DefaultConfig()
	cfg.Channels = 96
	cfg.ActiveFraction = 1
	cfg.MeanRateHz = 60
	cfg.ModulationDepth = 0.95
	cfg.SampleRate = units.Kilohertz(1)
	g, err := neural.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.RecordSpikes(true)
	binSamples := 100 // 100 ms bins
	bins := 500
	states := make([][]float64, bins)
	for b := 0; b < bins; b++ {
		phase := float64(b) * 0.08
		x, y := math.Sin(phase), math.Cos(phase*0.6)
		g.SetIntent(x, y)
		g.NextBlock(binSamples)
		states[b] = []float64{x, y}
	}
	obs, err := BinSpikeCounts(g.SpikeLog(), bins*binSamples, binSamples)
	if err != nil {
		t.Fatal(err)
	}
	split := 350
	k, err := FitKalman(states[:split], obs[:split])
	if err != nil {
		t.Fatal(err)
	}
	est, err := Run(k, obs[split:])
	if err != nil {
		t.Fatal(err)
	}
	for dim := 0; dim < 2; dim++ {
		r := Correlation(Column(states[split:], dim), Column(est, dim))
		if r < 0.6 {
			t.Errorf("neural-data dim %d correlation = %.3f, want ≥0.6", dim, r)
		}
	}
}

func TestBinSpikeCounts(t *testing.T) {
	log := [][]int{{0, 5, 99, 100}, {50}}
	bins, err := BinSpikeCounts(log, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0][0] != 3 || bins[1][0] != 1 {
		t.Errorf("channel 0 counts: %v %v", bins[0][0], bins[1][0])
	}
	if bins[0][1] != 1 || bins[1][1] != 0 {
		t.Errorf("channel 1 counts: %v %v", bins[0][1], bins[1][1])
	}
	if _, err := BinSpikeCounts(log, 200, 0); err == nil {
		t.Errorf("zero bin width should fail")
	}
	if _, err := BinSpikeCounts(log, 0, 10); err == nil {
		t.Errorf("zero length should fail")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := FitKalman([][]float64{{1, 2}}, [][]float64{{1}, {2}}); err == nil {
		t.Errorf("length mismatch should fail")
	}
	if _, err := FitKalman([][]float64{{1, 2}}, [][]float64{{1}}); err == nil {
		t.Errorf("too little data should fail")
	}
	if _, err := FitWiener([][]float64{{1}}, [][]float64{{1}}, 0, 0); err == nil {
		t.Errorf("zero lags should fail")
	}
	if _, err := FitWiener([][]float64{{1}, {2}}, [][]float64{{1}, {2}}, 5, 0); err == nil {
		t.Errorf("insufficient bins for lags should fail")
	}
}

func TestStepValidation(t *testing.T) {
	states, obs := synthLinearSystem(t, 100, 8, 0.2, 7)
	k, err := FitKalman(states, obs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Step(make([]float64, 3)); err == nil {
		t.Errorf("wrong observation length should fail")
	}
	w, err := FitWiener(states, obs, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(make([]float64, 3)); err == nil {
		t.Errorf("wrong observation length should fail")
	}
}

func TestReset(t *testing.T) {
	states, obs := synthLinearSystem(t, 100, 8, 0.2, 8)
	k, err := FitKalman(states, obs)
	if err != nil {
		t.Fatal(err)
	}
	first, err := k.Step(obs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Step(obs[1]); err != nil {
		t.Fatal(err)
	}
	k.Reset()
	again, err := k.Step(obs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("Reset did not restore initial state")
		}
	}
	w, err := FitWiener(states, obs, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := w.Step(obs[0])
	w.Step(obs[1])
	w.Reset()
	wf2, _ := w.Step(obs[0])
	for i := range wf {
		if wf[i] != wf2[i] {
			t.Fatalf("Wiener Reset did not restore state")
		}
	}
}

func TestMetrics(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if r := Correlation(a, a); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %v", r)
	}
	neg := []float64{4, 3, 2, 1}
	if r := Correlation(a, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("anti correlation = %v", r)
	}
	if r := Correlation(a, []float64{1, 1, 1, 1}); r != 0 {
		t.Errorf("degenerate correlation = %v", r)
	}
	if r := Correlation(a, a[:2]); r != 0 {
		t.Errorf("length mismatch correlation = %v", r)
	}
	if got := RMSE(a, []float64{2, 3, 4, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if !math.IsNaN(RMSE(a, a[:2])) {
		t.Errorf("mismatched RMSE should be NaN")
	}
}
