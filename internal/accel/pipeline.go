package accel

import (
	"fmt"
	"math"
	"time"

	"mindful/internal/fixed"
	"mindful/internal/mac"
	"mindful/internal/nn"
	"mindful/internal/units"
)

// Pipeline chains per-layer Simulators into a full on-implant DNN
// accelerator in the Eq. (14)–(15) pipelined discipline: each dense layer
// owns its PEs, the initiation interval is the slowest stage, and one
// inference's latency is the sum of stage times. Weights come from a
// runnable nn.Network, quantized per layer with max-abs scaling, so the
// pipeline computes real (approximate) inferences while its timing matches
// the analytical schedule exactly.
type Pipeline struct {
	Stages []*Simulator
	Cfgs   []Config

	layers  []*nn.Dense
	wScales []float64
	format  fixed.Format
}

// BuildPipeline constructs a pipeline for a dense-only network with the
// given per-layer MAC allocation (e.g. sched.Result.PerLayer) in the given
// technology at the given datapath width.
func BuildPipeline(net *nn.Network, alloc []int, node mac.TechNode, bits int) (*Pipeline, error) {
	if net == nil {
		return nil, fmt.Errorf("accel: nil network")
	}
	if len(alloc) != len(net.Layers) {
		return nil, fmt.Errorf("accel: %d allocations for %d layers", len(alloc), len(net.Layers))
	}
	p := &Pipeline{format: fixed.Format{Bits: bits, Frac: bits - 1}}
	for i, layer := range net.Layers {
		dense, ok := layer.(*nn.Dense)
		if !ok {
			return nil, fmt.Errorf("accel: layer %d is not dense; the pipeline supports MLPs", i)
		}
		ops, seq := len(dense.W), len(dense.W[0])
		cfg := Config{Ops: ops, Seq: seq, HW: alloc[i], Bits: bits,
			Node: node, PE: mac.PE130, Overhead: mac.Overhead130}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("accel: layer %d: %w", i, err)
		}
		// Quantize the weight ROM with a per-layer max-abs scale.
		scale := 0.0
		for _, row := range dense.W {
			for _, w := range row {
				if a := math.Abs(w); a > scale {
					scale = a
				}
			}
		}
		if scale == 0 {
			scale = 1
		}
		rom := make([][]fixed.Value, ops)
		for o, row := range dense.W {
			qrow := make([]fixed.Value, seq)
			for c, w := range row {
				qrow[c] = fixed.FromFloat(w/scale, p.format)
			}
			rom[o] = qrow
		}
		sim, err := NewSimulator(cfg, rom, false)
		if err != nil {
			return nil, fmt.Errorf("accel: layer %d: %w", i, err)
		}
		p.Stages = append(p.Stages, sim)
		p.Cfgs = append(p.Cfgs, cfg)
		p.layers = append(p.layers, dense)
		p.wScales = append(p.wScales, scale)
	}
	return p, nil
}

// Infer runs one inference through every stage, applying each layer's bias
// and activation at the PE output register (outside the MAC array, as in
// the Fig. 9 PE's ReLU stage).
func (p *Pipeline) Infer(input []float64) ([]float64, error) {
	cur := input
	for i, sim := range p.Stages {
		if len(cur) != p.Cfgs[i].Seq {
			return nil, fmt.Errorf("accel: stage %d input %d != %d", i, len(cur), p.Cfgs[i].Seq)
		}
		// Quantize activations with a per-vector scale.
		aScale := 0.0
		for _, v := range cur {
			if a := math.Abs(v); a > aScale {
				aScale = a
			}
		}
		if aScale == 0 {
			aScale = 1
		}
		qin := make([]fixed.Value, len(cur))
		for j, v := range cur {
			qin[j] = fixed.FromFloat(v/aScale, p.format)
		}
		rawOut, err := sim.RunExact(qin)
		if err != nil {
			return nil, fmt.Errorf("accel: stage %d: %w", i, err)
		}
		// The wide-accumulator readout carries the exact normalized dot
		// product; the output stage rescales and applies bias/activation.
		next := make([]float64, len(rawOut))
		dense := p.layers[i]
		for o, v := range rawOut {
			val := v*p.wScales[i]*aScale + dense.Bias[o]
			if dense.Act == nn.ReLU && val < 0 {
				val = 0
			}
			next[o] = val
		}
		cur = next
	}
	return cur, nil
}

// StageTimes returns each stage's per-inference latency.
func (p *Pipeline) StageTimes() []time.Duration {
	out := make([]time.Duration, len(p.Cfgs))
	for i, c := range p.Cfgs {
		out[i] = c.Time()
	}
	return out
}

// InitiationInterval returns the pipeline's throughput bound: the slowest
// stage (Eq. 14's max(tᵢ)).
func (p *Pipeline) InitiationInterval() time.Duration {
	var worst time.Duration
	for _, c := range p.Cfgs {
		if t := c.Time(); t > worst {
			worst = t
		}
	}
	return worst
}

// Latency returns one inference's end-to-end latency (sum of stages).
func (p *Pipeline) Latency() time.Duration {
	var total time.Duration
	for _, c := range p.Cfgs {
		total += c.Time()
	}
	return total
}

// MeetsDeadline reports whether the pipeline sustains one inference per
// deadline (the Eq. 14 real-time constraint).
func (p *Pipeline) MeetsDeadline(t time.Duration) bool {
	return p.InitiationInterval() <= t
}

// TotalMACs returns the pipeline's physical MAC count Σhᵢ.
func (p *Pipeline) TotalMACs() int {
	n := 0
	for _, c := range p.Cfgs {
		n += c.HW
	}
	return n
}

// TotalPower returns the full-accelerator power: every stage's PE array
// plus per-layer overhead.
func (p *Pipeline) TotalPower() units.Power {
	var total units.Power
	for _, c := range p.Cfgs {
		total += c.TotalPower()
	}
	return total
}

// PELowerBoundPower returns the Eq. (13) floor Σhᵢ·P_MAC in the pipeline's
// node — the quantity the analytical framework prices. TotalPower exceeds
// it by the per-layer overheads.
func (p *Pipeline) PELowerBoundPower() units.Power {
	if len(p.Cfgs) == 0 {
		return 0
	}
	return units.Power(float64(p.TotalMACs()) * p.Cfgs[0].Node.PMAC.Watts())
}
