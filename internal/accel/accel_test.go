package accel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mindful/internal/fixed"
	"mindful/internal/mac"
)

func TestConfigValidation(t *testing.T) {
	good := NewConfig(64, 256, 4)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		NewConfig(0, 256, 4),
		NewConfig(64, 0, 4),
		NewConfig(64, 256, 0),
		NewConfig(4, 256, 8), // Eq. 12 violation: hw > ops
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	wide := NewConfig(4, 4, 4)
	wide.Bits = 64
	if err := wide.Validate(); err == nil {
		t.Errorf("64-bit datapath should be rejected")
	}
}

func TestCyclesFormula(t *testing.T) {
	tests := []struct {
		ops, seq, hw, want int
	}{
		{4, 256, 4, 256},   // one pass
		{64, 256, 4, 4096}, // 16 passes
		{64, 256, 64, 256}, // fully parallel
		{65, 256, 64, 512}, // ragged final pass
		{512, 2048, 512, 2048},
	}
	for _, tt := range tests {
		c := NewConfig(tt.ops, tt.seq, tt.hw)
		if got := c.Cycles(); got != tt.want {
			t.Errorf("Cycles(%d,%d,%d) = %d, want %d", tt.ops, tt.seq, tt.hw, got, tt.want)
		}
	}
	// Time at 130 nm: 256 cycles × 10 ns.
	c := NewConfig(4, 256, 4)
	if got := c.Time(); got != 2560*time.Nanosecond {
		t.Errorf("Time = %v", got)
	}
	if !c.MeetsDeadline(3 * time.Microsecond) {
		t.Errorf("should meet 3µs deadline")
	}
	if c.MeetsDeadline(2 * time.Microsecond) {
		t.Errorf("should miss 2µs deadline")
	}
}

func TestFig9PowerTrajectory(t *testing.T) {
	pts := Fig9DesignPoints()
	if len(pts) != 12 {
		t.Fatalf("Fig. 9 has %d points, want 12", len(pts))
	}
	for i, c := range pts {
		if err := c.Validate(); err != nil {
			t.Fatalf("point %d invalid: %v", i+1, err)
		}
	}
	// Small designs (1–5): PE fraction low, ≈25% regime.
	for i := 0; i < 5; i++ {
		if f := pts[i].PEFraction(); f < 0.10 || f > 0.40 {
			t.Errorf("design %d PE fraction = %.2f, want ≈0.25", i+1, f)
		}
	}
	// Scaling MAC_hw to match ops (6–9): fraction climbs to ≈80%.
	if f := pts[8].PEFraction(); f < 0.70 || f > 0.90 {
		t.Errorf("design 9 PE fraction = %.2f, want ≈0.80", f)
	}
	// Large designs (10–12): fraction reaches ≈96%.
	if f := pts[11].PEFraction(); f < 0.93 || f > 0.99 {
		t.Errorf("design 12 PE fraction = %.2f, want ≈0.96", f)
	}
	// Fraction must be monotonically non-decreasing from design 5 onward.
	for i := 5; i < 12; i++ {
		if pts[i].PEFraction() < pts[i-1].PEFraction()-1e-9 {
			t.Errorf("PE fraction dips at design %d", i+1)
		}
	}
	// Total power tracks MAC_hw: the PE component scales exactly 8× over
	// the hw sweep 6→9 and dominates the total by design 9.
	if pe6, pe9 := pts[5].PEPower().Watts(), pts[8].PEPower().Watts(); math.Abs(pe9-8*pe6) > 1e-15 {
		t.Errorf("PE power did not scale with hw: %v vs %v", pe6, pe9)
	}
	p6 := pts[5].TotalPower().Watts()
	p9 := pts[8].TotalPower().Watts()
	if p9 < 3.5*p6 {
		t.Errorf("8× hw increase raised power only %0.1f×", p9/p6)
	}
}

func TestPowerDecomposition(t *testing.T) {
	c := NewConfig(64, 256, 64)
	total := c.TotalPower().Watts()
	if math.Abs(total-c.PEPower().Watts()-c.OverheadPower().Watts()) > 1e-15 {
		t.Errorf("power does not decompose")
	}
	// PE power = hw × PE total.
	want := 64 * mac.PE130.Total().Watts()
	if math.Abs(c.PEPower().Watts()-want) > 1e-15 {
		t.Errorf("PE power = %v", c.PEPower())
	}
}

func randWeights(rng *rand.Rand, ops, seq int, f fixed.Format) [][]fixed.Value {
	w := make([][]fixed.Value, ops)
	for i := range w {
		row := make([]fixed.Value, seq)
		for j := range row {
			row[j] = fixed.FromFloat(rng.Float64()*0.1-0.05, f)
		}
		w[i] = row
	}
	return w
}

func TestSimulatorMatchesReference(t *testing.T) {
	// The cycle-level simulator must compute exactly what a direct
	// fixed-point dot product computes.
	rng := rand.New(rand.NewSource(12))
	cfg := NewConfig(10, 16, 3) // ragged: 4 passes, idle PEs in the last
	f := fixed.Format{Bits: cfg.Bits, Frac: cfg.Bits - 1}
	w := randWeights(rng, cfg.Ops, cfg.Seq, f)
	sim, err := NewSimulator(cfg, w, false)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]fixed.Value, cfg.Seq)
	for i := range in {
		in[i] = fixed.FromFloat(rng.Float64()*0.5-0.25, f)
	}
	got, err := sim.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < cfg.Ops; op++ {
		want := fixed.Dot(in, w[op], f)
		if got[op] != want {
			t.Errorf("op %d: sim %v != reference %v", op, got[op], want)
		}
	}
}

func TestSimulatorCyclesMatchAnalyticalModel(t *testing.T) {
	// The property the whole framework rests on: simulated cycles equal
	// the Eq. (11) expression for any legal configuration.
	f := func(opsR, seqR, hwR uint8) bool {
		ops := int(opsR%50) + 1
		seq := int(seqR%50) + 1
		hw := int(hwR)%ops + 1
		cfg := NewConfig(ops, seq, hw)
		fm := fixed.Format{Bits: 8, Frac: 7}
		w := randWeights(rand.New(rand.NewSource(int64(ops*seq*hw))), ops, seq, fm)
		sim, err := NewSimulator(cfg, w, false)
		if err != nil {
			return false
		}
		in := make([]fixed.Value, seq)
		for i := range in {
			in[i] = fixed.FromFloat(0, fm)
		}
		if _, err := sim.Run(in); err != nil {
			return false
		}
		return sim.Cycles() == uint64(cfg.Cycles())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimulatorReLU(t *testing.T) {
	cfg := NewConfig(2, 2, 2)
	f := fixed.Format{Bits: 8, Frac: 7}
	w := [][]fixed.Value{
		{fixed.FromFloat(0.5, f), fixed.FromFloat(0.5, f)},
		{fixed.FromFloat(-0.5, f), fixed.FromFloat(-0.5, f)},
	}
	sim, err := NewSimulator(cfg, w, true)
	if err != nil {
		t.Fatal(err)
	}
	in := []fixed.Value{fixed.FromFloat(0.5, f), fixed.FromFloat(0.5, f)}
	out, err := sim.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Float() <= 0 {
		t.Errorf("positive output clipped: %v", out[0])
	}
	if out[1].Raw != 0 {
		t.Errorf("negative output not rectified: %v", out[1])
	}
}

func TestSimulatorAccounting(t *testing.T) {
	cfg := NewConfig(8, 32, 4)
	f := fixed.Format{Bits: 8, Frac: 7}
	sim, err := NewSimulator(cfg, randWeights(rand.New(rand.NewSource(1)), 8, 32, f), false)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]fixed.Value, 32)
	for i := range in {
		in[i] = fixed.FromFloat(0, f)
	}
	for i := 0; i < 3; i++ {
		if _, err := sim.Run(in); err != nil {
			t.Fatal(err)
		}
	}
	if sim.Cycles() != 3*uint64(cfg.Cycles()) {
		t.Errorf("cycles = %d", sim.Cycles())
	}
	if sim.Elapsed() != time.Duration(sim.Cycles())*mac.TSMC130.TMAC {
		t.Errorf("elapsed = %v", sim.Elapsed())
	}
	// Energy = 3 inferences × ops × seq × step energy.
	want := 3 * cfg.EnergyPerInference().Joules()
	if math.Abs(sim.Energy().Joules()-want) > 1e-18 {
		t.Errorf("energy = %v, want %v", sim.Energy().Joules(), want)
	}
}

func TestSimulatorValidation(t *testing.T) {
	f := fixed.Format{Bits: 8, Frac: 7}
	cfg := NewConfig(4, 8, 2)
	if _, err := NewSimulator(cfg, nil, false); err == nil {
		t.Errorf("missing weights should fail")
	}
	w := randWeights(rand.New(rand.NewSource(2)), 4, 7, f)
	if _, err := NewSimulator(cfg, w, false); err == nil {
		t.Errorf("wrong seq length should fail")
	}
	bad := NewConfig(2, 8, 4)
	if _, err := NewSimulator(bad, randWeights(rand.New(rand.NewSource(3)), 2, 8, f), false); err == nil {
		t.Errorf("invalid config should fail")
	}
	sim, err := NewSimulator(cfg, randWeights(rand.New(rand.NewSource(4)), 4, 8, f), false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(make([]fixed.Value, 3)); err == nil {
		t.Errorf("wrong input length should fail")
	}
}
