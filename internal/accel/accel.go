// Package accel models the paper's DNN-layer accelerator (Fig. 9): an
// array of processing elements — each a MAC unit, a ReLU, a small FSM and a
// weight ROM — sequenced by a dataflow FSM that time-multiplexes #MAC_op
// operations over #MAC_hw physical PEs.
//
// It provides both a power model (the stand-in for the paper's Cadence
// Genus synthesis at 130 nm / 100 MHz, built from the component library in
// internal/mac and calibrated to reproduce Fig. 9's relative-PE-power
// trajectory) and a cycle-accurate functional simulator that executes real
// fixed-point arithmetic and whose cycle count is provably equal to the
// Eq. (11) timing expression the analytical framework uses.
package accel

import (
	"fmt"
	"time"

	"mindful/internal/fixed"
	"mindful/internal/mac"
	"mindful/internal/mathx"
	"mindful/internal/obs"
	"mindful/internal/units"
)

// Config is one accelerator design point.
type Config struct {
	// Ops is #MAC_op: independent MAC sequences in the layer.
	Ops int
	// Seq is MAC_seq: accumulation steps per operation.
	Seq int
	// HW is #MAC_hw: physical PEs; ops are time-multiplexed over them.
	HW int
	// Bits is the datapath width (the paper synthesizes 8-bit).
	Bits int
	// Node, PE and Overhead select the technology models.
	Node     mac.TechNode
	PE       mac.PEModel
	Overhead mac.LayerOverhead
}

// NewConfig returns a design point in the paper's 130 nm / 8-bit setting.
func NewConfig(ops, seq, hw int) Config {
	return Config{
		Ops: ops, Seq: seq, HW: hw, Bits: 8,
		Node: mac.TSMC130, PE: mac.PE130, Overhead: mac.Overhead130,
	}
}

// Validate checks the design point.
func (c Config) Validate() error {
	if c.Ops <= 0 || c.Seq <= 0 || c.HW <= 0 {
		return fmt.Errorf("accel: non-positive dimensions ops=%d seq=%d hw=%d", c.Ops, c.Seq, c.HW)
	}
	if c.HW > c.Ops {
		// Eq. (12): #MAC_hw may not exceed the available parallelism.
		return fmt.Errorf("accel: hw=%d exceeds ops=%d (Eq. 12)", c.HW, c.Ops)
	}
	if c.Bits < 2 || c.Bits > 32 {
		return fmt.Errorf("accel: unsupported datapath width %d", c.Bits)
	}
	return nil
}

// Cycles returns the MAC-step count of one layer execution:
// ⌈#MAC_op/#MAC_hw⌉ · MAC_seq (the Eq. 11 schedule).
func (c Config) Cycles() int {
	return mathx.CeilDiv(c.Ops, c.HW) * c.Seq
}

// Time returns the layer latency at the node's MAC step time.
func (c Config) Time() time.Duration {
	return time.Duration(c.Cycles()) * c.Node.TMAC
}

// PEPower returns the power of the PE array: #MAC_hw · P_PE.
func (c Config) PEPower() units.Power {
	return units.Power(float64(c.HW) * c.PE.Total().Watts())
}

// OverheadPower returns the non-PE layer power: the dataflow FSM plus the
// output register file (#MAC_op registers of Bits each).
func (c Config) OverheadPower() units.Power {
	return c.Overhead.Power(c.Ops, c.Bits)
}

// TotalPower returns the layer's total power.
func (c Config) TotalPower() units.Power {
	return c.PEPower() + c.OverheadPower()
}

// PEFraction returns PE power over total power — Fig. 9's right panel.
func (c Config) PEFraction() float64 {
	return c.PEPower().Watts() / c.TotalPower().Watts()
}

// EnergyPerInference returns the active-MAC energy of one layer execution.
func (c Config) EnergyPerInference() units.Energy {
	steps := float64(c.Ops) * float64(c.Seq)
	return units.Energy(steps * c.Node.EnergyPerStep().Joules())
}

// Fig9DesignPoints returns the twelve synthesis configurations of Fig. 9
// in order.
func Fig9DesignPoints() []Config {
	rows := [][3]int{ // seq, hw, ops
		{256, 4, 4}, {256, 4, 8}, {256, 4, 16}, {256, 4, 32}, {256, 4, 64},
		{256, 8, 64}, {256, 16, 64}, {256, 32, 64}, {256, 64, 64},
		{512, 128, 128}, {1024, 256, 256}, {2048, 512, 512},
	}
	out := make([]Config, len(rows))
	for i, r := range rows {
		out[i] = NewConfig(r[2], r[0], r[1])
	}
	return out
}

// Simulator is the cycle-accurate functional model of one configured
// layer: HW processing elements, each with a private weight ROM holding
// the rows it is responsible for, executing under the dataflow FSM's
// static schedule (PE p computes ops p, p+HW, p+2HW, …).
type Simulator struct {
	cfg    Config
	format fixed.Format
	// rom[op] is the weight row of operation op (length Seq).
	rom [][]fixed.Value
	// relu applies the PE's ReLU stage at readout.
	relu bool

	cycles uint64
	energy float64 // joules

	o simObs
}

// simObs holds the simulator's pre-resolved metric handles; the zero value
// short-circuits all hooks.
type simObs struct {
	attached    bool
	cycles      *obs.Counter
	inferences  *obs.Counter
	energy      *obs.Gauge
	utilization *obs.Gauge
}

// SetObserver wires the simulator to an observability sink: cycle and
// inference counters, a cumulative-energy gauge and a PE-array utilization
// gauge (active MAC slots over HW·passes). Pass nil to detach.
func (s *Simulator) SetObserver(o *obs.Observer) {
	if o == nil {
		s.o = simObs{}
		return
	}
	m := o.Metrics
	lbl := obs.Label{Key: "node", Value: s.cfg.Node.Name}
	s.o = simObs{
		attached:    true,
		cycles:      m.Counter("accel_cycles_total", lbl),
		inferences:  m.Counter("accel_inferences_total", lbl),
		energy:      m.Gauge("accel_energy_joules", lbl),
		utilization: m.Gauge("accel_utilization", lbl),
	}
	m.Help("accel_cycles_total", "MAC-array cycles simulated.")
	m.Help("accel_inferences_total", "Layer inferences executed.")
	m.Help("accel_energy_joules", "Cumulative active-MAC energy.")
	m.Help("accel_utilization", "Active MAC slots over HW×passes of the configured layer.")
}

// recordRun accounts one inference's cycles, energy and utilization.
func (s *Simulator) recordRun(cycles uint64) {
	if !s.o.attached {
		return
	}
	s.o.cycles.Add(int64(cycles))
	s.o.inferences.Inc()
	s.o.energy.Set(s.energy)
	passes := mathx.CeilDiv(s.cfg.Ops, s.cfg.HW)
	s.o.utilization.Set(float64(s.cfg.Ops) / float64(passes*s.cfg.HW))
}

// NewSimulator builds a simulator for cfg with the given weight matrix
// (Ops rows × Seq columns, already in fixed point) and ReLU setting.
func NewSimulator(cfg Config, weights [][]fixed.Value, relu bool) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != cfg.Ops {
		return nil, fmt.Errorf("accel: %d weight rows for %d ops", len(weights), cfg.Ops)
	}
	for i, row := range weights {
		if len(row) != cfg.Seq {
			return nil, fmt.Errorf("accel: weight row %d length %d != seq %d", i, len(row), cfg.Seq)
		}
	}
	f := fixed.Format{Bits: cfg.Bits, Frac: cfg.Bits - 1}
	return &Simulator{cfg: cfg, format: f, rom: weights, relu: relu}, nil
}

// Format returns the datapath fixed-point format.
func (s *Simulator) Format() fixed.Format { return s.format }

// Run executes one inference: input is the shared activation vector
// (length Seq), and the result is one value per MAC_op. The cycle counter
// advances exactly Config.Cycles() per call.
func (s *Simulator) Run(input []fixed.Value) ([]fixed.Value, error) {
	if len(input) != s.cfg.Seq {
		return nil, fmt.Errorf("accel: input length %d != seq %d", len(input), s.cfg.Seq)
	}
	out := make([]fixed.Value, s.cfg.Ops)
	passes := mathx.CeilDiv(s.cfg.Ops, s.cfg.HW)
	acc := fixed.NewAcc(s.format)
	for pass := 0; pass < passes; pass++ {
		for pe := 0; pe < s.cfg.HW; pe++ {
			op := pass*s.cfg.HW + pe
			if op >= s.cfg.Ops {
				continue // idle PE in the final pass
			}
			acc.Reset()
			for k := 0; k < s.cfg.Seq; k++ {
				acc.MAC(input[k], s.rom[op][k])
			}
			v := acc.Value()
			if s.relu && v.Raw < 0 {
				v.Raw = 0
			}
			out[op] = v
			s.energy += float64(s.cfg.Seq) * s.cfg.Node.EnergyPerStep().Joules()
		}
		// All PEs advance in lockstep: one pass costs Seq cycles even if
		// some PEs idle.
		s.cycles += uint64(s.cfg.Seq)
	}
	s.recordRun(uint64(passes) * uint64(s.cfg.Seq))
	return out, nil
}

// RunExact executes one inference like Run but reads each operation's
// wide accumulator directly (the 32-bit register every PE holds before the
// output stage), returning exact real values instead of requantized
// operand-format ones. The datapath is still bits×bits multiplies with
// exact accumulation; only the lossy output rounding is deferred to the
// caller — which is where a real accelerator's bias/activation/rescale
// stage lives. ReLU, being part of that output stage, is not applied here.
func (s *Simulator) RunExact(input []fixed.Value) ([]float64, error) {
	if len(input) != s.cfg.Seq {
		return nil, fmt.Errorf("accel: input length %d != seq %d", len(input), s.cfg.Seq)
	}
	out := make([]float64, s.cfg.Ops)
	passes := mathx.CeilDiv(s.cfg.Ops, s.cfg.HW)
	acc := fixed.NewAcc(s.format)
	for pass := 0; pass < passes; pass++ {
		for pe := 0; pe < s.cfg.HW; pe++ {
			op := pass*s.cfg.HW + pe
			if op >= s.cfg.Ops {
				continue
			}
			acc.Reset()
			for k := 0; k < s.cfg.Seq; k++ {
				acc.MAC(input[k], s.rom[op][k])
			}
			out[op] = acc.Float()
			s.energy += float64(s.cfg.Seq) * s.cfg.Node.EnergyPerStep().Joules()
		}
		s.cycles += uint64(s.cfg.Seq)
	}
	s.recordRun(uint64(passes) * uint64(s.cfg.Seq))
	return out, nil
}

// Cycles returns the cycles consumed so far.
func (s *Simulator) Cycles() uint64 { return s.cycles }

// Elapsed returns simulated wall-clock time.
func (s *Simulator) Elapsed() time.Duration {
	return time.Duration(s.cycles) * s.cfg.Node.TMAC
}

// Energy returns the accumulated active-MAC energy.
func (s *Simulator) Energy() units.Energy { return units.Energy(s.energy) }

// MeetsDeadline reports whether one inference fits within t — the check
// the real-time constraint (Eq. 11) imposes.
func (c Config) MeetsDeadline(t time.Duration) bool { return c.Time() <= t }
