package accel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mindful/internal/dnnmodel"
	"mindful/internal/mac"
	"mindful/internal/nn"
	"mindful/internal/sched"
	"mindful/internal/units"
)

// smallMLP builds a runnable model + its structural spec at a reduced
// channel count so fixed-point inference stays fast.
func smallMLP(t *testing.T, channels int) (*nn.Network, dnnmodel.Model) {
	t.Helper()
	m, err := dnnmodel.MLP().Scale(channels)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.BuildFromSpec(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	return net, m
}

func TestPipelineMatchesScheduleTiming(t *testing.T) {
	net, m := smallMLP(t, 128)
	deadline := sched.DeadlineFor(units.Kilohertz(2))
	res, err := sched.Pipelined(m, deadline, mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("128-channel MLP must schedule")
	}
	p, err := BuildPipeline(net, res.PerLayer, mac.NanGate45, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The executable pipeline meets the very deadline the solver promised.
	if !p.MeetsDeadline(deadline) {
		t.Errorf("pipeline misses the deadline: II = %v > %v", p.InitiationInterval(), deadline)
	}
	// Every stage individually fits (Eq. 14 per-layer constraint).
	for i, st := range p.StageTimes() {
		if st > deadline {
			t.Errorf("stage %d time %v exceeds deadline", i, st)
		}
	}
	// Physical MAC count equals the schedule's allocation.
	if p.TotalMACs() != res.MACHW {
		t.Errorf("pipeline MACs %d != schedule %d", p.TotalMACs(), res.MACHW)
	}
	// The PE floor equals the Eq. 13 power the framework prices, and the
	// full accelerator costs strictly more (overheads).
	if math.Abs(p.PELowerBoundPower().Watts()-res.Power.Watts()) > 1e-15 {
		t.Errorf("PE floor %v != schedule power %v", p.PELowerBoundPower(), res.Power)
	}
	if p.TotalPower().Watts() <= res.Power.Watts() {
		t.Errorf("full pipeline power should exceed the MAC-only lower bound")
	}
	// Latency ≥ initiation interval; both positive.
	if p.Latency() < p.InitiationInterval() || p.InitiationInterval() <= 0 {
		t.Errorf("latency %v / II %v inconsistent", p.Latency(), p.InitiationInterval())
	}
}

func TestPipelineInferenceTracksFloat(t *testing.T) {
	net, m := smallMLP(t, 128)
	res, err := sched.Pipelined(m, sched.DeadlineFor(units.Kilohertz(2)), mac.NanGate45)
	if err != nil || !res.Feasible {
		t.Fatalf("schedule failed: %v", err)
	}
	p, err := BuildPipeline(net, res.PerLayer, mac.NanGate45, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	agree := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		in := make([]float64, 128)
		for i := range in {
			in[i] = rng.NormFloat64() * 0.1
		}
		want, err := net.Forward(nn.FromVector(in))
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want.Size() {
			t.Fatalf("output size %d != %d", len(got), want.Size())
		}
		if nn.Argmax(got) == nn.Argmax(want.Data) {
			agree++
		}
	}
	// 8-bit end-to-end inference through five layers is lossy, but the
	// decision must usually agree with float.
	if agree < trials*6/10 {
		t.Errorf("argmax agreement %d/%d, want ≥ 60%%", agree, trials)
	}
}

func TestPipelineValidation(t *testing.T) {
	net, _ := smallMLP(t, 128)
	if _, err := BuildPipeline(nil, nil, mac.NanGate45, 8); err == nil {
		t.Errorf("nil network should fail")
	}
	if _, err := BuildPipeline(net, []int{1}, mac.NanGate45, 8); err == nil {
		t.Errorf("allocation length mismatch should fail")
	}
	alloc := make([]int, len(net.Layers))
	if _, err := BuildPipeline(net, alloc, mac.NanGate45, 8); err == nil {
		t.Errorf("zero allocation should fail validation")
	}
	// Conv layers are rejected.
	rng := rand.New(rand.NewSource(2))
	convNet, err := nn.NewNetwork(4, 16, nn.RandConv1D(rng, 4, 2, 3, 1, nn.ReLU))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPipeline(convNet, []int{1}, mac.NanGate45, 8); err == nil {
		t.Errorf("conv network should be rejected")
	}
	// Wrong input length at inference time.
	m, _ := dnnmodel.MLP().Scale(128)
	res, err := sched.Pipelined(m, sched.DeadlineFor(units.Kilohertz(2)), mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPipeline(net, res.PerLayer, mac.NanGate45, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Infer(make([]float64, 3)); err == nil {
		t.Errorf("wrong input length should fail")
	}
}

func TestPipelineMoreMACsFasterStage(t *testing.T) {
	net, m := smallMLP(t, 128)
	res, err := sched.Pipelined(m, sched.DeadlineFor(units.Kilohertz(2)), mac.NanGate45)
	if err != nil || !res.Feasible {
		t.Fatal("schedule failed")
	}
	base, err := BuildPipeline(net, res.PerLayer, mac.NanGate45, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Maximal parallelism: ops-many units per layer.
	maxAlloc := make([]int, len(net.Layers))
	for i, l := range net.Layers {
		d := l.(*nn.Dense)
		maxAlloc[i] = len(d.W)
	}
	fast, err := BuildPipeline(net, maxAlloc, mac.NanGate45, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fast.InitiationInterval() > base.InitiationInterval() {
		t.Errorf("more MACs should not slow the pipeline")
	}
	if fast.TotalPower().Watts() <= base.TotalPower().Watts() {
		t.Errorf("more MACs must cost more power")
	}
	var zero time.Duration
	if fast.InitiationInterval() == zero {
		t.Errorf("degenerate interval")
	}
}
