package mac

import (
	"math"
	"testing"
	"time"

	"mindful/internal/fixed"
	"mindful/internal/units"
)

func TestPublishedNodes(t *testing.T) {
	// The nodes must carry exactly the paper's published synthesis points.
	if NanGate45.TMAC != 2*time.Nanosecond {
		t.Errorf("45nm t_MAC = %v, want 2ns", NanGate45.TMAC)
	}
	if got := NanGate45.PMAC.Milliwatts(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("45nm P_MAC = %v mW, want 0.05", got)
	}
	if Node12.TMAC != 1*time.Nanosecond {
		t.Errorf("12nm t_MAC = %v, want 1ns", Node12.TMAC)
	}
	if got := Node12.PMAC.Milliwatts(); math.Abs(got-0.026) > 1e-12 {
		t.Errorf("12nm P_MAC = %v mW, want 0.026", got)
	}
}

func TestNodeByName(t *testing.T) {
	n, ok := NodeByName("NanGate 45nm")
	if !ok || n.FeatureNm != 45 {
		t.Errorf("NodeByName failed: %v, %v", n, ok)
	}
	if _, ok := NodeByName("7nm"); ok {
		t.Errorf("unknown node should not resolve")
	}
	if len(Nodes()) != 3 {
		t.Errorf("expected 3 nodes")
	}
}

func TestEnergyPerStep(t *testing.T) {
	// 45nm: 0.05 mW × 2 ns = 0.1 pJ.
	if got := NanGate45.EnergyPerStep().Picojoules(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("45nm step energy = %v pJ, want 0.1", got)
	}
	// 12nm: 0.026 mW × 1 ns = 0.026 pJ — technology scaling must reduce
	// per-step energy.
	e12 := Node12.EnergyPerStep().Picojoules()
	if e12 >= NanGate45.EnergyPerStep().Picojoules() {
		t.Errorf("12nm step energy %v pJ should beat 45nm", e12)
	}
}

func TestPEModelTotal(t *testing.T) {
	got := PE130.Total().Milliwatts()
	want := PE130.MAC.Milliwatts() + PE130.ROM.Milliwatts() + PE130.ReLU.Milliwatts() + PE130.FSM.Milliwatts()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PE total = %v, want %v", got, want)
	}
	if PE130.MAC != TSMC130.PMAC {
		t.Errorf("PE MAC power must equal the 130nm MAC unit power")
	}
}

func TestLayerOverheadPower(t *testing.T) {
	// Zero registers: pure FSM power.
	if got := Overhead130.Power(0, 8); got != Overhead130.DataflowFSM {
		t.Errorf("zero-reg overhead = %v", got)
	}
	// 64 output registers × 8 bits at 0.5 µW/bit = 0.256 mW extra.
	got := Overhead130.Power(64, 8).Milliwatts()
	want := Overhead130.DataflowFSM.Milliwatts() + 64*8*Overhead130.PerRegBit.Milliwatts()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("overhead = %v mW, want %v", got, want)
	}
}

func TestUnitRunOp(t *testing.T) {
	u := NewUnit(NanGate45, fixed.Q15)
	xs := fixed.QuantizeSlice([]float64{0.1, 0.2, 0.3}, fixed.Q15)
	ys := fixed.QuantizeSlice([]float64{0.4, 0.5, 0.6}, fixed.Q15)
	got := u.RunOp(xs, ys).Float()
	want := 0.1*0.4 + 0.2*0.5 + 0.3*0.6
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("RunOp = %v, want ≈%v", got, want)
	}
	if u.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", u.Steps())
	}
	if u.Elapsed() != 6*time.Nanosecond {
		t.Errorf("Elapsed = %v, want 6ns", u.Elapsed())
	}
	// Energy = 3 steps × 0.1 pJ.
	if got := u.Energy().Picojoules(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("Energy = %v pJ, want 0.3", got)
	}
}

func TestUnitAccumulatorResetsBetweenOps(t *testing.T) {
	u := NewUnit(TSMC130, fixed.Q7)
	xs := fixed.QuantizeSlice([]float64{0.5}, fixed.Q7)
	first := u.RunOp(xs, xs).Float()
	second := u.RunOp(xs, xs).Float()
	if first != second {
		t.Errorf("accumulator leaked between ops: %v vs %v", first, second)
	}
	u.ResetStats()
	if u.Steps() != 0 || u.Energy() != units.Energy(0) {
		t.Errorf("ResetStats did not clear counters")
	}
}

func TestUnitStats(t *testing.T) {
	u := NewUnit(NanGate45, fixed.Q15)
	xs := fixed.QuantizeSlice([]float64{0.1, 0.2, 0.3}, fixed.Q15)
	u.RunOp(xs, xs)
	st := u.Stats()
	if st.Steps != 3 {
		t.Errorf("Stats.Steps = %d, want 3", st.Steps)
	}
	if st.Elapsed != u.Elapsed() || st.Energy != u.Energy() {
		t.Errorf("Stats = %+v, want Elapsed %v, Energy %v", st, u.Elapsed(), u.Energy())
	}
	u.ResetStats()
	if st := u.Stats(); st != (UnitStats{}) {
		t.Errorf("Stats after ResetStats = %+v, want zero", st)
	}
}

func TestUnitRunOpMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("length mismatch should panic")
		}
	}()
	NewUnit(TSMC130, fixed.Q7).RunOp(make([]fixed.Value, 1), make([]fixed.Value, 2))
}
