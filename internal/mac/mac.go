// Package mac models the multiply-accumulate (MAC) hardware that anchors
// the paper's computation-power analysis.
//
// The paper obtains per-unit numbers from synthesis: a 130 nm TSMC library
// for the Fig. 9 accelerator study, and NanGate 45 nm / 12 nm MAC units
// (t_MAC = 2 ns / 1 ns, P_MAC = 0.05 mW / 0.026 mW) for the Eq. (13) lower
// bounds. We cannot run Genus here, so those published post-synthesis points
// *are* the technology library; this package carries them as data, provides
// the processing-element (PE) component breakdown used by internal/accel,
// and implements a behavioural MAC unit (built on internal/fixed) that
// executes MAC_op sequences while accounting cycles and energy.
package mac

import (
	"fmt"
	"time"

	"mindful/internal/fixed"
	"mindful/internal/units"
)

// TechNode is one synthesis target: a feature size with its measured MAC
// step time and per-unit power at the stated clock.
type TechNode struct {
	Name      string
	FeatureNm int
	Clock     units.Frequency
	// TMAC is the time to execute one MAC step (Eq. 11's t_MAC).
	TMAC time.Duration
	// PMAC is the power of one active MAC unit (Eq. 13's P_MAC).
	PMAC units.Power
}

// The technology nodes used in the paper.
var (
	// TSMC130 anchors the Fig. 9 accelerator synthesis (8-bit datatype,
	// 100 MHz target).
	TSMC130 = TechNode{
		Name:      "TSMC 130nm",
		FeatureNm: 130,
		Clock:     units.Megahertz(100),
		TMAC:      10 * time.Nanosecond,
		PMAC:      units.Milliwatts(0.12),
	}
	// NanGate45 is the node for the Section 5.3 evaluation:
	// t_MAC = 2 ns, P_MAC = 0.05 mW.
	NanGate45 = TechNode{
		Name:      "NanGate 45nm",
		FeatureNm: 45,
		Clock:     units.Megahertz(100),
		TMAC:      2 * time.Nanosecond,
		PMAC:      units.Milliwatts(0.05),
	}
	// Node12 is the Section 6.2 technology-scaling target:
	// t_MAC = 1 ns, P_MAC = 0.026 mW.
	Node12 = TechNode{
		Name:      "12nm",
		FeatureNm: 12,
		Clock:     units.Megahertz(100),
		TMAC:      1 * time.Nanosecond,
		PMAC:      units.Milliwatts(0.026),
	}
)

// Nodes lists the available technology nodes, newest last.
func Nodes() []TechNode { return []TechNode{TSMC130, NanGate45, Node12} }

// NodeByName looks a node up by its Name field.
func NodeByName(name string) (TechNode, bool) {
	for _, n := range Nodes() {
		if n.Name == name {
			return n, true
		}
	}
	return TechNode{}, false
}

// EnergyPerStep returns the energy of one MAC step: P_MAC · t_MAC.
func (n TechNode) EnergyPerStep() units.Energy {
	return units.Joules(n.PMAC.Watts() * n.TMAC.Seconds())
}

// String identifies the node.
func (n TechNode) String() string {
	return fmt.Sprintf("%s (t_MAC=%v, P_MAC=%v)", n.Name, n.TMAC, n.PMAC)
}

// PEModel is the power breakdown of one processing element as synthesized
// for Fig. 9: a MAC unit, a ReLU, a small control FSM, and the read-only
// memory holding the PE's weights.
type PEModel struct {
	MAC  units.Power
	ROM  units.Power
	ReLU units.Power
	FSM  units.Power
}

// PE130 is the 130 nm PE breakdown backing the Fig. 9 study. The component
// split is calibrated so the accelerator-level study reproduces the paper's
// relative-PE-power trajectory (~25% → ~80% → ~96%).
var PE130 = PEModel{
	MAC:  TSMC130.PMAC,
	ROM:  units.Milliwatts(0.03),
	ReLU: units.Milliwatts(0.01),
	FSM:  units.Milliwatts(0.02),
}

// Total returns the PE's total power.
func (m PEModel) Total() units.Power {
	return m.MAC + m.ROM + m.ReLU + m.FSM
}

// LayerOverhead is the non-PE power of one accelerator layer: the dataflow
// FSM that sequences the computation, plus the per-bit register cost of the
// layer's output register file (input activations are streamed through the
// dataflow FSM's double buffer, which is part of the constant term).
type LayerOverhead struct {
	DataflowFSM units.Power
	PerRegBit   units.Power
}

// Overhead130 is the 130 nm layer-overhead model backing Fig. 9.
var Overhead130 = LayerOverhead{
	DataflowFSM: units.Milliwatts(2.0),
	PerRegBit:   units.Milliwatts(0.0005),
}

// Power returns the overhead power for a layer with the given number of
// output registers of width bits each.
func (o LayerOverhead) Power(outputRegs, bits int) units.Power {
	return o.DataflowFSM + units.Power(float64(outputRegs*bits)*o.PerRegBit.Watts())
}

// Unit is a behavioural MAC unit: it executes multiply-accumulate steps on
// fixed-point operands, tracking the cycle and energy cost in its node's
// technology. One Unit corresponds to one MAC_hw of the paper.
type Unit struct {
	Node   TechNode
	Format fixed.Format

	acc   *fixed.Acc
	steps uint64
}

// NewUnit returns a MAC unit in technology node n operating on operands in
// format f.
func NewUnit(n TechNode, f fixed.Format) *Unit {
	return &Unit{Node: n, Format: f, acc: fixed.NewAcc(f)}
}

// Step executes one MAC step: acc += a × b.
func (u *Unit) Step(a, b fixed.Value) {
	u.acc.MAC(a, b)
	u.steps++
}

// RunOp executes one complete MAC_op: it resets the accumulator, performs
// len(xs) steps, and returns the requantized result. len(xs) is the MAC_seq
// of the operation.
func (u *Unit) RunOp(xs, ys []fixed.Value) fixed.Value {
	if len(xs) != len(ys) {
		panic("mac: RunOp length mismatch")
	}
	u.acc.Reset()
	for i := range xs {
		u.Step(xs[i], ys[i])
	}
	return u.acc.Value()
}

// Steps returns the number of MAC steps executed so far.
func (u *Unit) Steps() uint64 { return u.steps }

// Elapsed returns the wall-clock time consumed by the executed steps.
func (u *Unit) Elapsed() time.Duration {
	return time.Duration(u.steps) * u.Node.TMAC
}

// Energy returns the energy consumed by the executed steps.
func (u *Unit) Energy() units.Energy {
	return units.Energy(float64(u.steps) * u.Node.EnergyPerStep().Joules())
}

// ResetStats zeroes the step counter (the accumulator is reset per-op).
func (u *Unit) ResetStats() { u.steps = 0 }

// UnitStats is a point-in-time summary of a unit's executed work — the
// readable counterpart of ResetStats.
type UnitStats struct {
	// Steps is the number of MAC steps executed.
	Steps uint64
	// Elapsed is the wall-clock time those steps consume at the node's
	// t_MAC.
	Elapsed time.Duration
	// Energy is the energy those steps consume at the node's per-step cost.
	Energy units.Energy
}

// Stats returns the unit's current counters (steps, elapsed, energy).
func (u *Unit) Stats() UnitStats {
	return UnitStats{Steps: u.steps, Elapsed: u.Elapsed(), Energy: u.Energy()}
}
