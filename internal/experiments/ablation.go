package experiments

import (
	"fmt"
	"math"

	"mindful/internal/dnnmodel"
	"mindful/internal/mac"
	"mindful/internal/optimize"
	"mindful/internal/sched"
	"mindful/internal/soc"
	"mindful/internal/thermal"
	"mindful/internal/units"
)

// Ablations quantify how sensitive the headline results are to the
// modeling choices DESIGN.md documents: the DNN depth-scaling policy, the
// sensing/non-sensing split, the QAM implementation loss, the scheduling
// discipline, and the thermal flux split.

// DepthPolicyAblation is one row of the depth-policy study: the MLP
// crossover average under a given policy.
type DepthPolicyAblation struct {
	Policy       string
	AvgCrossover float64
}

// AblateDepthPolicy recomputes the Fig. 10 MLP crossover average under
// three depth policies: no depth growth, the default ⌈log₂α⌉, and linear
// ⌊α⌋ extra layers.
func AblateDepthPolicy() ([]DepthPolicyAblation, error) {
	policies := []struct {
		name string
		fn   dnnmodel.DepthPolicy
	}{
		{"none", func(alpha float64) int { return 0 }},
		{"log2 (default)", dnnmodel.DefaultDepth},
		{"linear", func(alpha float64) int {
			if alpha <= 1 {
				return 0
			}
			return int(alpha)
		}},
	}
	var out []DepthPolicyAblation
	for _, p := range policies {
		tmpl := dnnmodel.MLP()
		tmpl.Depth = p.fn
		_, avg, err := Fig10Crossovers(tmpl)
		if err != nil {
			return nil, fmt.Errorf("experiments: depth ablation %q: %w", p.name, err)
		}
		out = append(out, DepthPolicyAblation{Policy: p.name, AvgCrossover: avg})
	}
	return out, nil
}

// SplitAblation is one row of the sensing-split study.
type SplitAblation struct {
	AreaFrac float64
	// AllCross reports whether every wireless SoC's high-margin design
	// eventually exceeds its budget (the Fig. 5 claim).
	AllCross bool
	// MLPAvgCrossover is the Fig. 10 average under this split.
	MLPAvgCrossover float64
}

// AblateSensingSplit sweeps the sensing-area fraction and reports which
// paper claims survive. The default 0.4 is the largest value for which the
// Fig. 5 high-margin crossing holds for all SoCs.
func AblateSensingSplit(fracs []float64) ([]SplitAblation, error) {
	var out []SplitAblation
	for _, frac := range fracs {
		if frac <= 0 || frac >= 1 {
			return nil, fmt.Errorf("experiments: split fraction %g outside (0,1)", frac)
		}
		row := SplitAblation{AreaFrac: frac, AllCross: true}
		var sum, cnt float64
		for _, d := range soc.WirelessDesigns() {
			d.SensingAreaFrac = frac
			b := d.Baseline()
			// Does the high-margin design ever cross?
			asym := b.At1024.Power.Watts() / (thermal.SafeDensity.WattsPerM2() * b.SensingArea.M2())
			if asym <= 1 {
				row.AllCross = false
			}
			ev := optimize.NewEvaluator(b, dnnmodel.MLP())
			a, err := ev.Assess(1024, 1024)
			if err != nil {
				return nil, err
			}
			if !a.Feasible() {
				continue
			}
			max, ok, err := ev.MaxChannels(1024, 16384)
			if err != nil || !ok {
				return nil, fmt.Errorf("experiments: split ablation: %v", err)
			}
			sum += float64(max)
			cnt++
		}
		if cnt > 0 {
			row.MLPAvgCrossover = sum / cnt
		}
		out = append(out, row)
	}
	return out, nil
}

// QAMLossAblation is one row of the implementation-loss study.
type QAMLossAblation struct {
	ImplLossDB        float64
	At15, At20, At100 float64
}

// AblateQAMLoss sweeps the Fig. 7 implementation-loss calibration knob and
// reports the three annotation statistics.
func AblateQAMLoss(lossesDB []float64) ([]QAMLossAblation, error) {
	var out []QAMLossAblation
	for _, loss := range lossesDB {
		cfg := DefaultFig7Config()
		cfg.ImplLossDB = loss
		rows, err := Fig7(cfg)
		if err != nil {
			return nil, err
		}
		_, a15 := Fig7MaxChannelsAt(rows, 0.15)
		_, a20 := Fig7MaxChannelsAt(rows, 0.20)
		_, a100 := Fig7MaxChannelsAt(rows, 1.00)
		out = append(out, QAMLossAblation{ImplLossDB: loss, At15: a15, At20: a20, At100: a100})
	}
	return out, nil
}

// SchedulingAblation compares the two Eq. (11)–(15) disciplines for one
// model instance.
type SchedulingAblation struct {
	Model        string
	Channels     int
	NonPipelined int // MAC units (0 if infeasible)
	Pipelined    int
	BestIsPipe   bool
}

// AblateScheduling evaluates both disciplines for both templates at the
// given channel counts (2 kHz application deadline, 45 nm).
func AblateScheduling(channelCounts []int) ([]SchedulingAblation, error) {
	deadline := sched.DeadlineFor(units.Kilohertz(2))
	var out []SchedulingAblation
	for _, tmpl := range dnnmodel.Templates() {
		for _, n := range channelCounts {
			m, err := tmpl.Scale(n)
			if err != nil {
				return nil, err
			}
			np, err := sched.NonPipelined(m, deadline, mac.NanGate45)
			if err != nil {
				return nil, err
			}
			pl, err := sched.Pipelined(m, deadline, mac.NanGate45)
			if err != nil {
				return nil, err
			}
			row := SchedulingAblation{Model: tmpl.Name, Channels: n}
			if np.Feasible {
				row.NonPipelined = np.MACHW
			}
			if pl.Feasible {
				row.Pipelined = pl.MACHW
			}
			row.BestIsPipe = pl.Feasible && (!np.Feasible || pl.MACHW < np.MACHW)
			out = append(out, row)
		}
	}
	return out, nil
}

// FluxSplitAblation is one row of the thermal-model study.
type FluxSplitAblation struct {
	FluxSplit float64
	// RiseAtLimit is the tissue temperature rise at 40 mW/cm².
	RiseAtLimit float64
	// WithinPaperWindow reports whether the rise lands in 1–2 °C.
	WithinPaperWindow bool
}

// AblateFluxSplit sweeps the fraction of implant heat entering brain
// tissue and reports where the paper's 1–2 °C window survives.
func AblateFluxSplit(splits []float64) ([]FluxSplitAblation, error) {
	var out []FluxSplitAblation
	for _, s := range splits {
		m := thermal.DefaultModel()
		m.FluxSplit = s
		p, err := m.SteadyState(thermal.SafeDensity)
		if err != nil {
			return nil, err
		}
		rise := p.SurfaceRise()
		out = append(out, FluxSplitAblation{
			FluxSplit:         s,
			RiseAtLimit:       rise,
			WithinPaperWindow: rise >= 1 && rise <= 2,
		})
	}
	return out, nil
}

// ACRatioAblation quantifies the SNN-vs-MLP break-even activity: the input
// activity below which an event-driven network beats the dense MAC floor,
// as a function of the accumulate/MAC energy ratio.
type ACRatioAblation struct {
	ACOverMAC float64
	// BreakEvenActivity is the activity factor at which SNN energy equals
	// dense energy: activity × ratio = 1 → activity = 1/ratio... clamped
	// to 1.
	BreakEvenActivity float64
}

// AblateACRatio computes break-even activities for a sweep of energy
// ratios — the quantitative version of the related work's "SNNs offer
// improved power efficiency" claim.
func AblateACRatio(ratios []float64) ([]ACRatioAblation, error) {
	var out []ACRatioAblation
	for _, r := range ratios {
		if r <= 0 {
			return nil, fmt.Errorf("experiments: non-positive AC/MAC ratio %g", r)
		}
		out = append(out, ACRatioAblation{
			ACOverMAC:         r,
			BreakEvenActivity: math.Min(1/r, 1),
		})
	}
	return out, nil
}
