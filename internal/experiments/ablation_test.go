package experiments

import (
	"testing"
)

func TestAblateDepthPolicy(t *testing.T) {
	rows, err := AblateDepthPolicy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.AvgCrossover <= 0 {
			t.Errorf("policy %q crossover = %v", r.Policy, r.AvgCrossover)
		}
		byName[r.Policy] = r.AvgCrossover
	}
	// Deeper networks cost more: crossovers must be ordered
	// none ≥ default ≥ linear.
	if !(byName["none"] >= byName["log2 (default)"] && byName["log2 (default)"] >= byName["linear"]) {
		t.Errorf("crossover ordering violated: %v", byName)
	}
	// The depth policy is a second-order choice: the default and "none"
	// agree within 25%.
	if byName["none"] > 1.25*byName["log2 (default)"] {
		t.Errorf("depth policy dominates the result: %v", byName)
	}
}

func TestAblateSensingSplit(t *testing.T) {
	rows, err := AblateSensingSplit([]float64{0.3, 0.4, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The Fig. 5 all-SoCs-cross claim holds at 0.3 and 0.4 but fails at
	// 0.5 (Shen's density is too low) — the documented reason for the
	// 0.4 default.
	for _, r := range rows {
		switch r.AreaFrac {
		case 0.3, 0.4:
			if !r.AllCross {
				t.Errorf("frac %v: high-margin crossing should hold", r.AreaFrac)
			}
		case 0.5:
			if r.AllCross {
				t.Errorf("frac 0.5: crossing should fail for the least dense SoC")
			}
		}
		if r.MLPAvgCrossover < 1000 || r.MLPAvgCrossover > 4000 {
			t.Errorf("frac %v: crossover %v implausible", r.AreaFrac, r.MLPAvgCrossover)
		}
	}
	if _, err := AblateSensingSplit([]float64{0}); err == nil {
		t.Errorf("invalid fraction should fail")
	}
}

func TestAblateQAMLoss(t *testing.T) {
	rows, err := AblateQAMLoss([]float64{6, 8, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More loss → fewer channels at any efficiency, monotonically.
	for i := 1; i < len(rows); i++ {
		if rows[i].At20 > rows[i-1].At20 || rows[i].At100 > rows[i-1].At100 {
			t.Errorf("channel counts should fall with loss: %+v then %+v", rows[i-1], rows[i])
		}
	}
	// At every loss, ideal efficiency beats 20%.
	for _, r := range rows {
		if r.At100 < r.At20 {
			t.Errorf("loss %v: 100%% (%v) below 20%% (%v)", r.ImplLossDB, r.At100, r.At20)
		}
	}
}

func TestAblateScheduling(t *testing.T) {
	rows, err := AblateScheduling([]int{128, 1024, 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NonPipelined == 0 && r.Pipelined == 0 {
			t.Errorf("%s@%d: both disciplines infeasible", r.Model, r.Channels)
		}
		// When both are feasible, the best flag matches the counts.
		if r.NonPipelined > 0 && r.Pipelined > 0 {
			wantPipe := r.Pipelined < r.NonPipelined
			if r.BestIsPipe != wantPipe {
				t.Errorf("%s@%d best flag wrong: %+v", r.Model, r.Channels, r)
			}
		}
	}
}

func TestAblateFluxSplit(t *testing.T) {
	rows, err := AblateFluxSplit([]float64{0.3, 0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// Rise scales linearly with the split; the default 0.5 sits in the
	// paper's window.
	for i := 1; i < len(rows); i++ {
		if rows[i].RiseAtLimit <= rows[i-1].RiseAtLimit {
			t.Errorf("rise should grow with flux split")
		}
	}
	for _, r := range rows {
		if r.FluxSplit == 0.5 && !r.WithinPaperWindow {
			t.Errorf("default split outside the 1–2 °C window: %v", r.RiseAtLimit)
		}
	}
	if _, err := AblateFluxSplit([]float64{1.5}); err == nil {
		t.Errorf("invalid split should fail (model validation)")
	}
}

func TestAblateACRatio(t *testing.T) {
	rows, err := AblateACRatio([]float64{0.2, 0.4, 1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].BreakEvenActivity != 1 {
		t.Errorf("cheap accumulates should break even at full activity (clamped): %v", rows[0])
	}
	if rows[3].BreakEvenActivity != 0.5 {
		t.Errorf("ratio 2 break-even = %v, want 0.5", rows[3].BreakEvenActivity)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].BreakEvenActivity > rows[i-1].BreakEvenActivity {
			t.Errorf("break-even should fall with ratio")
		}
	}
	if _, err := AblateACRatio([]float64{0}); err == nil {
		t.Errorf("zero ratio should fail")
	}
}
