package experiments

import (
	"math"
	"testing"

	"mindful/internal/dnnmodel"
)

// The golden summary pins the exact headline numbers the default
// calibration produces. Everything here is deterministic; a change to any
// model constant shows up as a diff against these values, so calibration
// drift cannot slip in silently. (The paper-shape assertions live in the
// other test files; this one is the regression net.)
func TestGoldenSummary(t *testing.T) {
	intEq := func(name string, got, want int) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %d, want %d (calibration drift?)", name, got, want)
		}
	}
	floatNear := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %v, want %v ± %v (calibration drift?)", name, got, want, tol)
		}
	}

	// Fig. 10 crossovers.
	mlpPer, mlpAvg, err := Fig10Crossovers(dnnmodel.MLP())
	if err != nil {
		t.Fatal(err)
	}
	floatNear("MLP crossover avg", mlpAvg, 1833.4, 0.5)
	intEq("MLP max SoC1", mlpPer[1], 2474)
	intEq("MLP max SoC3", mlpPer[3], 763)
	intEq("MLP max SoC8", mlpPer[8], 1101)
	_, cnnAvg, err := Fig10Crossovers(dnnmodel.DNCNN())
	if err != nil {
		t.Fatal(err)
	}
	floatNear("DN-CNN crossover avg", cnnAvg, 1273.5, 0.5)

	// Fig. 11 gains.
	f11, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	floatNear("MLP partition gain", Fig11AverageGain(f11, "MLP"), 0.170, 0.005)
	floatNear("DN-CNN partition gain", Fig11AverageGain(f11, "DN-CNN"), 0, 1e-9)

	// Fig. 7 annotations.
	f7, err := Fig7(DefaultFig7Config())
	if err != nil {
		t.Fatal(err)
	}
	_, at15 := Fig7MaxChannelsAt(f7, 0.15)
	_, at20 := Fig7MaxChannelsAt(f7, 0.20)
	_, at100 := Fig7MaxChannelsAt(f7, 1.00)
	floatNear("Fig7 @15%", at15, 2005, 10)
	floatNear("Fig7 @20%", at20, 2112, 10)
	floatNear("Fig7 @100%", at100, 3035, 10)

	// Workload sizes at the standard channel count.
	mlp, err := dnnmodel.MLP().Scale(1024)
	if err != nil {
		t.Fatal(err)
	}
	intEq("MLP@1024 MACs", mlp.TotalMACs(), 35773440)
	cnn, err := dnnmodel.DNCNN().Scale(1024)
	if err != nil {
		t.Fatal(err)
	}
	intEq("DN-CNN@1024 MACs", cnn.TotalMACs(), 102596608)

	// Fig. 12 averages at 2048 channels.
	f12, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	a := Fig12Averages(f12, 2048)
	floatNear("Fig12 ChDr@2048", a[0], 0.519, 0.01)
	floatNear("Fig12 Dense@2048", a[3], 0.671, 0.01)
}
