package experiments

import (
	"testing"

	"mindful/internal/wpt"
)

func TestExtWPT(t *testing.T) {
	rows, err := ExtWPT(wpt.TypicalLink())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.EffectiveBudgetMW >= r.FullBudgetMW {
			t.Errorf("SoC %d: WPT must shrink the budget (%v vs %v)",
				r.SoC, r.EffectiveBudgetMW, r.FullBudgetMW)
		}
		if r.TxPowerMW <= 0 {
			t.Errorf("SoC %d: degenerate transmit power", r.SoC)
		}
	}
	// The WPT penalty must flip at least one previously-safe design to
	// infeasible — the Section 8 concern made concrete. (Neuralink at
	// 39 of 40 mW/cm² has no headroom for conversion losses.)
	flipped := 0
	for _, r := range rows {
		if !r.StillFeasible {
			flipped++
		}
	}
	if flipped == 0 {
		t.Errorf("expected at least one design to lose feasibility under WPT")
	}
	// But not all: the roomiest designs survive.
	if flipped == len(rows) {
		t.Errorf("expected some designs to survive WPT")
	}
	// Transmit power exceeds delivered power (efficiency < 1).
	for _, r := range rows {
		d, _ := soc_byNumPower(r.SoC)
		if r.TxPowerMW <= d {
			t.Errorf("SoC %d: tx %v mW not above delivered %v mW", r.SoC, r.TxPowerMW, d)
		}
	}
}

// soc_byNumPower returns the scaled design power in mW for comparison.
func soc_byNumPower(num int) (float64, bool) {
	for _, r := range Fig4()[:11] {
		if r.SoC == num && r.Name != "HALO (unscaled)" {
			return r.PowerMW, true
		}
	}
	return 0, false
}

func TestExtAFE(t *testing.T) {
	rows, err := ExtAFE([]float64{10, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Lower noise → more power → wider minimum pitch.
	for i := 1; i < len(rows); i++ {
		if rows[i].PerChannelUW <= rows[i-1].PerChannelUW {
			t.Errorf("power should grow as noise shrinks")
		}
		if rows[i].MinSafePitchUM <= rows[i-1].MinSafePitchUM {
			t.Errorf("pitch wall should widen as noise shrinks")
		}
	}
	// The 20 µm goal is out of reach for all realistic noise targets —
	// the analog scaling wall.
	for _, r := range rows {
		if r.Meets20UMGoal {
			t.Errorf("noise %g µV: 20 µm pitch should be thermally impossible", r.NoiseUVrms)
		}
	}
	if _, err := ExtAFE([]float64{0}); err == nil {
		t.Errorf("zero noise target should fail")
	}
}

func TestExtStim(t *testing.T) {
	rows, err := ExtStim([]int{16, 64, 256}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if !r.ShannonSafe {
			t.Errorf("typical pulse should be Shannon-safe")
		}
		if i > 0 && r.PowerUW <= rows[i-1].PowerUW {
			t.Errorf("power should grow with electrode count")
		}
	}
	// Even 256 electrodes at 100 Hz stay under half the 20 mm² budget —
	// stimulation is charge-limited, not thermally limited, at this scale.
	if rows[2].BudgetSharePct > 50 {
		t.Errorf("256-electrode share = %v%%, want < 50%%", rows[2].BudgetSharePct)
	}
	if _, err := ExtStim([]int{0}, 100); err == nil {
		t.Errorf("zero electrodes should fail")
	}
}
