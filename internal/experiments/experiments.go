// Package experiments regenerates every table and figure of the paper's
// evaluation (Table 1, Figs. 4–7 and 9–12) from the framework packages.
// Each Fig* function returns typed rows; the cmd/mindful tool formats them
// with internal/report. Summary helpers compute the aggregate numbers the
// paper quotes in prose (crossover averages, partition gains, optimization
// averages) so EXPERIMENTS.md can record paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"sort"

	"mindful/internal/accel"
	"mindful/internal/comm"
	"mindful/internal/dnnmodel"
	"mindful/internal/optimize"
	"mindful/internal/soc"
	"mindful/internal/units"
)

// ChannelSweep is the standard n-axis of the paper's figures:
// 1024..8192 in 1024-channel steps.
func ChannelSweep() []int {
	out := make([]int, 0, 8)
	for n := 1024; n <= 8192; n += 1024 {
		out = append(out, n)
	}
	return out
}

// Table1Row is one row of Table 1 with derived total power.
type Table1Row struct {
	Design  soc.Design
	PowerMW float64
}

// Table1 returns the design database with derived totals.
func Table1() []Table1Row {
	var out []Table1Row
	for _, d := range soc.Table1() {
		out = append(out, Table1Row{Design: d, PowerMW: d.Power().Milliwatts()})
	}
	return out
}

// Fig4Row is one scaled design point of Fig. 4.
type Fig4Row struct {
	SoC       int
	Name      string
	AreaMM2   float64
	PowerMW   float64
	DensityMW float64 // mW/cm²
	BudgetMW  float64
	Safe      bool
}

// Fig4 scales every Table 1 design to 1024 channels. The unmodified HALO
// point is appended last (as in the figure, which shows both HALO and
// HALO*).
func Fig4() []Fig4Row {
	var out []Fig4Row
	for _, d := range soc.Table1() {
		p := d.ScaleTo1024()
		name := d.Name
		if d.Num == 8 {
			name = "HALO*"
		}
		out = append(out, fig4Row(d.Num, name, p))
	}
	halo, _ := soc.ByNum(8)
	out = append(out, fig4Row(8, "HALO (unscaled)", halo.ScaleEq1(soc.StandardChannels)))
	return out
}

func fig4Row(num int, name string, p soc.Point) Fig4Row {
	return Fig4Row{
		SoC:       num,
		Name:      name,
		AreaMM2:   p.Area.MM2(),
		PowerMW:   p.Power.Milliwatts(),
		DensityMW: p.Density().MWPerCM2(),
		BudgetMW:  p.Budget().Milliwatts(),
		Safe:      p.Safe(),
	}
}

// Hypothesis selects the Section 5.1 design scenario.
type Hypothesis int

// The two scenarios of Figs. 5 and 6.
const (
	Naive Hypothesis = iota
	HighMargin
)

// String names the hypothesis.
func (h Hypothesis) String() string {
	if h == Naive {
		return "naive"
	}
	return "high-margin"
}

// Fig5Row is one bar of Fig. 5: an SoC at a channel count, split into
// sensing and non-sensing power, against its budget.
type Fig5Row struct {
	SoC          int
	Channels     int
	SensingMW    float64
	NonSensingMW float64
	BudgetMW     float64
	// Ratio is P_SoC / P_budget.
	Ratio float64
}

// Fig5 projects SoCs 1–8 under the given hypothesis for
// n ∈ {1024, 2048, 4096, 8192}.
func Fig5(h Hypothesis) []Fig5Row {
	var out []Fig5Row
	for _, d := range soc.WirelessDesigns() {
		b := d.Baseline()
		for _, n := range []int{1024, 2048, 4096, 8192} {
			var p soc.Point
			if h == Naive {
				p = b.Naive(n)
			} else {
				p = b.HighMargin(n)
			}
			sens := b.SensingPowerAt(n)
			out = append(out, Fig5Row{
				SoC:          d.Num,
				Channels:     n,
				SensingMW:    sens.Milliwatts(),
				NonSensingMW: (p.Power - sens).Milliwatts(),
				BudgetMW:     p.Budget().Milliwatts(),
				Ratio:        p.Power.Watts() / p.Budget().Watts(),
			})
		}
	}
	return out
}

// Fig6Row is one point of Fig. 6: the sensing-area fraction.
type Fig6Row struct {
	SoC      int
	Channels int
	Fraction float64
}

// Fig6 computes A_sensing/A_SoC for SoCs 1–8 under the given hypothesis
// over the standard channel sweep.
func Fig6(h Hypothesis) []Fig6Row {
	var out []Fig6Row
	for _, d := range soc.WirelessDesigns() {
		b := d.Baseline()
		for _, n := range ChannelSweep() {
			f := b.SensingFractionNaive(n)
			if h == HighMargin {
				f = b.SensingFractionHighMargin(n)
			}
			out = append(out, Fig6Row{SoC: d.Num, Channels: n, Fraction: f})
		}
	}
	return out
}

// Fig7Config parameterizes the QAM study.
type Fig7Config struct {
	// BER is the target bit error rate (paper: 1e-6).
	BER float64
	// PathLossDB and MarginDB follow Section 5.2 (60 dB + 20 dB).
	PathLossDB, MarginDB float64
	// ImplLossDB is the additional receiver noise figure and QAM
	// implementation loss not captured by the ideal link equation. The
	// paper folds this into its "QAM equation" solution; 8 dB calibrates
	// the average curve to the paper's annotations (≈1800 channels at
	// 13% efficiency, ≈2× at 20%, with the 100% bound in the 3–4× band).
	ImplLossDB float64
	// NMin, NMax, Step define the channel sweep.
	NMin, NMax, Step int
}

// DefaultFig7Config returns the paper's nominal parameters.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		BER:        comm.NominalBER,
		PathLossDB: 60,
		MarginDB:   20,
		ImplLossDB: 8,
		NMin:       1024,
		NMax:       6144,
		Step:       64,
	}
}

// Fig7Row is one (SoC, n) point: the minimum QAM efficiency that keeps the
// communication-centric SoC within its power budget.
type Fig7Row struct {
	SoC           int
	Channels      int
	BitsPerSymbol int
	// MinEfficiency > 1 means infeasible even with a perfect transmitter.
	MinEfficiency float64
}

// Fig7 computes the minimum QAM efficiency per SoC and channel count.
// Bits per symbol follow the paper's staircase: ⌈n/1024⌉.
func Fig7(cfg Fig7Config) ([]Fig7Row, error) {
	lb := comm.LinkBudget{
		PathLossDB:    cfg.PathLossDB,
		MarginDB:      cfg.MarginDB,
		NoiseFigureDB: cfg.ImplLossDB,
		NoiseTempK:    units.BodyTemperature,
		Efficiency:    1,
	}
	var out []Fig7Row
	for _, d := range soc.WirelessDesigns() {
		b := d.Baseline()
		for n := cfg.NMin; n <= cfg.NMax; n += cfg.Step {
			bits := comm.BitsPerSymbolFor(n, soc.StandardChannels)
			rate := b.SensingThroughputAt(n)
			headroom := b.BudgetAt(n) - b.SensingPowerAt(n)
			eff, err := lb.MinEfficiency(comm.NewQAM(bits), cfg.BER, rate, headroom)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 SoC %d n=%d: %w", d.Num, n, err)
			}
			out = append(out, Fig7Row{SoC: d.Num, Channels: n, BitsPerSymbol: bits, MinEfficiency: eff})
		}
	}
	return out, nil
}

// Fig7AverageCurve averages the minimum efficiency across SoCs per channel
// count, returning sorted (n, avg) pairs. Infeasible points (η > 1) are
// included as-is so the curve saturates visibly.
func Fig7AverageCurve(rows []Fig7Row) (ns []int, avg []float64) {
	sums := map[int]float64{}
	counts := map[int]int{}
	for _, r := range rows {
		sums[r.Channels] += r.MinEfficiency
		counts[r.Channels]++
	}
	for n := range sums {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		avg = append(avg, sums[n]/float64(counts[n]))
	}
	return ns, avg
}

// Fig7MaxChannelsAt returns, for each SoC, the largest swept n whose
// minimum efficiency is ≤ eta, and the average across SoCs.
func Fig7MaxChannelsAt(rows []Fig7Row, eta float64) (perSoC map[int]int, average float64) {
	perSoC = map[int]int{}
	for _, r := range rows {
		if r.MinEfficiency <= eta && r.Channels > perSoC[r.SoC] {
			perSoC[r.SoC] = r.Channels
		}
	}
	total := 0
	for _, n := range perSoC {
		total += n
	}
	if len(perSoC) == 0 {
		return perSoC, 0
	}
	return perSoC, float64(total) / float64(len(perSoC))
}

// Fig9Row is one accelerator design point of Fig. 9.
type Fig9Row struct {
	Design     int
	MACSeq     int
	MACHW      int
	MACOps     int
	LayerMW    float64
	PEMW       float64
	PEFraction float64
}

// Fig9 evaluates the twelve synthesis configurations.
func Fig9() []Fig9Row {
	var out []Fig9Row
	for i, c := range accel.Fig9DesignPoints() {
		out = append(out, Fig9Row{
			Design:     i + 1,
			MACSeq:     c.Seq,
			MACHW:      c.HW,
			MACOps:     c.Ops,
			LayerMW:    c.TotalPower().Milliwatts(),
			PEMW:       c.PEPower().Milliwatts(),
			PEFraction: c.PEFraction(),
		})
	}
	return out
}

// Fig10Row is one point of Fig. 10: normalized SoC power with an
// on-implant DNN.
type Fig10Row struct {
	SoC      int
	Model    string
	Channels int
	// Utilization is P_SoC/P_budget (the paper's normalized power).
	Utilization float64
	Feasible    bool
}

// Fig10 sweeps SoCs 1–8 with the given template over 1024..7168 channels.
func Fig10(tmpl dnnmodel.Template) ([]Fig10Row, error) {
	var out []Fig10Row
	for _, d := range soc.WirelessDesigns() {
		ev := optimize.NewEvaluator(d.Baseline(), tmpl)
		for n := 1024; n <= 7168; n += 1024 {
			a, err := ev.Assess(n, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig10 SoC %d n=%d: %w", d.Num, n, err)
			}
			out = append(out, Fig10Row{
				SoC:         d.Num,
				Model:       tmpl.Name,
				Channels:    n,
				Utilization: a.Utilization(),
				Feasible:    a.Feasible(),
			})
		}
	}
	return out, nil
}

// Fig10Crossovers returns, per SoC, the maximum feasible channel count for
// the template, plus the average across SoCs that can host the DNN at 1024
// channels (the paper's reported statistic).
func Fig10Crossovers(tmpl dnnmodel.Template) (perSoC map[int]int, avgFeasible float64, err error) {
	perSoC = map[int]int{}
	var sum, cnt float64
	for _, d := range soc.WirelessDesigns() {
		ev := optimize.NewEvaluator(d.Baseline(), tmpl)
		max, ok, err := ev.MaxChannels(128, 16384)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			continue
		}
		perSoC[d.Num] = max
		a, err := ev.Assess(1024, 1024)
		if err != nil {
			return nil, 0, err
		}
		if a.Feasible() {
			sum += float64(max)
			cnt++
		}
	}
	if cnt == 0 {
		return perSoC, 0, nil
	}
	return perSoC, sum / cnt, nil
}

// Fig11Row is one bar of Fig. 11: the channel-count increase enabled by
// DNN partitioning.
type Fig11Row struct {
	SoC          int
	Model        string
	MaxFull      int
	MaxPartition int
	// Increase is MaxPartition/MaxFull (1.0 = no benefit, the "Original"
	// reference line of the figure).
	Increase float64
}

// Fig11 compares full against partitioned deployments for both templates.
func Fig11() ([]Fig11Row, error) {
	var out []Fig11Row
	for _, tmpl := range dnnmodel.Templates() {
		for _, d := range soc.WirelessDesigns() {
			ev := optimize.NewEvaluator(d.Baseline(), tmpl)
			full, ok, err := ev.MaxChannels(128, 16384)
			if err != nil || !ok {
				return nil, fmt.Errorf("experiments: fig11 SoC %d full: %v", d.Num, err)
			}
			evP := ev
			evP.Partitioned = true
			part, ok, err := evP.MaxChannels(128, 16384)
			if err != nil || !ok {
				return nil, fmt.Errorf("experiments: fig11 SoC %d partitioned: %v", d.Num, err)
			}
			out = append(out, Fig11Row{
				SoC:          d.Num,
				Model:        tmpl.Name,
				MaxFull:      full,
				MaxPartition: part,
				Increase:     float64(part) / float64(full),
			})
		}
	}
	return out, nil
}

// Fig11AverageGain averages (Increase − 1) over SoCs for one model name.
func Fig11AverageGain(rows []Fig11Row, model string) float64 {
	var sum float64
	var cnt int
	for _, r := range rows {
		if r.Model == model {
			sum += r.Increase - 1
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// Fig12Row is one bar of Fig. 12: the feasible MLP model size after a
// cumulative optimization bundle.
type Fig12Row struct {
	SoC            int
	Channels       int
	Step           optimize.Step
	ActiveChannels int
	ModelFraction  float64
}

// Fig12 runs the combined-optimization study for the MLP on SoCs 1–8 at
// n ∈ {2048, 4096, 8192}.
func Fig12() ([]Fig12Row, error) {
	var out []Fig12Row
	for _, d := range soc.WirelessDesigns() {
		ev := optimize.NewEvaluator(d.Baseline(), dnnmodel.MLP())
		for _, n := range []int{2048, 4096, 8192} {
			rs, err := ev.ModelSizeAfter(n)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig12 SoC %d n=%d: %w", d.Num, n, err)
			}
			for _, r := range rs {
				out = append(out, Fig12Row{
					SoC:            d.Num,
					Channels:       n,
					Step:           r.Step,
					ActiveChannels: r.ActiveChannels,
					ModelFraction:  r.ModelFraction,
				})
			}
		}
	}
	return out, nil
}

// Fig12Averages returns the across-SoC average model fraction per step for
// one channel count.
func Fig12Averages(rows []Fig12Row, n int) map[optimize.Step]float64 {
	sums := map[optimize.Step]float64{}
	counts := map[optimize.Step]int{}
	for _, r := range rows {
		if r.Channels == n {
			sums[r.Step] += r.ModelFraction
			counts[r.Step]++
		}
	}
	out := map[optimize.Step]float64{}
	for s, v := range sums {
		out[s] = v / float64(counts[s])
	}
	return out
}
