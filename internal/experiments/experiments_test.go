package experiments

import (
	"math"
	"testing"

	"mindful/internal/dnnmodel"
	"mindful/internal/optimize"
)

func TestChannelSweep(t *testing.T) {
	s := ChannelSweep()
	if len(s) != 8 || s[0] != 1024 || s[7] != 8192 {
		t.Errorf("sweep = %v", s)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PowerMW <= 0 {
			t.Errorf("SoC %d power = %v", r.Design.Num, r.PowerMW)
		}
	}
}

func TestFig4AllSafeExceptRawHALO(t *testing.T) {
	rows := Fig4()
	if len(rows) != 12 { // 11 designs + unscaled HALO
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows[:11] {
		if !r.Safe {
			t.Errorf("%s should be inside the budget (%.1f mW over %.1f mW)", r.Name, r.PowerMW, r.BudgetMW)
		}
		if r.DensityMW > 40+1e-9 {
			t.Errorf("%s density %.1f exceeds 40 mW/cm²", r.Name, r.DensityMW)
		}
	}
	raw := rows[11]
	if raw.Safe {
		t.Errorf("unscaled HALO must violate the budget")
	}
}

func TestFig5NaiveFlatHighMarginCrossing(t *testing.T) {
	naive := Fig5(Naive)
	if len(naive) != 8*4 {
		t.Fatalf("naive rows = %d", len(naive))
	}
	// Per SoC, the naive ratio is constant in n.
	ratios := map[int]float64{}
	for _, r := range naive {
		if prev, ok := ratios[r.SoC]; ok {
			if math.Abs(prev-r.Ratio) > 1e-9 {
				t.Errorf("SoC %d naive ratio drifts: %v vs %v", r.SoC, prev, r.Ratio)
			}
		} else {
			ratios[r.SoC] = r.Ratio
		}
		if r.Ratio > 1 {
			t.Errorf("SoC %d naive point over budget at n=%d", r.SoC, r.Channels)
		}
		// Bars decompose.
		if r.SensingMW < 0 || r.NonSensingMW < 0 {
			t.Errorf("negative split: %+v", r)
		}
	}
	// High margin: ratio strictly increases with n for every SoC.
	hm := Fig5(HighMargin)
	last := map[int]float64{}
	for _, r := range hm {
		if prev, ok := last[r.SoC]; ok && r.Ratio <= prev {
			t.Errorf("SoC %d high-margin ratio not increasing at n=%d", r.SoC, r.Channels)
		}
		last[r.SoC] = r.Ratio
	}
}

func TestFig6Shapes(t *testing.T) {
	naive := Fig6(Naive)
	for _, r := range naive {
		if math.Abs(r.Fraction-0.4) > 1e-9 {
			t.Errorf("naive fraction = %v at SoC %d", r.Fraction, r.SoC)
		}
	}
	hm := Fig6(HighMargin)
	last := map[int]float64{}
	for _, r := range hm {
		if prev, ok := last[r.SoC]; ok && r.Fraction <= prev {
			t.Errorf("SoC %d high-margin fraction not increasing", r.SoC)
		}
		last[r.SoC] = r.Fraction
		// At 1024 the fraction equals the baseline split; beyond it the
		// high-margin design must beat the naive flat line.
		if r.Channels > 1024 && r.Fraction <= 0.4 {
			t.Errorf("high-margin fraction %v should exceed the naive 0.4", r.Fraction)
		}
	}
}

func TestFig7StaircaseAndAnnotations(t *testing.T) {
	rows, err := Fig7(DefaultFig7Config())
	if err != nil {
		t.Fatal(err)
	}
	// Bits per symbol follow the ⌈n/1024⌉ staircase.
	for _, r := range rows {
		want := (r.Channels + 1023) / 1024
		if r.BitsPerSymbol != want {
			t.Errorf("SoC %d n=%d bits=%d, want %d", r.SoC, r.Channels, r.BitsPerSymbol, want)
		}
	}
	// Within one SoC and one bits-per-symbol block, efficiency increases
	// with n; at block boundaries it jumps up (the figure's sharp steps).
	perSoC := map[int][]Fig7Row{}
	for _, r := range rows {
		perSoC[r.SoC] = append(perSoC[r.SoC], r)
	}
	for num, rs := range perSoC {
		for i := 1; i < len(rs); i++ {
			if rs[i].MinEfficiency < rs[i-1].MinEfficiency-1e-12 {
				t.Errorf("SoC %d efficiency decreased at n=%d", num, rs[i].Channels)
			}
		}
	}
	// Paper annotations: ≈1800–2000 channels near the current 13–15%
	// standard; ≈2× at 20%; ≥2.5× at the 100% ideal.
	if _, at15 := Fig7MaxChannelsAt(rows, 0.15); at15 < 1500 || at15 > 2500 {
		t.Errorf("avg channels at 15%% = %.0f, want ≈2000", at15)
	}
	if _, at20 := Fig7MaxChannelsAt(rows, 0.20); at20 < 1800 || at20 > 2700 {
		t.Errorf("avg channels at 20%% = %.0f, paper says ≈2× (2048)", at20)
	}
	_, at100 := Fig7MaxChannelsAt(rows, 1.0)
	if at100 < 2600 {
		t.Errorf("avg channels at 100%% = %.0f, paper says up to ≈4×", at100)
	}
	// And 100% must beat 20% decisively.
	_, at20 := Fig7MaxChannelsAt(rows, 0.20)
	if at100 <= at20 {
		t.Errorf("ideal efficiency should allow more channels: %v vs %v", at100, at20)
	}
}

func TestFig7AverageCurveSorted(t *testing.T) {
	rows, err := Fig7(DefaultFig7Config())
	if err != nil {
		t.Fatal(err)
	}
	ns, avg := Fig7AverageCurve(rows)
	if len(ns) != len(avg) || len(ns) == 0 {
		t.Fatalf("curve shape: %d vs %d", len(ns), len(avg))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			t.Fatalf("curve not sorted")
		}
		if avg[i] < avg[i-1]-1e-12 {
			t.Errorf("average curve decreased at n=%d", ns[i])
		}
	}
}

func TestFig9Trajectory(t *testing.T) {
	rows := Fig9()
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].PEFraction > 0.4 {
		t.Errorf("design 1 PE fraction = %v", rows[0].PEFraction)
	}
	if f := rows[8].PEFraction; f < 0.7 || f > 0.9 {
		t.Errorf("design 9 PE fraction = %v, want ≈0.8", f)
	}
	if f := rows[11].PEFraction; f < 0.93 {
		t.Errorf("design 12 PE fraction = %v, want ≈0.96", f)
	}
	for _, r := range rows {
		if math.Abs(r.PEMW/r.LayerMW-r.PEFraction) > 1e-9 {
			t.Errorf("design %d fraction inconsistent", r.Design)
		}
	}
}

func TestFig10PaperClaims(t *testing.T) {
	for _, tmpl := range dnnmodel.Templates() {
		rows, err := Fig10(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 8*7 {
			t.Fatalf("%s rows = %d", tmpl.Name, len(rows))
		}
		// Utilization grows monotonically with n for every SoC.
		last := map[int]float64{}
		for _, r := range rows {
			if prev, ok := last[r.SoC]; ok && r.Utilization < prev {
				t.Errorf("%s SoC %d utilization decreased at n=%d", tmpl.Name, r.SoC, r.Channels)
			}
			last[r.SoC] = r.Utilization
		}
	}
	// Crossover averages (among SoCs feasible at 1024).
	_, avgMLP, err := Fig10Crossovers(dnnmodel.MLP())
	if err != nil {
		t.Fatal(err)
	}
	if avgMLP < 1500 || avgMLP > 2200 {
		t.Errorf("MLP crossover average = %.0f, paper says ≈1800", avgMLP)
	}
	_, avgCNN, err := Fig10Crossovers(dnnmodel.DNCNN())
	if err != nil {
		t.Fatal(err)
	}
	if avgCNN < 1100 || avgCNN > 1700 {
		t.Errorf("DN-CNN crossover average = %.0f, paper says ≈1400", avgCNN)
	}
	if avgCNN >= avgMLP {
		t.Errorf("DN-CNN must cross earlier than MLP: %v vs %v", avgCNN, avgMLP)
	}
}

func TestFig11PaperClaims(t *testing.T) {
	rows, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d", len(rows))
	}
	mlpGain := Fig11AverageGain(rows, "MLP")
	if mlpGain < 0.10 || mlpGain > 0.35 {
		t.Errorf("MLP average gain = %.0f%%, paper says ≈20%%", mlpGain*100)
	}
	cnnGain := Fig11AverageGain(rows, "DN-CNN")
	if math.Abs(cnnGain) > 0.02 {
		t.Errorf("DN-CNN average gain = %.0f%%, paper says none", cnnGain*100)
	}
	// The best MLP case reaches a substantial gain (paper: 40%).
	best := 0.0
	for _, r := range rows {
		if r.Model == "MLP" && r.Increase-1 > best {
			best = r.Increase - 1
		}
	}
	if best < 0.2 {
		t.Errorf("best MLP gain = %.0f%%, paper says up to 40%%", best*100)
	}
	if Fig11AverageGain(rows, "missing") != 0 {
		t.Errorf("unknown model gain should be 0")
	}
}

func TestFig12PaperShape(t *testing.T) {
	rows, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8*3*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	a2048 := Fig12Averages(rows, 2048)
	a4096 := Fig12Averages(rows, 4096)
	a8192 := Fig12Averages(rows, 8192)
	// Feasible model size shrinks with n at every step.
	for _, s := range optimize.Steps() {
		if !(a2048[s] > a4096[s] && a4096[s] >= a8192[s]) {
			t.Errorf("step %v fractions not decreasing: %.2f %.2f %.2f", s, a2048[s], a4096[s], a8192[s])
		}
	}
	// La helps, Tech helps more, Dense hurts — at every n.
	for _, a := range []map[optimize.Step]float64{a2048, a4096, a8192} {
		if a[optimize.La] < a[optimize.ChDr]-1e-9 {
			t.Errorf("La below ChDr: %v", a)
		}
		if a[optimize.Tech] < a[optimize.La]-1e-9 {
			t.Errorf("Tech below La: %v", a)
		}
		if a[optimize.Dense] > a[optimize.Tech]+1e-9 {
			t.Errorf("Dense above Tech: %v", a)
		}
	}
	// Magnitudes: deep cuts required at scale (paper: 2% at 8192).
	if a8192[optimize.ChDr] > 0.15 {
		t.Errorf("ChDr@8192 = %v, want small", a8192[optimize.ChDr])
	}
}
