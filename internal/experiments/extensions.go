package experiments

import (
	"fmt"

	"mindful/internal/afe"
	"mindful/internal/soc"
	"mindful/internal/stim"
	"mindful/internal/thermal"
	"mindful/internal/units"
	"mindful/internal/wpt"
)

// Extension studies: the Section 8 "future considerations" quantified with
// the substrates this repository adds beyond the paper's evaluation —
// wireless power transfer, analog front-end scaling, and closed-loop
// stimulation.

// WPTRow is one SoC's budget accounting under wireless powering.
type WPTRow struct {
	SoC int
	// FullBudgetMW is the thermal budget at 1024 channels.
	FullBudgetMW float64
	// EffectiveBudgetMW subtracts the on-implant WPT losses.
	EffectiveBudgetMW float64
	// StillFeasible reports whether the scaled design still fits after
	// the WPT penalty.
	StillFeasible bool
	// TxPowerMW is the external transmit power needed to run the design.
	TxPowerMW float64
}

// ExtWPT evaluates every wireless SoC at 1024 channels under a typical
// transcutaneous power link.
func ExtWPT(link wpt.Link) ([]WPTRow, error) {
	var out []WPTRow
	for _, d := range soc.WirelessDesigns() {
		b := d.Baseline()
		full := thermal.Budget(b.At1024.Area)
		eff, err := link.EffectiveBudget(b.At1024.Area)
		if err != nil {
			return nil, fmt.Errorf("experiments: wpt SoC %d: %w", d.Num, err)
		}
		tx, err := link.TxForDelivered(b.At1024.Power)
		if err != nil {
			return nil, err
		}
		out = append(out, WPTRow{
			SoC:               d.Num,
			FullBudgetMW:      full.Milliwatts(),
			EffectiveBudgetMW: eff.Milliwatts(),
			StillFeasible:     b.At1024.Power <= eff,
			TxPowerMW:         tx.Milliwatts(),
		})
	}
	return out, nil
}

// AFERow is one point of the analog-scaling study: the minimum safe
// channel pitch for a given input-referred noise target.
type AFERow struct {
	NoiseUVrms float64
	// PerChannelUW is the analog chain power per channel.
	PerChannelUW float64
	// MinSafePitchUM is the tightest pitch within 40 mW/cm².
	MinSafePitchUM float64
	// Meets20UMGoal reports whether the paper's 20 µm one-channel-per-
	// neuron target (Section 3.2) is reachable at this quality.
	Meets20UMGoal bool
}

// ExtAFE sweeps amplifier noise targets and reports the density wall the
// analog front end imposes — the quantitative form of Section 8's "analog
// components remain a key scaling limitation".
func ExtAFE(noiseTargetsUV []float64) ([]AFERow, error) {
	var out []AFERow
	for _, uv := range noiseTargetsUV {
		fe := afe.TypicalFrontEnd()
		fe.Amp.InputNoiseVrms = uv * 1e-6
		pc, err := fe.PerChannelPower()
		if err != nil {
			return nil, fmt.Errorf("experiments: afe at %g µV: %w", uv, err)
		}
		pitch, err := fe.MinSafePitch(thermal.SafeDensity)
		if err != nil {
			return nil, err
		}
		out = append(out, AFERow{
			NoiseUVrms:     uv,
			PerChannelUW:   pc.Microwatts(),
			MinSafePitchUM: pitch * 1e6,
			Meets20UMGoal:  pitch <= 20e-6,
		})
	}
	return out, nil
}

// StimRow is one closed-loop stimulation scenario.
type StimRow struct {
	Electrodes int
	RateHz     float64
	// PowerUW is the stimulator's average draw.
	PowerUW float64
	// ShannonSafe reports per-electrode charge safety.
	ShannonSafe bool
	// BudgetSharePct is the fraction of a Neuralink-sized (20 mm²)
	// budget consumed.
	BudgetSharePct float64
}

// ExtStim sweeps stimulation scales on the typical electrode and pulse.
func ExtStim(electrodeCounts []int, rateHz float64) ([]StimRow, error) {
	budget := thermal.Budget(units.SquareMillimetres(20))
	var out []StimRow
	for _, n := range electrodeCounts {
		s := stim.TypicalSchedule()
		s.Electrodes = n
		s.RateHz = rateHz
		p, err := s.AveragePower()
		if err != nil {
			return nil, fmt.Errorf("experiments: stim %d electrodes: %w", n, err)
		}
		check, err := stim.CheckShannon(s.Pulse, stim.TypicalMicroelectrode())
		if err != nil {
			return nil, err
		}
		share, err := s.BudgetShare(budget)
		if err != nil {
			return nil, err
		}
		out = append(out, StimRow{
			Electrodes:     n,
			RateHz:         rateHz,
			PowerUW:        p.Microwatts(),
			ShannonSafe:    check.Safe(),
			BudgetSharePct: share * 100,
		})
	}
	return out, nil
}
