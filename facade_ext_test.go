package mindful_test

import (
	"math"
	"testing"

	"mindful"
)

func TestFacadeFrontEnd(t *testing.T) {
	fe := mindful.TypicalFrontEnd()
	pc, err := fe.PerChannelPower()
	if err != nil {
		t.Fatal(err)
	}
	if pc.Microwatts() <= 0 {
		t.Errorf("per-channel power = %v", pc)
	}
	pitch, err := fe.MinSafePitch(mindful.SafePowerDensity)
	if err != nil {
		t.Fatal(err)
	}
	if pitch <= 20e-6 {
		t.Errorf("the analog wall should sit above the 20 µm goal: %v", pitch)
	}
}

func TestFacadeWPT(t *testing.T) {
	link := mindful.TypicalWPTLink()
	d, err := link.Deliver(mindful.Milliwatts(100))
	if err != nil {
		t.Fatal(err)
	}
	if d.Delivered <= 0 || d.Delivered >= mindful.Milliwatts(100) {
		t.Errorf("delivery out of range: %+v", d)
	}
	eff, err := link.EffectiveBudget(mindful.SquareMillimetres(144))
	if err != nil {
		t.Fatal(err)
	}
	full := mindful.PowerBudget(mindful.SquareMillimetres(144))
	if eff >= full {
		t.Errorf("WPT must shrink the budget: %v vs %v", eff, full)
	}
}

func TestFacadeSNN(t *testing.T) {
	net, err := mindful.NewRandomSNN(5, mindful.DefaultLIF(), 32, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := mindful.NewSpikeEncoder(6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, 32)
	for i := range values {
		values[i] = 0.9
	}
	for s := 0; s < 200; s++ {
		if _, err := net.Step(enc.Encode(values)); err != nil {
			t.Fatal(err)
		}
	}
	if net.SynapticEvents() == 0 {
		t.Errorf("no events")
	}
	em := mindful.SNNEnergyFromMAC(mindful.NanGate45.EnergyPerStep())
	if p := em.Power(net.SynapticEvents(), 0.1); p <= 0 {
		t.Errorf("SNN power = %v", p)
	}
	if _, err := mindful.NewRandomSNN(1, mindful.DefaultLIF(), 8); err == nil {
		t.Errorf("single-size SNN should fail")
	}
}

func TestFacadeCompression(t *testing.T) {
	samples := []uint16{100, 101, 99, 102, 103, 100, 98, 97}
	enc, err := mindful.DeltaRiceEncode(samples, 10)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mindful.DeltaRiceDecode(enc, len(samples), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if dec[i] != samples[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
	ratio, err := mindful.CompressionRatio(samples, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 {
		t.Errorf("ratio = %v", ratio)
	}
}

func TestFacadeImplantDropout(t *testing.T) {
	cfg := mindful.DefaultImplantConfig()
	cfg.Neural.Channels = 32
	cfg.Dropout = mindful.ChannelDropout{Enabled: true, CalibrationTicks: 100, Keep: 8}
	im, err := mindful.NewImplant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Run(150); err != nil {
		t.Fatal(err)
	}
	if got := len(im.ActiveChannels()); got != 8 {
		t.Errorf("active channels = %d, want 8", got)
	}
}

func TestFacadeRandomMLP(t *testing.T) {
	net, err := mindful.NewRandomMLP(3, 16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if net.Params() != 16*8+8+8*4+4 {
		t.Errorf("params = %d", net.Params())
	}
	if _, err := mindful.NewRandomMLP(3, 16); err == nil {
		t.Errorf("single-size MLP should fail")
	}
	total, err := net.TotalMACs()
	if err != nil || total != 16*8+8*4 {
		t.Errorf("total MACs = %d, %v", total, err)
	}
	if math.Abs(float64(total)-160) > 0 {
		t.Errorf("unexpected MAC count %d", total)
	}
}
