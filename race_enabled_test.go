//go:build race

package mindful_test

// raceEnabled reports whether the race detector instruments this build.
// Performance floors are not asserted under the detector: its per-access
// instrumentation compresses the batched/scalar ratio the floor checks.
const raceEnabled = true
