// The stage flight recorder's tracked baseline: a decode-in-the-loop
// fleet run with per-stage timing attached must attribute every tick to
// all four pipeline stages, stay digest-identical to the untimed run,
// and serialize as BENCH_stage.json. This is the `make obs-smoke` gate.
package mindful_test

import (
	"os"
	"testing"

	"mindful"
)

func TestStageProfileBaseline(t *testing.T) {
	cfg := mindful.DefaultFleetConfig()
	cfg.Implants = 16
	cfg.Workers = 4
	cfg.Ticks = 64
	cfg.Decode = mindful.FleetDecodeConfig{Kind: mindful.FleetDecoderKalman}

	prof, agg, err := mindful.RunFleetProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The timing decorator is digest-neutral: the profiled aggregate must
	// be byte-identical to an untimed run of the same config.
	plain, err := mindful.RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Digest != plain.Digest || agg.DecodeDigest != plain.DecodeDigest {
		t.Fatalf("profiled digests %#016x/%#016x != untimed %#016x/%#016x",
			agg.Digest, agg.DecodeDigest, plain.Digest, plain.DecodeDigest)
	}

	// Every stage must be attributed, with one observation per frame.
	want := map[string]bool{"source": false, "transport": false, "receiver": false, "decode": false}
	steps := int64(cfg.Implants * cfg.Ticks)
	for _, s := range prof.Stages {
		seen, ok := want[s.Stage]
		if !ok || seen {
			t.Fatalf("unexpected or duplicate stage %q", s.Stage)
		}
		want[s.Stage] = true
		if s.Count != steps {
			t.Errorf("stage %s count = %d, want %d", s.Stage, s.Count, steps)
		}
		if s.MeanNs <= 0 || s.TotalNs <= 0 {
			t.Errorf("stage %s has empty timing: mean %g ns, total %d ns", s.Stage, s.MeanNs, s.TotalNs)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("stage %s missing from profile", name)
		}
	}

	f, err := os.Create("BENCH_stage.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := prof.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}
