// The fleet scaling contract: the parallel simulator must produce
// bit-identical output at every worker count and every batch size while
// throughput scales with the hardware. TestFleetScalingBaseline
// measures two curves on the ISSUE-sized 64-implant fleet and writes
// them to BENCH_fleet.json as the tracked baseline:
//
//   - worker scaling (1/2/4/8 workers, scalar execution) — parallelism
//     across cores, asserted ≥3× at 8 workers where the host has the
//     cores to express it;
//   - batch scaling (B ∈ {1, 4, 16, 64}, one worker) — the slab-kernel
//     speedup on a single core, asserted unconditionally (no core-count
//     gate: batching needs no extra hardware), with per-stage ns/frame
//     attribution from the flight recorder for both execution modes.
package mindful_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"mindful/internal/fleet"
	"mindful/internal/obs"
)

// fleetScalingConfig is the fixed workload of both curves: the
// ISSUE-sized 64-implant fleet.
func fleetScalingConfig() fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Implants = 64
	cfg.Ticks = 48
	cfg.Channels = 32
	return cfg
}

// fleetScalingBaseline is the BENCH_fleet.json schema.
type fleetScalingBaseline struct {
	Benchmark string `json:"benchmark"`
	Implants  int    `json:"implants"`
	Ticks     int    `json:"ticks"`
	Channels  int    `json:"channels"`
	// GOMAXPROCS and NumCPU record the parallelism the host could offer;
	// a flat worker curve on a single-core machine is expected, not a
	// regression. The batch curve does not depend on them.
	GOMAXPROCS int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Points     []fleet.ScalingPoint `json:"points"`
	// BatchPoints is the single-worker batch sweep; best-of-three per
	// size, speedups relative to the B=1 scalar point.
	BatchPoints []fleet.BatchPoint `json:"batch_points"`
	// BestBatch is the sweep's fastest batch size and
	// SingleCoreBatchSpeedup its speedup over scalar on one worker.
	BestBatch              int     `json:"best_batch"`
	SingleCoreBatchSpeedup float64 `json:"single_core_batch_speedup"`
	// StagesScalar and StagesBatched attribute the tick to stages
	// (ns/frame) for scalar execution and for BestBatch.
	StagesScalar  []obs.StageStats `json:"stages_scalar"`
	StagesBatched []obs.StageStats `json:"stages_batched"`
}

// measureBatchCurve runs the batch sweep reps times and keeps each
// size's best throughput — wall-clock points this small are noisy, and
// the curve should record capability, not scheduler luck. Digest
// equality across sizes is enforced inside every sweep.
func measureBatchCurve(t *testing.T, cfg fleet.Config, batches []int, reps int) []fleet.BatchPoint {
	t.Helper()
	var best []fleet.BatchPoint
	for rep := 0; rep < reps; rep++ {
		pts, err := fleet.MeasureBatchSweep(cfg, batches)
		if err != nil {
			t.Fatal(err)
		}
		if best == nil {
			best = pts
			continue
		}
		for i := range pts {
			if pts[i].FramesPerSecond > best[i].FramesPerSecond {
				best[i] = pts[i]
			}
		}
	}
	for i := range best {
		best[i].Speedup = best[i].FramesPerSecond / best[0].FramesPerSecond
	}
	return best
}

func TestFleetScalingBaseline(t *testing.T) {
	cfg := fleetScalingConfig()
	points, err := fleet.MeasureScaling(cfg, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	b := fleetScalingBaseline{
		Benchmark:  "fleet_worker_scaling",
		Implants:   cfg.Implants,
		Ticks:      cfg.Ticks,
		Channels:   cfg.Channels,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Points:     points,
	}
	for _, p := range points {
		t.Logf("workers=%d: %.0f frames/s (%.2fx)", p.Workers, p.FramesPerSecond, p.Speedup)
	}

	// The batch curve: one worker, best of three sweeps per size.
	b.BatchPoints = measureBatchCurve(t, cfg, []int{1, 4, 16, 64}, 3)
	b.BestBatch = b.BatchPoints[0].Batch
	for _, p := range b.BatchPoints {
		t.Logf("batch=%d: %.0f frames/s (%.2fx)", p.Batch, p.FramesPerSecond, p.Speedup)
		if p.Speedup > b.SingleCoreBatchSpeedup {
			b.BestBatch, b.SingleCoreBatchSpeedup = p.Batch, p.Speedup
		}
	}

	// Per-stage attribution for both execution modes, digest-checked
	// against each other (the profile decorator is digest-neutral and
	// batching is bit-identical, so all three digests must agree).
	profScalar, aggScalar, err := fleet.RunProfile(withWorkers(cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	batchedCfg := withWorkers(cfg, 1)
	batchedCfg.Batch = b.BestBatch
	profBatched, aggBatched, err := fleet.RunProfile(batchedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if aggScalar.Digest != aggBatched.Digest || aggScalar.Digest != points[0].Digest {
		t.Fatalf("profile digests diverged: scalar %#x batched %#x sweep %#x",
			aggScalar.Digest, aggBatched.Digest, points[0].Digest)
	}
	b.StagesScalar = profScalar.Stages
	b.StagesBatched = profBatched.Stages

	// The parallel-scaling acceptance bound (≥3x at 8 workers) needs at
	// least 8 cores to be physically measurable; on smaller hosts the
	// curve is recorded but only the determinism contract is enforced
	// (digest equality is already checked inside MeasureScaling).
	if b.NumCPU >= 8 && b.GOMAXPROCS >= 8 {
		last := points[len(points)-1]
		if last.Speedup < 3 {
			t.Errorf("8-worker speedup %.2fx on a %d-core host, want >= 3x", last.Speedup, b.NumCPU)
		}
	}

	// The batched-execution bound is NOT core-gated — slab kernels on
	// one core need no extra hardware. The recorded baseline shows ≥3×;
	// the enforced floor is 2× so shared-runner noise cannot flake the
	// gate, and it is skipped only under the race detector, whose
	// instrumentation deliberately distorts exactly what is measured.
	if !raceEnabled && b.SingleCoreBatchSpeedup < 2 {
		t.Errorf("single-core batched speedup %.2fx at B=%d, want >= 2x",
			b.SingleCoreBatchSpeedup, b.BestBatch)
	}

	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fleet.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func withWorkers(cfg fleet.Config, w int) fleet.Config {
	cfg.Workers = w
	return cfg
}

// BenchmarkFleet measures the fleet simulator across the worker and
// batch dimensions; ReportAllocs tracks the hot path's per-frame
// allocation budget (the batched path is pinned to zero steady-state
// allocations by the fleet package's alloc test).
func BenchmarkFleet(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := fleetScalingConfig()
			cfg.Ticks = 16
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, batch := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("workers=1/batch=%d", batch), func(b *testing.B) {
			cfg := fleetScalingConfig()
			cfg.Ticks = 16
			cfg.Workers = 1
			cfg.Batch = batch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
