// The fleet scaling contract: the parallel simulator must produce
// bit-identical output at every worker count while throughput scales with
// available cores. TestFleetScalingBaseline measures the 1/2/4/8-worker
// curve on a 64-implant fleet and writes it to BENCH_fleet.json as the
// tracked baseline, alongside the host's core count — the speedup
// assertion only applies where the hardware can express it.
package mindful_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"mindful/internal/fleet"
)

// fleetScalingConfig is the fixed workload of the scaling curve: the
// ISSUE-sized 64-implant fleet.
func fleetScalingConfig() fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Implants = 64
	cfg.Ticks = 48
	cfg.Channels = 32
	return cfg
}

// fleetScalingBaseline is the BENCH_fleet.json schema.
type fleetScalingBaseline struct {
	Benchmark string `json:"benchmark"`
	Implants  int    `json:"implants"`
	Ticks     int    `json:"ticks"`
	Channels  int    `json:"channels"`
	// GOMAXPROCS and NumCPU record the parallelism the host could offer;
	// a flat curve on a single-core machine is expected, not a regression.
	GOMAXPROCS int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Points     []fleet.ScalingPoint `json:"points"`
}

func TestFleetScalingBaseline(t *testing.T) {
	cfg := fleetScalingConfig()
	points, err := fleet.MeasureScaling(cfg, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	b := fleetScalingBaseline{
		Benchmark:  "fleet_worker_scaling",
		Implants:   cfg.Implants,
		Ticks:      cfg.Ticks,
		Channels:   cfg.Channels,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Points:     points,
	}
	for _, p := range points {
		t.Logf("workers=%d: %.0f frames/s (%.2fx)", p.Workers, p.FramesPerSecond, p.Speedup)
	}

	// The scaling acceptance bound (≥3x at 8 workers) needs at least 8
	// cores to be physically measurable; on smaller hosts the curve is
	// recorded but only the determinism contract is enforced (digest
	// equality is already checked inside MeasureScaling).
	if b.NumCPU >= 8 && b.GOMAXPROCS >= 8 {
		last := points[len(points)-1]
		if last.Speedup < 3 {
			t.Errorf("8-worker speedup %.2fx on a %d-core host, want >= 3x", last.Speedup, b.NumCPU)
		}
	}

	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_fleet.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFleet measures the fleet simulator per worker count; ReportAllocs
// tracks the pooled hot path's per-frame allocation budget.
func BenchmarkFleet(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := fleetScalingConfig()
			cfg.Ticks = 16
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
