module mindful

go 1.22
