package mindful_test

import (
	"fmt"

	"mindful"
)

// The core workflow: scale a published design to the 1024-channel
// standard and check it against the thermal safety budget.
func Example() {
	bisc, _ := mindful.DesignByNum(1)
	b := bisc.Baseline()
	check := mindful.CheckSafety(b.At1024.Power, b.At1024.Area)
	fmt.Println(check)
	// Output:
	// SAFE: 38.9 mW over 144 mm² = 27 mW/cm² (budget 57.6 mW, 68%)
}

// Pricing a computation-centric implant: the MLP on BISC at twice the
// channel standard.
func ExampleEvaluator() {
	bisc, _ := mindful.DesignByNum(1)
	ev := mindful.NewEvaluator(bisc.Baseline(), mindful.MLPTemplate())
	a, _ := ev.Assess(2048, 2048)
	fmt.Printf("feasible at 2048 channels: %v (%.0f%% of budget)\n",
		a.Feasible(), a.Utilization()*100)
	// Output:
	// feasible at 2048 channels: true (84% of budget)
}

// Eq. (6): the raw data rate of the paper's worked example.
func ExampleBaseline_sensingThroughput() {
	bisc, _ := mindful.DesignByNum(1)
	b := bisc.Baseline()
	fmt.Println(b.SensingThroughputAt(1024))
	// Output:
	// 81.9 Mbps
}

// The analytic cost of denser constellations: each extra bit per symbol
// demands more energy per bit at the same error rate.
func ExampleNewQAM() {
	for _, bits := range []int{2, 4, 6} {
		q := mindful.NewQAM(bits)
		fmt.Printf("%s needs Eb/N0 = %.0f at BER 1e-6\n", q.Name(), q.RequiredEbN0(1e-6))
	}
	// Output:
	// 4-QAM needs Eb/N0 = 11 at BER 1e-6
	// 16-QAM needs Eb/N0 = 28 at BER 1e-6
	// 64-QAM needs Eb/N0 = 75 at BER 1e-6
}

// The power budget is a pure function of contact area (Eq. 3).
func ExamplePowerBudget() {
	fmt.Println(mindful.PowerBudget(mindful.SquareMillimetres(20)))
	fmt.Println(mindful.PowerBudget(mindful.SquareMillimetres(144)))
	// Output:
	// 8 mW
	// 57.6 mW
}

// Scaling a DNN workload with the channel count (Section 5.3's α).
func ExampleDNNTemplate() {
	small, _ := mindful.MLPTemplate().Scale(128)
	large, _ := mindful.MLPTemplate().Scale(1024)
	fmt.Printf("α=1: %d weights; α=8: %d weights (%.0f×)\n",
		small.TotalWeights(), large.TotalWeights(),
		float64(large.TotalWeights())/float64(small.TotalWeights()))
	// Output:
	// α=1: 648960 weights; α=8: 35773440 weights (55×)
}
