package mindful_test

import (
	"math"
	"testing"

	"mindful"
)

func TestFacadeDesignFlow(t *testing.T) {
	designs := mindful.Table1()
	if len(designs) != 11 {
		t.Fatalf("Table1 = %d designs", len(designs))
	}
	if len(mindful.WirelessDesigns()) != 8 {
		t.Fatalf("wireless designs wrong")
	}
	bisc, ok := mindful.DesignByNum(1)
	if !ok {
		t.Fatal("BISC missing")
	}
	b := bisc.Baseline()
	if b.At1024.Channels != mindful.StandardChannels {
		t.Errorf("baseline channels = %d", b.At1024.Channels)
	}
	check := mindful.CheckSafety(b.At1024.Power, b.At1024.Area)
	if !check.Safe() {
		t.Errorf("BISC baseline should be safe: %v", check)
	}
	if got := mindful.PowerBudget(mindful.SquareMillimetres(144)).Milliwatts(); math.Abs(got-57.6) > 1e-9 {
		t.Errorf("budget = %v", got)
	}
}

func TestFacadeThermal(t *testing.T) {
	m := mindful.DefaultThermalModel()
	p, err := m.SteadyState(mindful.SafePowerDensity)
	if err != nil {
		t.Fatal(err)
	}
	if rise := p.SurfaceRise(); rise < 1 || rise > 2 {
		t.Errorf("rise at the safety limit = %v, want 1–2 °C", rise)
	}
}

func TestFacadeComputationFlow(t *testing.T) {
	bisc, _ := mindful.DesignByNum(1)
	ev := mindful.NewEvaluator(bisc.Baseline(), mindful.MLPTemplate())
	a, err := ev.Assess(1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Feasible() {
		t.Errorf("BISC MLP@1024 should be feasible")
	}
	m, err := mindful.MLPTemplate().Scale(1024)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mindful.ScheduleLowerBound(m, mindful.DeadlineFor(mindful.Kilohertz(2)), mindful.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.MACHW <= 0 {
		t.Errorf("schedule = %+v", r)
	}
	if len(mindful.OptimizationSteps()) != 4 {
		t.Errorf("steps wrong")
	}
}

func TestFacadeCommFlow(t *testing.T) {
	lb := mindful.NominalLinkBudget(0.15)
	p, err := lb.TxPower(mindful.NewQAM(2), 1e-6, mindful.MegabitsPerSecond(82))
	if err != nil {
		t.Fatal(err)
	}
	if p.Milliwatts() <= 0 {
		t.Errorf("tx power = %v", p)
	}
	modem, err := mindful.NewModem(mindful.OOK())
	if err != nil {
		t.Fatal(err)
	}
	bits := []byte{1, 0, 1, 1}
	syms, err := modem.Modulate(bits)
	if err != nil {
		t.Fatal(err)
	}
	back := modem.Demodulate(syms)
	for i := range bits {
		if back[i] != bits[i] {
			t.Fatalf("modem round trip failed")
		}
	}
}

func TestFacadeImplantFlow(t *testing.T) {
	cfg := mindful.DefaultImplantConfig()
	cfg.Neural.Channels = 16
	im, err := mindful.NewImplant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Run(50); err != nil {
		t.Fatal(err)
	}
	st := im.Stats()
	if st.Ticks != 50 || st.Frames != 50 {
		t.Errorf("stats = %+v", st)
	}
	if st.Flow != mindful.CommCentric {
		t.Errorf("default flow should be comm-centric")
	}
}

func TestFacadeNeuralAndDecode(t *testing.T) {
	cfg := mindful.DefaultNeuralConfig()
	cfg.Channels = 8
	g, err := mindful.NewNeuralGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.Next()); got != 8 {
		t.Errorf("sample width = %d", got)
	}
	adc := mindful.DefaultADC()
	if adc.Levels() != 1024 {
		t.Errorf("ADC levels = %d", adc.Levels())
	}
	// Tiny decode round trip through the facade.
	states := [][]float64{{0, 1}, {0.1, 0.9}, {0.2, 0.8}, {0.3, 0.7}, {0.4, 0.6}}
	obs := [][]float64{{0, 2}, {0.2, 1.8}, {0.4, 1.6}, {0.6, 1.4}, {0.8, 1.2}}
	k, err := mindful.FitKalman(states, obs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Step(obs[0]); err != nil {
		t.Fatal(err)
	}
	bins, err := mindful.BinSpikeCounts([][]int{{1, 5}}, 10, 5)
	if err != nil || len(bins) != 2 {
		t.Fatalf("bins = %v, %v", bins, err)
	}
}
