// The observability contract: an implant nobody observes must run at the
// bare pipeline's speed. Every hook in the tick loop is either a method on
// a nil instrument (which returns immediately) or a branch on a cached
// attached flag, so the unobserved cost is a handful of nil checks per
// tick. This test measures that cost directly — the exact no-op hook
// sequence of one communication-centric tick against the tick itself — and
// writes the figures to BENCH_obs.json as the tracked baseline.
package mindful_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"mindful"
	"mindful/internal/obs"
)

// obsOverheadBaseline is the BENCH_obs.json schema.
type obsOverheadBaseline struct {
	Benchmark string `json:"benchmark"`
	Ticks     int    `json:"ticks"`
	Reps      int    `json:"reps"`
	// UnobservedNsPerTick is the tick loop with no observer attached (the
	// no-op short-circuit path); ObservedNsPerTick has a live registry and
	// tracer behind every hook.
	UnobservedNsPerTick float64 `json:"unobserved_ns_per_tick"`
	ObservedNsPerTick   float64 `json:"observed_ns_per_tick"`
	ObservedOverheadPct float64 `json:"observed_overhead_pct"`
	// NoopHookNsPerTick is the measured cost of one tick's worth of no-op
	// hook calls in isolation; NoopOverheadPct relates it to the tick.
	NoopHookNsPerTick float64 `json:"noop_hook_ns_per_tick"`
	NoopOverheadPct   float64 `json:"noop_overhead_pct"`
	// FlightHookNsPerTick is the disabled flight recorder's per-tick cost:
	// the four per-stage nil StageClock observes plus the event-log nil
	// check — what every tick pays when neither -stage-timing nor an
	// Observer is attached. FlightOverheadPct relates it to the tick.
	FlightHookNsPerTick float64 `json:"flight_hook_ns_per_tick"`
	FlightOverheadPct   float64 `json:"flight_overhead_pct"`
}

// tickNs returns the best-of-reps ns/tick of a comm-centric implant.
func tickNs(t *testing.T, observe bool, warmup, ticks, reps int) float64 {
	t.Helper()
	best := 0.0
	for r := 0; r < reps; r++ {
		im, err := mindful.NewImplant(mindful.DefaultImplantConfig())
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			im.SetObserver(mindful.NewObserver())
		}
		if err := im.Run(warmup); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if err := im.Run(ticks); err != nil {
			t.Fatal(err)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(ticks)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// noopHookNs measures one comm-centric tick's hook sequence against nil
// instruments: four spans, the frame and bit counters, and the
// attached-flag branch — exactly what an unobserved Tick executes.
func noopHookNs() float64 {
	var h struct {
		attached                   bool
		tracer                     *obs.Tracer
		ticks, frames, bits        *obs.Counter
		dropped                    *obs.Counter
		computeEnergy, radioEnergy *obs.Gauge
	}
	const iters = 2_000_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		tick := h.tracer.Start("implant.tick", 0)
		sp := h.tracer.Start("implant.sense", tick)
		h.tracer.End(sp)
		sp = h.tracer.Start("implant.adc", tick)
		h.tracer.End(sp)
		sp = h.tracer.Start("implant.transmit", tick)
		h.frames.Inc()
		h.bits.Add(11136)
		h.tracer.End(sp)
		if h.attached {
			h.ticks.Inc()
			h.computeEnergy.Set(1)
			h.radioEnergy.Set(1)
		}
		h.tracer.End(tick)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// flightHookNs measures the disabled flight recorder's tick cost: one
// nil StageClock.Observe per pipeline stage (source, transport,
// receiver, decode) plus one nil EventLog nil-check — the exact sequence
// an untimed, unobserved fleet tick would pay if the hooks ever lost
// their short circuits. (The fleet skips even this by not wrapping
// stages when StageTiming is nil; the bound here is the worst case.)
func flightHookNs() float64 {
	var h struct {
		clocks [4]*obs.StageClock
		events *obs.EventLog
	}
	const iters = 2_000_000
	n := int64(0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, c := range h.clocks {
			c.Observe(int64(i))
		}
		if h.events != nil {
			n++
		}
	}
	_ = n
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func TestObserverOverheadBaseline(t *testing.T) {
	const (
		warmup = 2000
		ticks  = 20000
		reps   = 3
	)
	unobserved := tickNs(t, false, warmup, ticks, reps)
	observed := tickNs(t, true, warmup, ticks, reps)
	hook := noopHookNs()
	flight := flightHookNs()

	b := obsOverheadBaseline{
		Benchmark:           "implant_tick_observer_overhead",
		Ticks:               ticks,
		Reps:                reps,
		UnobservedNsPerTick: unobserved,
		ObservedNsPerTick:   observed,
		ObservedOverheadPct: 100 * (observed - unobserved) / unobserved,
		NoopHookNsPerTick:   hook,
		NoopOverheadPct:     100 * hook / unobserved,
		FlightHookNsPerTick: flight,
		FlightOverheadPct:   100 * flight / unobserved,
	}
	t.Logf("unobserved %.0f ns/tick, observed %.0f ns/tick (%.1f%%), no-op hooks %.1f ns (%.2f%%), flight hooks %.1f ns (%.2f%%)",
		b.UnobservedNsPerTick, b.ObservedNsPerTick, b.ObservedOverheadPct,
		b.NoopHookNsPerTick, b.NoopOverheadPct,
		b.FlightHookNsPerTick, b.FlightOverheadPct)

	// The acceptance bound: the no-op short-circuit must stay under 5% of
	// the tick. The margin is wide — the hooks measure in the tens of
	// nanoseconds against a multi-microsecond tick — so a failure here
	// means an instrument lost its nil short-circuit, not timer noise.
	if b.NoopOverheadPct >= 5 {
		t.Errorf("no-op observer hooks cost %.2f%% of a tick, want < 5%%", b.NoopOverheadPct)
	}
	// The flight recorder's disabled path is tighter still: four nil
	// observes and a nil check must stay under 0.5% of the tick.
	if b.FlightOverheadPct >= 0.5 {
		t.Errorf("disabled flight-recorder hooks cost %.2f%% of a tick, want < 0.5%%", b.FlightOverheadPct)
	}

	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
